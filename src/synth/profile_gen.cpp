#include "synth/profile_gen.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "stats/discrete.h"
#include "stats/expect.h"
#include "synth/occupations.h"

namespace gplus::synth {

namespace {

// Table 2 "%" column as fractions. Work/Home contact carry 0 here because
// the tel-user model owns them.
constexpr std::array<double, kAttributeCount> kBaseRates = {
    1.0000,  // Name (public by default, cannot be hidden)
    0.9767,  // Gender
    0.2711,  // Education
    0.2675,  // Places lived
    0.2147,  // Employment
    0.1479,  // Phrase
    0.1348,  // Other profiles
    0.1327,  // Occupation
    0.1315,  // Contributor to
    0.0780,  // Introduction
    0.0439,  // Other names
    0.0431,  // Relationship
    0.0390,  // Braggin rights
    0.0363,  // Recommended links
    0.0274,  // Looking for
    0.0,     // Work (contact) — tel model
    0.0,     // Home (contact) — tel model
};

// Table 3, all-users column.
constexpr std::array<double, kGenderCount> kGenderShares = {0.6765, 0.3146,
                                                            0.0089};
constexpr std::array<double, kRelationshipCount> kRelationshipShares = {
    0.4282, 0.2659, 0.1980, 0.0316, 0.0439, 0.0126, 0.0050, 0.0108, 0.0039};

// Table 3: (tel-user column share) / (all-user column share).
constexpr std::array<double, kGenderCount> kTelGenderMult = {
    0.8599 / 0.6765, 0.1126 / 0.3146, 0.0275 / 0.0089};
constexpr std::array<double, kRelationshipCount> kTelRelationshipMult = {
    0.5724 / 0.4282, 0.2103 / 0.2659, 0.1023 / 0.1980,
    0.0398 / 0.0316, 0.0298 / 0.0439, 0.0277 / 0.0126,
    0.0058 / 0.0050, 0.0077 / 0.0108, 0.0041 / 0.0039};

// Conditional field probabilities inside the tel cohort, from Table 2's
// counts: work 60,434/72,736 and home 58,876/72,736.
constexpr double kWorkGivenTel = 0.831;
constexpr double kHomeGivenTel = 0.809;

// Openness scatter around the country mean.
constexpr double kOpennessSpread = 0.16;

}  // namespace

double attribute_base_rate(Attribute a) noexcept {
  return kBaseRates[static_cast<std::size_t>(a)];
}

double gender_base_share(Gender g) noexcept {
  return kGenderShares[static_cast<std::size_t>(g)];
}

double relationship_base_share(Relationship r) noexcept {
  return kRelationshipShares[static_cast<std::size_t>(r)];
}

double tel_gender_multiplier(Gender g) noexcept {
  return kTelGenderMult[static_cast<std::size_t>(g)];
}

double tel_relationship_multiplier(Relationship r) noexcept {
  return kTelRelationshipMult[static_cast<std::size_t>(r)];
}

ProfileGenerator::ProfileGenerator(const ProfileGenConfig& config,
                                   const PopulationModel& population)
    : config_(config), population_(&population) {
  GPLUS_EXPECT(config.tel_user_rate >= 0.0 && config.tel_user_rate <= 1.0,
               "tel rate must be a probability");
  // Monte-Carlo estimate of the population-mean tilt weights (country mix
  // times within-country openness scatter). Deterministic: own seed stream.
  stats::Rng rng(config.seed ^ 0x9E3779B97F4A7C15ULL);
  constexpr int kSamples = 50'000;
  std::vector<double> tilt_sample;
  tilt_sample.reserve(kSamples);
  double sum_d = 0.0, sum_t = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const geo::CountryId c = population.sample_country(rng);
    const double o = sample_openness(c, rng);
    tilt_sample.push_back(std::exp(config_.openness_tilt * o));
    sum_d += tilt_sample.back();
    sum_t += std::exp(config_.tel_openness_tilt * o);
  }
  mean_disclosure_weight_ = sum_d / kSamples;
  mean_tel_weight_ = sum_t / kSamples;
  for (auto& t : tilt_sample) t /= mean_disclosure_weight_;

  // Clamp correction: min(1, base * tilt) has a population mean below
  // `base` whenever the clamp bites (high-base fields like Gender, or
  // strongly tilted users). Solve a per-attribute factor by fixed point so
  // the realized marginal matches Table 2.
  clamp_correction_.fill(1.0);
  for (Attribute a : all_attributes()) {
    const double base = attribute_base_rate(a);
    if (base <= 0.0 || base >= 1.0) continue;
    double factor = 1.0;
    for (int round = 0; round < 12; ++round) {
      double mean = 0.0;
      for (double t : tilt_sample) mean += std::min(1.0, base * factor * t);
      mean /= static_cast<double>(tilt_sample.size());
      if (mean <= 0.0) break;
      factor *= base / mean;
    }
    clamp_correction_[static_cast<std::size_t>(a)] = factor;
  }
}

double ProfileGenerator::disclosure_probability(Attribute a,
                                                double openness) const noexcept {
  const double base = attribute_base_rate(a);
  const double factor = clamp_correction_[static_cast<std::size_t>(a)];
  return std::min(1.0, base * factor * disclosure_tilt(openness));
}

double ProfileGenerator::sample_openness(geo::CountryId country,
                                         stats::Rng& rng) const {
  const double mu = country == geo::kNoCountry
                        ? 0.55
                        : population_->params(country).openness_mean;
  return std::clamp(mu + kOpennessSpread * rng.next_normal(), 0.02, 0.98);
}

double ProfileGenerator::disclosure_tilt(double openness) const noexcept {
  return std::exp(config_.openness_tilt * openness) / mean_disclosure_weight_;
}

double ProfileGenerator::tel_tilt(double openness) const noexcept {
  return std::exp(config_.tel_openness_tilt * openness) / mean_tel_weight_;
}

Profile ProfileGenerator::generate(geo::CountryId country, bool celebrity,
                                   geo::LatLon home, stats::Rng& rng) const {
  static const stats::DiscreteDistribution gender_dist{
      std::span<const double>(kGenderShares)};
  static const stats::DiscreteDistribution relationship_dist{
      std::span<const double>(kRelationshipShares)};

  Profile p;
  p.country = country;
  p.home = home;
  p.celebrity = celebrity;
  p.gender = static_cast<Gender>(gender_dist.sample(rng));
  p.relationship = static_cast<Relationship>(relationship_dist.sample(rng));
  p.occupation = celebrity ? sample_celebrity_occupation(country, rng)
                           : sample_ordinary_occupation(rng);

  double openness = sample_openness(country, rng);
  // Public figures run open profiles — their "About" panel is their
  // audience interface (every Table 1 row has occupation and location).
  if (celebrity) openness = std::max(openness, 0.85);
  p.openness = static_cast<float>(openness);

  p.shared.set(Attribute::kName);  // public by default
  for (Attribute a : all_attributes()) {
    if (a == Attribute::kName || a == Attribute::kWorkContact ||
        a == Attribute::kHomeContact) {
      continue;
    }
    if (rng.next_bool(disclosure_probability(a, openness))) p.shared.set(a);
  }

  // Tel-user decision: base rate x gender x relationship x country x
  // openness tilt. The multipliers are calibrated ratios, so the overall
  // marginal stays near the base rate.
  double tel_prob = config_.tel_user_rate * tel_gender_multiplier(p.gender) *
                    tel_relationship_multiplier(p.relationship) *
                    tel_tilt(openness);
  if (country != geo::kNoCountry) {
    tel_prob *= population_->params(country).tel_multiplier;
  }
  if (rng.next_bool(std::min(1.0, tel_prob))) {
    const bool work = rng.next_bool(kWorkGivenTel);
    const bool home_contact = rng.next_bool(kHomeGivenTel);
    if (work) p.shared.set(Attribute::kWorkContact);
    if (home_contact) p.shared.set(Attribute::kHomeContact);
    if (!work && !home_contact) p.shared.set(Attribute::kWorkContact);
  }
  return p;
}

}  // namespace gplus::synth
