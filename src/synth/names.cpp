#include "synth/names.h"

#include <array>
#include <span>
#include <string_view>

#include "stats/rng.h"

namespace gplus::synth {

namespace {

struct NamePool {
  std::span<const std::string_view> first;
  std::span<const std::string_view> last;
};

// Compact per-language pools: enough variety that a top-20 table rarely
// repeats, flavored so country rows read plausibly.
constexpr std::array<std::string_view, 24> kFirstEn = {
    "James", "Mary", "Robert", "Linda", "Michael", "Sarah", "David", "Emma",
    "John", "Olivia", "Daniel", "Sophie", "Kevin", "Laura", "Brian", "Megan",
    "Jason", "Rachel", "Eric", "Hannah", "Scott", "Amy", "Ryan", "Claire"};
constexpr std::array<std::string_view, 16> kLastEn = {
    "Smith", "Johnson", "Brown", "Taylor", "Wilson", "Clark", "Walker",
    "Harris", "Lewis", "Young", "King", "Wright", "Scott", "Green", "Baker",
    "Adams"};

constexpr std::array<std::string_view, 16> kFirstHi = {
    "Aarav", "Priya", "Rohan", "Ananya", "Vikram", "Neha", "Arjun", "Kavya",
    "Rahul", "Pooja", "Amit", "Sneha", "Raj", "Divya", "Sanjay", "Meera"};
constexpr std::array<std::string_view, 12> kLastHi = {
    "Sharma", "Patel", "Singh", "Kumar", "Gupta", "Reddy", "Mehta", "Iyer",
    "Joshi", "Nair", "Chopra", "Verma"};

constexpr std::array<std::string_view, 16> kFirstPt = {
    "Joao", "Maria", "Pedro", "Ana", "Lucas", "Beatriz", "Gabriel", "Juliana",
    "Rafael", "Camila", "Felipe", "Larissa", "Thiago", "Fernanda", "Bruno",
    "Aline"};
constexpr std::array<std::string_view, 12> kLastPt = {
    "Silva", "Santos", "Oliveira", "Souza", "Costa", "Pereira", "Almeida",
    "Ferreira", "Rodrigues", "Lima", "Carvalho", "Ribeiro"};

constexpr std::array<std::string_view, 16> kFirstEs = {
    "Carlos", "Sofia", "Diego", "Valentina", "Javier", "Lucia", "Miguel",
    "Camila", "Alejandro", "Isabella", "Fernando", "Gabriela", "Ricardo",
    "Elena", "Pablo", "Carmen"};
constexpr std::array<std::string_view, 12> kLastEs = {
    "Garcia", "Martinez", "Lopez", "Gonzalez", "Hernandez", "Perez",
    "Sanchez", "Ramirez", "Torres", "Flores", "Vargas", "Castro"};

constexpr std::array<std::string_view, 12> kFirstDe = {
    "Lukas", "Anna", "Felix", "Lena", "Jonas", "Marie", "Maximilian",
    "Laura", "Paul", "Julia", "Tobias", "Katharina"};
constexpr std::array<std::string_view, 10> kLastDe = {
    "Mueller", "Schmidt", "Schneider", "Fischer", "Weber", "Meyer", "Wagner",
    "Becker", "Hoffmann", "Koch"};

constexpr std::array<std::string_view, 12> kFirstId = {
    "Budi", "Siti", "Agus", "Dewi", "Andi", "Rina", "Joko", "Putri", "Eko",
    "Fitri", "Dian", "Wati"};
constexpr std::array<std::string_view, 10> kLastId = {
    "Santoso", "Wijaya", "Susanto", "Hartono", "Setiawan", "Kusuma",
    "Halim", "Gunawan", "Hidayat", "Saputra"};

constexpr std::array<std::string_view, 12> kFirstIt = {
    "Luca", "Giulia", "Marco", "Chiara", "Alessandro", "Francesca", "Matteo",
    "Sara", "Andrea", "Elisa", "Davide", "Martina"};
constexpr std::array<std::string_view, 10> kLastIt = {
    "Rossi", "Russo", "Ferrari", "Esposito", "Bianchi", "Romano", "Colombo",
    "Ricci", "Marino", "Greco"};

// International fallback: a blend used for languages without their own
// pool (and for users with no disclosed location).
constexpr std::array<std::string_view, 16> kFirstIntl = {
    "Alex", "Yuki", "Omar", "Ingrid", "Chen", "Fatima", "Ivan", "Amara",
    "Minh", "Zara", "Kofi", "Elif", "Niko", "Leila", "Tomas", "Mei"};
constexpr std::array<std::string_view, 12> kLastIntl = {
    "Tanaka", "Ali", "Ivanov", "Nguyen", "Kim", "Yilmaz", "Berg", "Okafor",
    "Novak", "Haddad", "Lindgren", "Moreau"};

NamePool pool_for_language(std::string_view language) {
  if (language == "en") return {kFirstEn, kLastEn};
  if (language == "hi") return {kFirstHi, kLastHi};
  if (language == "pt") return {kFirstPt, kLastPt};
  if (language == "es") return {kFirstEs, kLastEs};
  if (language == "de") return {kFirstDe, kLastDe};
  if (language == "id") return {kFirstId, kLastId};
  if (language == "it") return {kFirstIt, kLastIt};
  return {kFirstIntl, kLastIntl};
}

}  // namespace

std::string synthesize_name(std::uint32_t id, geo::CountryId country) {
  const NamePool pool =
      country == geo::kNoCountry
          ? pool_for_language("")
          : pool_for_language(geo::country(country).primary_language);
  // Two independent hash draws; deterministic in (id, country).
  std::uint64_t state =
      (static_cast<std::uint64_t>(country) << 32) ^ (id * 0x9E3779B97F4A7C15ULL);
  const auto h1 = stats::splitmix64_next(state);
  const auto h2 = stats::splitmix64_next(state);
  const auto& first = pool.first[h1 % pool.first.size()];
  const auto& last = pool.last[h2 % pool.last.size()];
  return std::string(first) + " " + std::string(last);
}

}  // namespace gplus::synth
