#include "synth/graph_gen.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>

#include "graph/builder.h"
#include "stats/discrete.h"
#include "stats/expect.h"

namespace gplus::synth {

using geo::CountryId;
using graph::NodeId;

std::uint64_t sample_truncated_pareto(double xmin, double alpha_ccdf,
                                      std::uint64_t cap, stats::Rng& rng) {
  GPLUS_EXPECT(xmin > 0.0, "xmin must be positive");
  GPLUS_EXPECT(alpha_ccdf > 0.0, "alpha must be positive");
  const double u = 1.0 - rng.next_double();  // (0, 1]
  const double x = xmin * std::pow(u, -1.0 / alpha_ccdf);
  auto value = static_cast<std::uint64_t>(x);
  if (cap != 0) value = std::min(value, cap);
  return value;
}

namespace {

/// Uniform pool of node ids with O(1) sampling.
class UniformPool {
 public:
  void add(NodeId id) { members_.push_back(id); }
  bool empty() const noexcept { return members_.empty(); }
  NodeId sample(stats::Rng& rng) const {
    return members_[static_cast<std::size_t>(rng.next_below(members_.size()))];
  }

 private:
  std::vector<NodeId> members_;
};

/// Fitness-weighted static pool (alias table over the member fitnesses).
class WeightedPool {
 public:
  void add(NodeId id, double weight) {
    members_.push_back(id);
    weights_.push_back(weight);
  }
  bool empty() const noexcept { return members_.empty(); }
  /// Freezes the pool; must be called once before sampling.
  void freeze() {
    if (!members_.empty()) {
      dist_.emplace(std::span<const double>(weights_));
      weights_.clear();
      weights_.shrink_to_fit();
    }
  }
  NodeId sample(stats::Rng& rng) const { return members_[dist_->sample(rng)]; }

 private:
  std::vector<NodeId> members_;
  std::vector<double> weights_;
  std::optional<stats::DiscreteDistribution> dist_;
};

}  // namespace

GeneratedNetwork generate_network(const GraphGenConfig& config,
                                  const PopulationModel& population,
                                  const geo::World& world) {
  GPLUS_EXPECT(config.node_count >= 2, "need at least two users");
  GPLUS_EXPECT(config.node_count <= UINT32_MAX, "node count exceeds NodeId");
  GPLUS_EXPECT(config.celebrity_fraction >= 0.0 && config.celebrity_fraction <= 1.0,
               "celebrity fraction must be a probability");

  const auto n = static_cast<NodeId>(config.node_count);
  const std::size_t country_n = geo::country_count();
  stats::Rng rng(config.seed);

  GeneratedNetwork net;
  net.country.resize(n);
  net.city.resize(n);
  net.location.resize(n);
  net.celebrity.assign(n, 0);
  net.fitness.resize(n);

  // ---- Latent facts ---------------------------------------------------------
  stats::Rng geo_rng = rng.fork();
  stats::Rng fit_rng = rng.fork();
  for (NodeId u = 0; u < n; ++u) {
    const CountryId c = population.sample_country(geo_rng);
    net.country[u] = c;
    net.city[u] = static_cast<std::uint16_t>(world.sample_city(c, geo_rng));
    net.location[u] = world.sample_location_in_city(c, net.city[u], geo_rng);
    net.fitness[u] = static_cast<float>(
        std::pow(1.0 - fit_rng.next_double(), -1.0 / config.fitness_alpha));
  }

  // Celebrities: the top `celebrity_fraction` of the fitness order.
  const auto celeb_count = static_cast<std::size_t>(
      std::llround(config.celebrity_fraction * static_cast<double>(n)));
  if (celeb_count > 0) {
    std::vector<NodeId> order(n);
    std::iota(order.begin(), order.end(), NodeId{0});
    std::nth_element(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(celeb_count - 1),
                     order.end(), [&](NodeId a, NodeId b) {
                       return net.fitness[a] > net.fitness[b];
                     });
    for (std::size_t i = 0; i < celeb_count; ++i) net.celebrity[order[i]] = 1;
  }

  // ---- User types ------------------------------------------------------------
  std::vector<std::uint8_t> dormant(n, 0);
  std::vector<std::uint8_t> social(n, 0);
  for (NodeId u = 0; u < n; ++u) {
    // Celebrities are never dormant: their accounts exist to broadcast.
    dormant[u] = !net.celebrity[u] && rng.next_bool(config.dormant_fraction);
    social[u] = rng.next_bool(config.social_fraction);
  }

  // ---- Target pools ---------------------------------------------------------
  // Friend targets: uniform within community / (country, city) / country,
  // *active accounts only* — people add friends they actually interact
  // with. Interest targets: fitness-weighted within country, dormant
  // included (an abandoned account can still be followed).
  std::vector<UniformPool> country_uniform(country_n);
  std::vector<std::vector<UniformPool>> city_uniform(country_n);
  std::vector<WeightedPool> country_fitness(country_n);
  std::vector<std::vector<WeightedPool>> city_fitness(country_n);
  WeightedPool global_fitness;
  for (CountryId c = 0; c < country_n; ++c) {
    city_uniform[c].resize(geo::country(c).cities.size());
    city_fitness[c].resize(geo::country(c).cities.size());
  }
  for (NodeId u = 0; u < n; ++u) {
    const CountryId c = net.country[u];
    if (!dormant[u]) {
      country_uniform[c].add(u);
      city_uniform[c][net.city[u]].add(u);
    }
    country_fitness[c].add(u, net.fitness[u]);
    city_fitness[c][net.city[u]].add(u, net.fitness[u]);
    global_fitness.add(u, net.fitness[u]);
  }
  for (auto& pool : country_fitness) pool.freeze();
  for (auto& pools : city_fitness) {
    for (auto& pool : pools) pool.freeze();
  }
  global_fitness.freeze();

  // ---- Communities ----------------------------------------------------------
  // Within every (country, city) bucket, members are shuffled and chopped
  // into offline communities (family / school / workplace cliques) of
  // shifted-exponential size. Friend adds concentrate inside them, creating
  // the dense triangle neighborhoods behind Fig 4b.
  std::vector<std::uint32_t> community_of(n, 0);
  std::vector<std::vector<NodeId>> community_members;
  {
    std::vector<std::vector<std::vector<NodeId>>> buckets(country_n);
    for (CountryId c = 0; c < country_n; ++c) {
      buckets[c].resize(geo::country(c).cities.size());
    }
    for (NodeId u = 0; u < n; ++u) {
      if (!dormant[u]) buckets[net.country[u]][net.city[u]].push_back(u);
    }
    const double comm_mean = std::max(2.0, config.community_size_mean);
    for (auto& cities : buckets) {
      for (auto& members : cities) {
        rng.shuffle(members);
        std::size_t pos = 0;
        while (pos < members.size()) {
          const auto size = static_cast<std::size_t>(
              2.0 + rng.next_exponential(1.0 / (comm_mean - 2.0)));
          const std::size_t end = std::min(members.size(), pos + size);
          const auto id = static_cast<std::uint32_t>(community_members.size());
          community_members.emplace_back(members.begin() + static_cast<std::ptrdiff_t>(pos),
                                         members.begin() + static_cast<std::ptrdiff_t>(end));
          for (std::size_t i = pos; i < end; ++i) community_of[members[i]] = id;
          pos = end;
        }
      }
    }
  }

  // ---- Edge generation ------------------------------------------------------
  std::vector<std::vector<NodeId>> out_adj(n);
  std::vector<std::uint32_t> out_count(n, 0);

  const std::uint32_t cap = config.out_degree_cap;
  auto at_capacity = [&](NodeId u) {
    return config.enforce_out_cap && !net.celebrity[u] && out_count[u] >= cap;
  };
  auto push_edge = [&](NodeId from, NodeId to) {
    out_adj[from].push_back(to);
    ++out_count[from];
  };

  // Sample the target country honoring the geo_mixing ablation knob.
  auto sample_target_country = [&](CountryId own) {
    if (config.geo_mixing < 1.0 && !rng.next_bool(config.geo_mixing)) return own;
    return population.sample_target_country(own, rng);
  };

  for (NodeId u = 0; u < n; ++u) {
    if (dormant[u]) continue;
    const CountryId own = net.country[u];
    const std::uint64_t plan_cap =
        (config.enforce_out_cap && !net.celebrity[u]) ? cap : 0;
    const auto planned = sample_truncated_pareto(config.out_xmin, config.out_alpha,
                                                 plan_cap, rng);

    // Shifted-exponential friend budget: at least one real friend; social
    // users budget far more of their adds to people they know.
    const double budget_mean =
        social[u] ? config.friend_budget_social : config.friend_budget_consumer;
    const auto budget = static_cast<std::uint64_t>(
        1.0 + rng.next_exponential(1.0 / std::max(1e-9, budget_mean)));
    const std::uint64_t friend_adds = std::min<std::uint64_t>(planned, budget);

    const auto& community = community_members[community_of[u]];

    for (std::uint64_t i = 0; i < planned; ++i) {
      if (at_capacity(u)) break;
      const bool friend_add = i < friend_adds;
      NodeId v = u;  // sentinel: self means "no target yet"

      if (friend_add) {
        if (config.triadic_closure > 0.0 &&
            rng.next_bool(config.triadic_closure) && !out_adj[u].empty()) {
          // Friend-of-friend: close a transitive triangle. Celebrities are
          // skipped — "my friend also follows Lady Gaga" is not a friend
          // introduction — as are abandoned accounts.
          const NodeId mid = out_adj[u][static_cast<std::size_t>(
              rng.next_below(out_adj[u].size()))];
          if (!out_adj[mid].empty()) {
            const NodeId fof = out_adj[mid][static_cast<std::size_t>(
                rng.next_below(out_adj[mid].size()))];
            if (!net.celebrity[fof] && !dormant[fof]) v = fof;
          }
        }
        if (v == u && community.size() > 1 &&
            rng.next_bool(config.community_bias)) {
          v = community[static_cast<std::size_t>(
              rng.next_below(community.size()))];
        }
      }
      if (v == u) {
        const CountryId tc = sample_target_country(own);
        if (friend_add) {
          const auto& city_pool =
              (tc == own) ? city_uniform[tc][net.city[u]] : city_uniform[tc][0];
          if (rng.next_bool(config.same_city_bias) && !city_pool.empty()) {
            v = city_pool.sample(rng);
          } else if (!country_uniform[tc].empty()) {
            v = country_uniform[tc].sample(rng);
          }
        } else {
          // Interest add: a slice of domestic interest is city-local.
          const auto& local_pool = city_fitness[tc][tc == own ? net.city[u] : 0];
          if (tc == own && rng.next_bool(config.local_interest_bias) &&
              !local_pool.empty()) {
            v = local_pool.sample(rng);
          } else if (!country_fitness[tc].empty()) {
            v = country_fitness[tc].sample(rng);
          } else {
            v = global_fitness.sample(rng);
          }
        }
      }
      if (v == u) continue;  // no usable pool or self-pick: drop the add

      push_edge(u, v);

      // Reciprocation by the target. Dormant users never add back.
      double p_back;
      if (dormant[v]) {
        p_back = 0.0;
      } else if (net.celebrity[v]) {
        p_back = config.celebrity_reciprocation;
      } else if (friend_add) {
        p_back = config.friend_reciprocation;
      } else {
        p_back = config.interest_reciprocation;
      }
      if (p_back > 0.0 && !at_capacity(v) && rng.next_bool(p_back)) {
        push_edge(v, u);
      }
    }
  }

  // ---- Materialize ----------------------------------------------------------
  graph::GraphBuilder builder(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : out_adj[u]) builder.add_edge(u, v);
    out_adj[u].clear();
    out_adj[u].shrink_to_fit();
  }
  net.graph = builder.build();
  return net;
}

}  // namespace gplus::synth
