#include "synth/occupations.h"

#include <array>
#include <map>

namespace gplus::synth {

namespace {

using Weights = std::array<double, kOccupationCount>;

constexpr std::size_t idx(Occupation o) { return static_cast<std::size_t>(o); }

// Table 5 rows converted to weights: each appearance of a code in the
// country's top-10 list contributes one unit, with +0.2 smoothing so every
// occupation remains possible.
Weights from_counts(std::initializer_list<std::pair<Occupation, double>> counts) {
  Weights w{};
  w.fill(0.2);
  for (const auto& [o, c] : counts) w[idx(o)] += c;
  return w;
}

const std::map<std::string_view, Weights>& calibrated_rows() {
  using O = Occupation;
  static const std::map<std::string_view, Weights> rows = {
      // US: Co Mu IT Mu IT Mu Bu IT Mo Ac
      {"US", from_counts({{O::kComedian, 1}, {O::kMusician, 3},
                          {O::kInformationTech, 3}, {O::kBusinessman, 1},
                          {O::kModel, 1}, {O::kActor, 1}})},
      // IN: Mu So IT Mu Mo Mo IT Bu IT Mu
      {"IN", from_counts({{O::kMusician, 3}, {O::kSocialite, 1},
                          {O::kInformationTech, 3}, {O::kModel, 2},
                          {O::kBusinessman, 1}})},
      // BR: Co TV Jo Wr Ar Bl Bl Co Mu Co
      {"BR", from_counts({{O::kComedian, 3}, {O::kTvHost, 1}, {O::kJournalist, 1},
                          {O::kWriter, 1}, {O::kArtist, 1}, {O::kBlogger, 2},
                          {O::kMusician, 1}})},
      // GB: Bu Mu IT IT Mu Mu IT Mo So IT
      {"GB", from_counts({{O::kBusinessman, 1}, {O::kMusician, 3},
                          {O::kInformationTech, 4}, {O::kModel, 1},
                          {O::kSocialite, 1}})},
      // CA: IT IT Mu Co Bu Ac IT Mu Co Ac
      {"CA", from_counts({{O::kInformationTech, 3}, {O::kMusician, 2},
                          {O::kComedian, 2}, {O::kBusinessman, 1},
                          {O::kActor, 2}})},
      // DE: Bl IT IT Jo Bl IT Jo Ec Mu Bl
      {"DE", from_counts({{O::kBlogger, 3}, {O::kInformationTech, 3},
                          {O::kJournalist, 2}, {O::kEconomist, 1},
                          {O::kMusician, 1}})},
      // ID: Mu IT So Mo Mo IT Mu Ec Ph Jo
      {"ID", from_counts({{O::kMusician, 2}, {O::kInformationTech, 2},
                          {O::kSocialite, 1}, {O::kModel, 2}, {O::kEconomist, 1},
                          {O::kPhotographer, 1}, {O::kJournalist, 1}})},
      // MX: Mu Mu Mu IT Mu Bl Bl Mu Ac Jo
      {"MX", from_counts({{O::kMusician, 5}, {O::kInformationTech, 1},
                          {O::kBlogger, 2}, {O::kActor, 1}, {O::kJournalist, 1}})},
      // IT: Jo Jo IT IT Jo IT Jo Mu Mu IT
      {"IT", from_counts({{O::kJournalist, 4}, {O::kInformationTech, 4},
                          {O::kMusician, 2}})},
      // ES: Jo Po Po IT Mu Mu IT Mu Po IT
      {"ES", from_counts({{O::kJournalist, 1}, {O::kPolitician, 3},
                          {O::kInformationTech, 3}, {O::kMusician, 3}})},
  };
  return rows;
}

// Global fallback mix for countries outside Table 5: the paper's global
// top-20 (Table 1) blend — IT-heavy with musicians, actors, bloggers.
const Weights& global_celebrity_mix() {
  using O = Occupation;
  static const Weights w = from_counts({{O::kInformationTech, 7},
                                        {O::kMusician, 3},
                                        {O::kModel, 2},
                                        {O::kActor, 2},
                                        {O::kBlogger, 2},
                                        {O::kComedian, 1},
                                        {O::kBusinessman, 1},
                                        {O::kSocialite, 1},
                                        {O::kWriter, 1}});
  return w;
}

const Weights& ordinary_mix() {
  using O = Occupation;
  // Ordinary users skew toward everyday job families; exact mix only
  // influences the occupation strings of non-celebrities.
  static const Weights w = from_counts({{O::kInformationTech, 3},
                                        {O::kBusinessman, 2.5},
                                        {O::kArtist, 1.5},
                                        {O::kWriter, 1.2},
                                        {O::kPhotographer, 1.2},
                                        {O::kJournalist, 1},
                                        {O::kMusician, 1},
                                        {O::kEconomist, 0.8}});
  return w;
}

}  // namespace

std::span<const double> celebrity_occupation_weights(geo::CountryId country) {
  if (country != geo::kNoCountry) {
    const auto& rows = calibrated_rows();
    const auto it = rows.find(geo::country(country).code);
    if (it != rows.end()) return it->second;
  }
  return global_celebrity_mix();
}

std::span<const double> ordinary_occupation_weights() { return ordinary_mix(); }

Occupation sample_celebrity_occupation(geo::CountryId country, stats::Rng& rng) {
  const auto weights = celebrity_occupation_weights(country);
  const stats::DiscreteDistribution dist(weights);
  return static_cast<Occupation>(dist.sample(rng));
}

Occupation sample_ordinary_occupation(stats::Rng& rng) {
  static const stats::DiscreteDistribution dist(ordinary_occupation_weights());
  return static_cast<Occupation>(dist.sample(rng));
}

}  // namespace gplus::synth
