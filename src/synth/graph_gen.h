// Synthetic Google+-like social graph generator.
//
// Mechanism-for-mechanism stand-in for the crawled network (see DESIGN.md):
//
//  * every user gets a home country (Fig 6 shares), a city, coordinates and
//    a Pareto "audience fitness"; the top of the fitness order are
//    celebrities with country-flavored occupations (Tables 1 & 5);
//  * each user plans a heavy-tailed number of adds (out-degree CCDF ~
//    x^-1.2, Fig 3), split into a small "real friend" budget and the
//    remainder of interest adds;
//  * friend adds are geographically local (same-city bias, triadic
//    closure -> triangles of Fig 4b, short path miles of Fig 9) and are
//    reciprocated often; interest adds follow the country mixing matrix
//    (Fig 10) and land fitness-proportionally (power-law in-degree,
//    Fig 3) with rare reciprocation — the blend reproduces the RR CDF of
//    Fig 4a and the 32% global reciprocity of Table 4;
//  * non-exempt users stop at 5,000 out-links (the Fig 3 cliff).
#pragma once

#include <cstdint>
#include <vector>

#include "geo/world.h"
#include "graph/digraph.h"
#include "stats/rng.h"
#include "synth/config.h"
#include "synth/population.h"

namespace gplus::synth {

/// A generated network: the graph plus the latent per-user facts the
/// profile generator and the analyses consume.
struct GeneratedNetwork {
  graph::DiGraph graph;
  std::vector<geo::CountryId> country;   // home country per node
  std::vector<std::uint16_t> city;       // city index within the country
  std::vector<geo::LatLon> location;     // jittered home coordinate
  std::vector<std::uint8_t> celebrity;   // 1 when a designated public figure
  std::vector<float> fitness;            // audience attractiveness

  std::size_t node_count() const noexcept { return country.size(); }
};

/// Samples floor of a Pareto(xmin, alpha_ccdf) variate truncated at `cap`
/// (cap = 0 means untruncated). Exposed for tests and for the bench ablation
/// that sweeps the out-degree law.
std::uint64_t sample_truncated_pareto(double xmin, double alpha_ccdf,
                                      std::uint64_t cap, stats::Rng& rng);

/// Generates the network. Deterministic in `config.seed`.
GeneratedNetwork generate_network(const GraphGenConfig& config,
                                  const PopulationModel& population,
                                  const geo::World& world);

}  // namespace gplus::synth
