// Profile generator: turns latent user facts (country, celebrity status)
// into a Table 2 / Table 3-calibrated public profile.
//
// The model is a single latent "openness" score per user (country-dependent
// mean, Fig 8's ordering). Every disclosure decision is the field's global
// base rate (Table 2) exponentially tilted by openness, so the marginals
// match Table 2 while open users share many fields at once — which is what
// makes the tel-user cohort's field-count CCDF dominate the population's
// (Fig 2) without being wired in directly.
#pragma once

#include <array>
#include <vector>

#include "geo/world.h"
#include "stats/rng.h"
#include "synth/config.h"
#include "synth/population.h"
#include "synth/profile.h"

namespace gplus::synth {

/// Global base disclosure rate of each attribute (Table 2's "%") indexed by
/// Attribute; Work/Home contact are governed by the tel-user model instead.
double attribute_base_rate(Attribute a) noexcept;

/// Latent gender distribution (Table 3 all-user column).
double gender_base_share(Gender g) noexcept;

/// Latent relationship-status distribution (Table 3 all-user column).
double relationship_base_share(Relationship r) noexcept;

/// Tel-user propensity multiplier by gender (Table 3: tel share / all share).
double tel_gender_multiplier(Gender g) noexcept;

/// Tel-user propensity multiplier by relationship status.
double tel_relationship_multiplier(Relationship r) noexcept;

/// Generates profiles. Thread-compatible: `generate` is const and all
/// mutable state lives in the caller's Rng.
class ProfileGenerator {
 public:
  ProfileGenerator(const ProfileGenConfig& config, const PopulationModel& population);

  /// Draws the latent openness score of a user in `country`.
  double sample_openness(geo::CountryId country, stats::Rng& rng) const;

  /// Generates one full profile. `country` may be kNoCountry (the user then
  /// can never be located); `home` is the pre-sampled home coordinate.
  Profile generate(geo::CountryId country, bool celebrity, geo::LatLon home,
                   stats::Rng& rng) const;

  /// The exponential-tilt weight exp(tilt * o) normalized by its population
  /// mean; exposed for tests.
  double disclosure_tilt(double openness) const noexcept;
  double tel_tilt(double openness) const noexcept;

  /// Clamp-corrected disclosure probability of attribute `a` for a user
  /// with the given openness: min(1, base * correction * tilt). The
  /// correction factor is solved at construction so the *population
  /// marginal* equals Table 2's base rate despite the min() clamp that
  /// would otherwise erode high-base fields like Gender.
  double disclosure_probability(Attribute a, double openness) const noexcept;

 private:
  ProfileGenConfig config_;
  const PopulationModel* population_;
  double mean_disclosure_weight_ = 1.0;  // E[exp(openness_tilt * o)]
  double mean_tel_weight_ = 1.0;         // E[exp(tel_openness_tilt * o)]
  std::array<double, kAttributeCount> clamp_correction_{};
};

}  // namespace gplus::synth
