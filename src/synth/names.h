// Synthetic display names.
//
// Table 1 prints people, not ids. This generator produces deterministic,
// culturally flavored first/last name pairs per user — hash-indexed into
// per-language pools — so ranked listings read like the paper's table
// rather than "User 48213". Names are synthetic combinations; any match
// with a real person is coincidental.
#pragma once

#include <cstdint>
#include <string>

#include "geo/countries.h"

namespace gplus::synth {

/// Deterministic synthetic full name for user `id` living in `country`
/// (kNoCountry falls back to the international pool).
std::string synthesize_name(std::uint32_t id, geo::CountryId country);

}  // namespace gplus::synth
