// The gplus command-line tool: generate, analyze, crawl and export
// calibrated synthetic Google+ datasets. See `gplus help`.
#include <iostream>
#include <string>
#include <vector>

#include "cli/commands.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return gplus::cli::run_command(args, std::cout);
}
