#!/usr/bin/env sh
# Builds the parallel-runtime test binaries under ThreadSanitizer and runs
# them. Usage: tools/run_tsan.sh [build-dir]
#
# TSan catches the races a serial-equivalence test cannot: unsynchronized
# pool state, kernels writing overlapping slots, etc. The same script works
# for the other sanitizers via GPLUS_SANITIZE=address|undefined.
set -eu

SANITIZER="${GPLUS_SANITIZE:-thread}"
SRC_DIR="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"
# Default to an absolute path inside the repo so the build lands under the
# gitignored build*/ pattern no matter where the script is invoked from.
BUILD_DIR="${1:-$SRC_DIR/build-$SANITIZER}"
TARGETS="test_parallel test_parallel_equivalence test_bfs test_serve test_serve_equivalence test_intersect test_motifs test_rewire test_suggest test_snapshot test_snapshot_equivalence test_serve_chaos test_cluster test_cluster_equivalence test_transport test_obs test_golden_trace"
# Lane-equivalence binaries get a second pass pinned to one lane, so the
# serial fallback is sanitized too (mirrors the CTest ".threads1" variants).
SINGLE_THREAD_TARGETS="test_cluster test_cluster_equivalence test_serve_equivalence test_motifs test_rewire test_suggest test_transport"

cmake -B "$BUILD_DIR" -S "$SRC_DIR" -DGPLUS_SANITIZE="$SANITIZER" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
# shellcheck disable=SC2086  # TARGETS is intentionally word-split
cmake --build "$BUILD_DIR" -j "$(nproc)" --target $TARGETS

status=0
for t in $TARGETS; do
  echo "== $SANITIZER: $t =="
  "$BUILD_DIR/tests/$t" || status=1
done
for t in $SINGLE_THREAD_TARGETS; do
  echo "== $SANITIZER: $t (GPLUS_THREADS=1) =="
  GPLUS_THREADS=1 "$BUILD_DIR/tests/$t" || status=1
done
exit $status
