#!/usr/bin/env sh
# Builds the parallel-runtime test binaries under ThreadSanitizer and runs
# them. Usage: tools/run_tsan.sh [build-dir]   (default: build-tsan)
#
# TSan catches the races a serial-equivalence test cannot: unsynchronized
# pool state, kernels writing overlapping slots, etc. The same script works
# for the other sanitizers via GPLUS_SANITIZE=address|undefined.
set -eu

BUILD_DIR="${1:-build-tsan}"
SANITIZER="${GPLUS_SANITIZE:-thread}"
SRC_DIR="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"
TARGETS="test_parallel test_parallel_equivalence test_bfs"

cmake -B "$BUILD_DIR" -S "$SRC_DIR" -DGPLUS_SANITIZE="$SANITIZER" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
# shellcheck disable=SC2086  # TARGETS is intentionally word-split
cmake --build "$BUILD_DIR" -j "$(nproc)" --target $TARGETS

status=0
for t in $TARGETS; do
  echo "== $SANITIZER: $t =="
  "$BUILD_DIR/tests/$t" || status=1
done
exit $status
