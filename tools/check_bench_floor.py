#!/usr/bin/env python3
"""CI bench gate: compare published BENCH_*.json reports against the
checked-in throughput floors (bench/floors.json).

Usage: check_bench_floor.py <floors.json> <report.json> [<report.json> ...]

floors.json maps report basenames to {field: floor} objects. A report
fails the gate when any floored field measures below floor * (1 -
TOLERANCE) — i.e. more than a 30% drop against the floor. Fields in the
report but not in the floors file are ignored; a floored field missing
from the report is an error (the bench stopped publishing it). Exits
nonzero on any failure so the workflow step fails loudly.
"""

import json
import sys

TOLERANCE = 0.30


def main(argv):
    if len(argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[1]) as fh:
        floors = json.load(fh)
    failures = 0
    for path in argv[2:]:
        name = path.rsplit("/", 1)[-1]
        expected = floors.get(name)
        if expected is None:
            print(f"{name}: no floors registered, skipping")
            continue
        with open(path) as fh:
            report = json.load(fh)
        for field, floor in expected.items():
            if field not in report:
                print(f"FAIL {name}: floored field '{field}' missing")
                failures += 1
                continue
            measured = float(report[field])
            gate = floor * (1.0 - TOLERANCE)
            verdict = "ok" if measured >= gate else "FAIL"
            print(
                f"{verdict:>4} {name}: {field} = {measured:.0f} "
                f"(floor {floor:.0f}, gate {gate:.0f})"
            )
            if measured < gate:
                failures += 1
    if failures:
        print(f"{failures} bench floor violation(s)")
        return 1
    print("all bench floors held")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
