// Example: watching a social network being born.
//
// Runs the §2.1 adoption timeline (invite-only viral phase, open sign-up,
// saturation) and follows the §7 program: take repeated topology
// snapshots, watch the structure mature, and try to call the phase
// transitions from the curve alone.
//
//   ./growth_study [final_users] [seed]
#include <cstdlib>
#include <iostream>
#include <string>

#include "algo/reciprocity.h"
#include "algo/scc.h"
#include "core/table.h"
#include "evolve/growth.h"

int main(int argc, char** argv) {
  using namespace gplus;
  const std::size_t users = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 40'000;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 11;

  evolve::GrowthConfig config;
  config.final_node_count = users;
  config.seed = seed;
  std::cout << "Simulating " << config.days << " days of growth to " << users
            << " users (invite-only until day " << config.invite_only_days
            << ")...\n\n";
  const evolve::GrowthSimulation sim(config);

  // A compact ASCII adoption chart.
  const auto curve = evolve::adoption_curve(sim);
  std::uint64_t peak = 1;
  for (auto v : curve.daily_new) peak = std::max(peak, v);
  std::cout << "Daily sign-ups (each # ~ " << peak / 40 + 1 << " users/day):\n";
  for (int day = 10; day <= config.days; day += 10) {
    const auto value = curve.daily_new[static_cast<std::size_t>(day)];
    const auto bars = static_cast<std::size_t>(40.0 * static_cast<double>(value) /
                                               static_cast<double>(peak));
    std::cout << "  day " << (day < 100 ? " " : "") << day << " |"
              << std::string(bars, '#') << "\n";
  }
  std::cout << "\nphase transition detected at day " << curve.transition_day
            << "; growth peak day " << curve.peak_day << "\n\n";

  // Structure maturing over time.
  std::cout << "Structural maturation:\n";
  core::TextTable table({"Day", "Users", "Mean degree", "Reciprocity",
                         "Giant SCC"});
  for (int day : {60, 95, 120, 150, 180}) {
    const auto g = sim.snapshot(day);
    const auto sccs = algo::strongly_connected_components(g);
    table.add_row({std::to_string(day), core::fmt_count(g.node_count()),
                   core::fmt_double(g.mean_degree(), 2),
                   core::fmt_percent(algo::global_reciprocity(g), 1),
                   core::fmt_percent(sccs.giant_fraction(), 1)});
  }
  std::cout << table.str() << "\n";

  stats::Rng rng(seed);
  const auto series =
      evolve::measure_growth(sim, {60, 95, 120, 150, 180}, 100, rng);
  const auto fit = evolve::densification_fit(series);
  std::cout << "densification exponent a = " << core::fmt_double(fit.slope, 2)
            << " (edges grow superlinearly in nodes — the network is\n"
               "densifying, which is the paper's §6 explanation for why its\n"
               "5.9-hop mean path should approach Facebook's 4.7 over time)\n";
  return 0;
}
