// Example: can the network carry a letter? (the Milgram experiment, §3.3.5
// and [29], run in silico)
//
// Milgram's small-world study asked people to forward a letter toward a
// distant stranger via acquaintances; Liben-Nowell showed online social
// networks support the same greedy geographic forwarding. This example
// routes messages across the synthetic Google+ and inspects what makes
// routes succeed or stall.
//
//   ./navigability_study [node_count] [seed]
#include <cstdlib>
#include <iostream>

#include "core/dataset.h"
#include "core/geo_analysis.h"
#include "core/geo_routing.h"
#include "core/table.h"

int main(int argc, char** argv) {
  using namespace gplus;
  const std::size_t nodes = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 60'000;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 31;

  std::cout << "Building dataset (" << nodes << " users)...\n\n";
  const auto ds = core::make_standard_dataset(nodes, seed);
  stats::Rng rng(seed);

  std::cout << "Why routing can work at all — P(link) vs distance:\n";
  const auto curve = core::link_probability_by_distance(ds, 2'000'000, rng);
  core::TextTable lp({"Distance band (mi)", "P(linked)"});
  for (const auto& bin : curve) {
    if (bin.pairs < 200) continue;
    lp.add_row({core::fmt_double(bin.min_miles, 0) + " - " +
                    core::fmt_double(bin.max_miles, 0),
                core::fmt_double(bin.probability, 6)});
  }
  std::cout << lp.str() << "\n";

  std::cout << "The Milgram run — greedy forwarding toward a stranger:\n";
  core::TextTable routes({"Policy", "Delivered", "Mean hops",
                          "Median stall (mi)"});
  for (auto policy : {core::RoutePolicy::kGreedy, core::RoutePolicy::kRandom}) {
    stats::Rng route_rng(seed + 1);
    const auto stats = core::measure_geo_routing(ds, 1'500, route_rng, {},
                                                 policy);
    routes.add_row(
        {policy == core::RoutePolicy::kGreedy ? "greedy by geography"
                                              : "random forwarding",
         core::fmt_percent(stats.success_rate, 1),
         core::fmt_double(stats.mean_hops_delivered, 1),
         core::fmt_double(stats.median_stall_miles, 0)});
  }
  std::cout << routes.str() << "\n";

  // Hop budget sensitivity: Milgram chains died of apathy, ours die of
  // greedy minima — show where the budget stops mattering.
  std::cout << "Hop-budget sensitivity (greedy):\n";
  core::TextTable budget({"Max hops", "Delivered"});
  for (std::uint32_t hops : {2u, 4u, 8u, 32u, 200u}) {
    stats::Rng route_rng(seed + 2);
    core::GeoRouteOptions options;
    options.max_hops = hops;
    const auto stats =
        core::measure_geo_routing(ds, 1'000, route_rng, options);
    budget.add_row({std::to_string(hops),
                    core::fmt_percent(stats.success_rate, 1)});
  }
  std::cout << budget.str();
  std::cout << "\nReading: success saturates within a handful of hops — the\n"
               "small-world radius of Fig 5 — so failures are greedy dead\n"
               "ends (nobody closer to the target), not exhausted budgets.\n";
  return 0;
}
