// Example: geography of a social graph (§4-style analysis).
//
// Uses the public API to ask the paper's geo questions of a synthetic
// network: where do users live, how far apart are friends, how do
// countries interlink, and what would a content-distribution or friend-
// recommendation system conclude?
//
//   ./geo_study [node_count] [seed]
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "core/dataset.h"
#include "core/geo_analysis.h"
#include "core/table.h"
#include "stats/descriptive.h"

int main(int argc, char** argv) {
  using namespace gplus;
  const std::size_t nodes = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 80'000;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 21;

  std::cout << "Building dataset (" << nodes << " users)...\n\n";
  const auto ds = core::make_standard_dataset(nodes, seed);

  std::cout << "Where do users live?\n";
  const auto shares = core::located_country_shares(ds);
  core::TextTable where({"Country", "Share of located users"});
  for (std::size_t i = 0; i < 8 && i < shares.size(); ++i) {
    where.add_row({std::string(geo::country(shares[i].country).name),
                   core::fmt_percent(shares[i].fraction, 1)});
  }
  std::cout << where.str() << "\n";

  std::cout << "How far apart are linked users?\n";
  stats::Rng rng(seed);
  auto miles = core::sample_path_miles(ds, 30'000, rng);
  const auto summarize = [](std::vector<double>& v) {
    std::sort(v.begin(), v.end());
    return stats::summarize(v);
  };
  const auto f = summarize(miles.friends);
  const auto r = summarize(miles.reciprocal);
  const auto x = summarize(miles.random);
  core::TextTable dist({"Pair type", "Mean miles", "Median miles", "N"});
  auto med = [](const std::vector<double>& sorted) {
    return sorted.empty() ? 0.0 : sorted[sorted.size() / 2];
  };
  dist.add_row({"Reciprocal friends", core::fmt_double(r.mean, 0),
                core::fmt_double(med(miles.reciprocal), 0),
                core::fmt_count(r.count)});
  dist.add_row({"Any friends", core::fmt_double(f.mean, 0),
                core::fmt_double(med(miles.friends), 0), core::fmt_count(f.count)});
  dist.add_row({"Random pairs", core::fmt_double(x.mean, 0),
                core::fmt_double(med(miles.random), 0), core::fmt_count(x.count)});
  std::cout << dist.str() << "\n";

  std::cout << "How do countries interlink? (self-loop = domestic edge share)\n";
  const auto links = core::country_link_graph(ds);
  core::TextTable mix({"Country", "Domestic", "-> US", "Reading"});
  for (std::size_t i = 0; i < links.countries.size(); ++i) {
    const auto code = geo::country(links.countries[i]).code;
    std::size_t us = 0;
    for (std::size_t j = 0; j < links.countries.size(); ++j) {
      if (geo::country(links.countries[j]).code == "US") us = j;
    }
    const double self = links.self_loop(i);
    mix.add_row({std::string(geo::country(links.countries[i]).name),
                 core::fmt_percent(self, 0),
                 code == "US" ? "-" : core::fmt_percent(links.weight[i][us], 0),
                 self > 0.6   ? "inward-looking"
                 : self > 0.4 ? "balanced"
                              : "outward-looking"});
  }
  std::cout << mix.str() << "\n";

  std::cout << "Product implications (the paper's §6 reading):\n";
  std::cout << "  * recommend domestic users/content in inward-looking markets\n"
               "    (Brazil, India, Indonesia), foreign content in outward ones\n"
               "    (United Kingdom, Canada, Germany);\n";
  std::cout << "  * friends cluster within ~"
            << core::fmt_double(med(miles.friends), 0)
            << " miles — content caches close to users capture most social\n"
               "    traffic, but outward-looking countries still need long-haul\n"
               "    delivery into the US.\n";
  return 0;
}
