// Example: measurement-methodology study.
//
// Spins up the simulated Google+ service over a synthetic ground-truth
// network and runs the paper's §2.2 crawl pipeline against it, showing the
// things a real measurement team cannot see: how crawl coverage, the
// 10,000-entry circle cap, and hidden lists distort the collected graph.
//
//   ./crawl_study [node_count] [seed]
#include <cstdlib>
#include <iostream>

#include "algo/scc.h"
#include "core/analysis.h"
#include "core/dataset.h"
#include "core/table.h"
#include "crawler/bias.h"
#include "crawler/crawler.h"
#include "service/service.h"

int main(int argc, char** argv) {
  using namespace gplus;
  const std::size_t nodes = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 60'000;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  std::cout << "Building ground truth (" << nodes << " users)...\n";
  const auto ds = core::make_standard_dataset(nodes, seed);
  const auto seed_user = core::top_users(ds, 1)[0];
  std::cout << "crawl seed: " << seed_user.name << " (in-degree "
            << seed_user.in_degree << ", as the paper seeded at Zuckerberg)\n\n";

  // Study 1: crawl quality vs coverage.
  std::cout << "Study 1 — what a partial BFS crawl sees\n";
  core::TextTable coverage_table({"Budget", "Crawled", "Boundary", "Edges",
                                  "Degree bias", "Edge recall", "Sim. hours"});
  for (double budget : {0.1, 0.3, 0.56, 1.0}) {
    service::SocialService svc(&ds.graph(), ds.profiles, {});
    crawler::CrawlConfig config;
    config.seed_node = seed_user.node;
    config.machines = 11;
    config.max_profiles =
        budget >= 1.0 ? 0
                      : static_cast<std::size_t>(budget * static_cast<double>(nodes));
    const auto crawl = crawler::run_bfs_crawl(svc, config);
    const auto bias = crawler::measure_bias(ds.graph(), crawl);
    coverage_table.add_row(
        {core::fmt_percent(budget, 0), core::fmt_count(crawl.stats.profiles_crawled),
         core::fmt_count(crawl.stats.boundary_nodes),
         core::fmt_count(crawl.graph.edge_count()),
         core::fmt_double(bias.degree_bias_ratio, 2),
         core::fmt_percent(bias.edge_recall, 1),
         core::fmt_double(crawl.stats.simulated_hours, 1)});
  }
  std::cout << coverage_table.str() << "\n";

  // Study 2: the circle-list cap.
  std::cout << "Study 2 — the public circle-list cap (paper: 10,000 entries, "
               "1.6% of edges lost)\n";
  core::TextTable cap_table({"Cap", "Users over cap", "Lost fraction"});
  for (std::uint32_t cap : {500u, 1000u, 2000u, 10000u}) {
    service::ServiceConfig sconfig;
    sconfig.circle_list_cap = cap;
    service::SocialService svc(&ds.graph(), ds.profiles, sconfig);
    crawler::CrawlConfig config;
    config.seed_node = seed_user.node;
    config.max_profiles = nodes / 2;  // partial, like the paper's 56%
    const auto crawl = crawler::run_bfs_crawl(svc, config);
    const auto est = crawler::estimate_lost_edges(svc, crawl);
    cap_table.add_row({core::fmt_count(cap), core::fmt_count(est.users_over_cap),
                       core::fmt_percent(est.lost_fraction, 2)});
  }
  std::cout << cap_table.str() << "\n";

  // Study 3: hidden circle lists.
  std::cout << "Study 3 — users who set their lists private\n";
  core::TextTable hidden_table({"Hidden fraction", "Nodes seen", "Edges",
                                "Giant SCC"});
  for (double hidden : {0.0, 0.1, 0.3, 0.5}) {
    service::ServiceConfig sconfig;
    sconfig.hidden_list_fraction = hidden;
    service::SocialService svc(&ds.graph(), ds.profiles, sconfig);
    crawler::CrawlConfig config;
    // Find a public seed among the top users.
    config.seed_node = seed_user.node;
    for (const auto& candidate : core::top_users(ds, 20)) {
      if (svc.lists_public(candidate.node)) {
        config.seed_node = candidate.node;
        break;
      }
    }
    const auto crawl = crawler::run_bfs_crawl(svc, config);
    const auto sccs = algo::strongly_connected_components(crawl.graph);
    hidden_table.add_row({core::fmt_percent(hidden, 0),
                          core::fmt_count(crawl.node_count()),
                          core::fmt_count(crawl.graph.edge_count()),
                          core::fmt_percent(sccs.giant_fraction(), 1)});
  }
  std::cout << hidden_table.str();
  std::cout << "\nTakeaway: partial BFS coverage inflates degree estimates and\n"
               "privacy features shrink the observable graph — both caveats the\n"
               "paper notes; here they are quantified against ground truth.\n";
  return 0;
}
