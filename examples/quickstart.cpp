// Quickstart: generate a Google+-like network, run the structural pipeline,
// and print the headline numbers of the paper's Table 4 row.
//
//   ./quickstart [node_count] [seed]
#include <cstdlib>
#include <iostream>

#include "algo/bfs.h"
#include "algo/clustering.h"
#include "algo/degrees.h"
#include "algo/reciprocity.h"
#include "algo/scc.h"
#include "geo/world.h"
#include "stats/descriptive.h"
#include "synth/graph_gen.h"
#include "synth/population.h"

int main(int argc, char** argv) {
  using namespace gplus;

  const std::size_t nodes = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100'000;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  std::cout << "Generating a Google+-like network with " << nodes
            << " users (seed " << seed << ")...\n";
  const synth::PopulationModel population;
  const geo::World world;
  const auto net = synth::generate_network(
      synth::google_plus_preset(nodes, seed), population, world);
  const graph::DiGraph& g = net.graph;

  std::cout << "nodes: " << g.node_count() << "\n";
  std::cout << "edges: " << g.edge_count() << "\n";
  std::cout << "mean degree: " << g.mean_degree() << "  (paper: 16.4)\n";

  const auto in_dist = algo::in_degree_distribution(g, 3);
  const auto out_dist = algo::out_degree_distribution(g, 3);
  std::cout << "in-degree power-law alpha: " << in_dist.power_law.alpha
            << " (R2 " << in_dist.power_law.r_squared << ", paper: 1.3)\n";
  std::cout << "out-degree power-law alpha: " << out_dist.power_law.alpha
            << " (R2 " << out_dist.power_law.r_squared << ", paper: 1.2)\n";
  std::cout << "max in-degree: " << in_dist.max
            << "  max out-degree: " << out_dist.max << "\n";

  std::cout << "global reciprocity: " << algo::global_reciprocity(g)
            << "  (paper: 0.32)\n";
  const auto rr = algo::relation_reciprocities(g);
  std::size_t high = 0;
  for (double r : rr) high += r > 0.6 ? 1 : 0;
  std::cout << "users with RR > 0.6: "
            << static_cast<double>(high) / static_cast<double>(rr.size())
            << "  (paper: >0.60)\n";

  stats::Rng rng(seed);
  const auto cc = algo::sampled_clustering_coefficients(g, 20'000, rng);
  std::size_t cc_high = 0;
  for (double c : cc) cc_high += c > 0.2 ? 1 : 0;
  std::cout << "mean clustering: " << stats::mean(cc) << ", CC > 0.2: "
            << static_cast<double>(cc_high) / static_cast<double>(cc.size())
            << "  (paper: 0.40 of users)\n";

  const auto sccs = algo::strongly_connected_components(g);
  std::cout << "SCCs: " << sccs.component_count()
            << ", giant: " << sccs.giant_fraction() << " of nodes (paper: 0.72)\n";

  algo::PathLengthOptions opt;
  opt.initial_sources = 50;
  opt.max_sources = 200;
  const auto directed = algo::estimate_path_lengths(g, opt, rng);
  opt.undirected = true;
  const auto undirected = algo::estimate_path_lengths(g, opt, rng);
  std::cout << "directed paths: mean " << directed.mean << ", mode "
            << directed.mode << ", diameter >= " << directed.diameter_lower_bound
            << "  (paper: 5.9 / 6 / 19)\n";
  std::cout << "undirected paths: mean " << undirected.mean << ", mode "
            << undirected.mode << ", diameter >= "
            << undirected.diameter_lower_bound << "  (paper: 4.7 / 5 / 13)\n";
  return 0;
}
