// Example: how far does a post travel?
//
// Uses the diffusion simulator to explore the paper's §7 question about
// privacy settings and content sharing: the same author posting publicly
// vs to a circle, ordinary users vs celebrities, and what the hop
// distribution of Fig 5 implies for reach.
//
//   ./diffusion_study [node_count] [seed]
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "algo/topk.h"
#include "core/analysis.h"
#include "core/dataset.h"
#include "core/table.h"
#include "stream/diffusion.h"

int main(int argc, char** argv) {
  using namespace gplus;
  const std::size_t nodes = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50'000;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 17;

  std::cout << "Building dataset (" << nodes << " users)...\n\n";
  const auto ds = core::make_standard_dataset(nodes, seed);
  const stream::DiffusionSimulator sim(&ds, {});
  stats::Rng rng(seed);

  // One celebrity, one well-connected user, one ordinary user.
  const auto celebrity = core::top_users(ds, 1)[0];
  graph::NodeId connected = 0, ordinary = 0;
  for (graph::NodeId u = 0; u < ds.user_count(); ++u) {
    const auto in = ds.graph().in_degree(u);
    if (!ds.profiles[u].celebrity && in >= 50 && connected == 0) connected = u;
    if (!ds.profiles[u].celebrity && in >= 3 && in <= 8 && ordinary == 0) {
      ordinary = u;
    }
  }

  std::cout << "Reach of one post (average of 10 runs):\n";
  core::TextTable table({"Author", "Followers", "Public: views / reshares",
                         "Circles: views / reshares"});
  struct Row {
    std::string name;
    graph::NodeId node;
  };
  const Row rows[] = {{celebrity.name, celebrity.node},
                      {"Well-connected user", connected},
                      {"Typical user", ordinary}};
  for (const auto& row : rows) {
    double pub_views = 0, pub_shares = 0, circ_views = 0, circ_shares = 0;
    constexpr int kRuns = 10;
    for (int i = 0; i < kRuns; ++i) {
      const auto pub = sim.simulate_post(row.node, true, rng);
      const auto circ = sim.simulate_post(row.node, false, rng);
      pub_views += static_cast<double>(pub.views);
      pub_shares += static_cast<double>(pub.reshares);
      circ_views += static_cast<double>(circ.views);
      circ_shares += static_cast<double>(circ.reshares);
    }
    table.add_row(
        {row.name, core::fmt_count(ds.graph().in_degree(row.node)),
         core::fmt_double(pub_views / kRuns, 0) + " / " +
             core::fmt_double(pub_shares / kRuns, 1),
         core::fmt_double(circ_views / kRuns, 0) + " / " +
             core::fmt_double(circ_shares / kRuns, 1)});
  }
  std::cout << table.str() << "\n";

  // Population-level picture.
  const auto cascades = sim.simulate_posts(2'000, rng);
  const auto summary = stream::summarize_cascades(cascades);
  std::vector<double> views;
  views.reserve(cascades.size());
  for (const auto& c : cascades) views.push_back(static_cast<double>(c.views));
  std::sort(views.begin(), views.end());
  std::cout << "Random-author posts: median views "
            << core::fmt_double(views[views.size() / 2], 0) << ", mean "
            << core::fmt_double(summary.mean_views, 1) << ", max "
            << core::fmt_double(summary.max_views, 0) << " — the familiar\n"
            << "heavy tail: most posts stay within the friend circle, a few\n"
            << "celebrity-amplified cascades sweep a large share of the graph.\n";
  std::cout << "\nPrivacy lever: restricting a post to circles cuts the\n"
               "audience by the circle fraction and every downstream reshare\n"
               "hop with it — openness compounds through the cascade.\n";
  return 0;
}
