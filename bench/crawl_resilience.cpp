// Crawl resilience: fault injection, retry/backoff, kill-and-resume.
//
// The paper's crawl ran for 46 days across 11 machines against a live,
// rate-limited service — machines failed, pages truncated, requests were
// throttled. This bench turns the operating reality into a measurement:
//  * a fault-rate sweep showing how retries and backoff buy graph
//    fidelity with simulated wall-clock time;
//  * the bit-identity check: every faulty crawl must collect exactly the
//    fault-free graph, or the retry layer is broken;
//  * a kill-and-resume demo: checkpoint mid-crawl, "lose" the fleet, and
//    finish from disk — converging to the same graph.
#include "bench_common.h"

#include <unistd.h>

#include <filesystem>

#include <cmath>

#include "core/analysis.h"
#include "core/table.h"
#include "crawler/crawler.h"
#include "crawler/fleet.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "service/service.h"

namespace {

using namespace gplus;

// Reconciles the registry delta across one crawl against the crawl's own
// RetryStats: retry_loop mirrors every increment, so any disagreement
// means the observability layer dropped or double-counted a fetch.
int reconcile_crawl(const char* label, const obs::MetricsSnapshot& d,
                    const crawler::CrawlStats& stats) {
  int failures = 0;
  const auto expect = [&](const char* name, std::uint64_t want) {
    const auto got = static_cast<std::uint64_t>(d.value(name));
    if (got != want) {
      std::cout << "VIOLATION (" << label << "): registry " << name << "="
                << got << " but crawl bookkeeping says " << want << "\n";
      ++failures;
    }
  };
  expect("crawler.fetch.attempts", stats.retry.attempts);
  expect("crawler.fetch.retries", stats.retry.retries);
  expect("crawler.fetch.abandoned", stats.retry.abandoned);
  expect("crawler.fault.transient", stats.retry.transient);
  expect("crawler.fault.rate_limited", stats.retry.rate_limited);
  expect("crawler.fault.truncated", stats.retry.truncated);
  expect("crawler.fetch.slow", stats.retry.slow);
  expect("crawler.checkpoint.writes", stats.checkpoints_written);
  // The registry accumulates integer microseconds (llround per delay);
  // each delay rounds within half a microsecond of the double total.
  const double micros_ms =
      static_cast<double>(d.value("crawler.backoff.micros")) / 1000.0;
  const double tolerance =
      1e-3 * static_cast<double>(stats.retry.retries + 1);
  if (std::abs(micros_ms - stats.retry.backoff_ms) > tolerance) {
    std::cout << "VIOLATION (" << label << "): registry backoff "
              << micros_ms << "ms vs bookkeeping " << stats.retry.backoff_ms
              << "ms\n";
    ++failures;
  }
  return failures;
}

service::FaultConfig faults_at(double rate) {
  service::FaultConfig f;
  f.transient_rate = rate / 2.0;
  f.rate_limit_rate = rate / 4.0;
  f.truncation_rate = rate / 4.0;
  f.slow_rate = rate;
  return f;
}

bool identical(const crawler::CrawlResult& a, const crawler::CrawlResult& b) {
  if (a.original_id != b.original_id || a.crawled != b.crawled) return false;
  if (a.graph.node_count() != b.graph.node_count() ||
      a.graph.edge_count() != b.graph.edge_count())
    return false;
  for (graph::NodeId u = 0; u < a.graph.node_count(); ++u) {
    const auto an = a.graph.out_neighbors(u);
    const auto bn = b.graph.out_neighbors(u);
    if (!std::equal(an.begin(), an.end(), bn.begin(), bn.end())) return false;
  }
  return true;
}

}  // namespace

int main() {
  using namespace gplus;
  bench::banner("Crawl resilience", "faults, retries, checkpoint/resume");

  const auto& ds = bench::dataset();
  const std::size_t profiles =
      bench::env_or("GPLUS_CRAWL_PROFILES", 20'000);

  crawler::CrawlConfig base;
  base.seed_node = core::top_users(ds, 1)[0].node;
  base.machines = 11;
  base.max_profiles = profiles;

  // The fault-free reference every faulty run must reproduce exactly.
  service::SocialService clean(&ds.graph(), ds.profiles,
                               service::ServiceConfig{});
  const auto reference = crawler::run_bfs_crawl(clean, base);

  std::cout << "--- Fault-rate sweep (bounded crawl, " << profiles
            << " profiles, 11 machines) ---\n";
  core::TextTable sweep({"Fault rate", "Requests", "Retries", "Abandoned",
                         "Backoff (s)", "Sim. hours", "Graph"});
  auto& registry = obs::MetricsRegistry::global();
  int failures = 0;
  for (double rate : {0.0, 0.02, 0.05, 0.10, 0.20, 0.40}) {
    service::ServiceConfig sconfig;
    sconfig.faults = faults_at(rate);
    service::SocialService svc(&ds.graph(), ds.profiles, sconfig);
    const auto before = registry.snapshot();
    const auto crawl = crawler::run_bfs_crawl(svc, base);
    failures += reconcile_crawl("sweep", obs::delta(registry.snapshot(), before),
                                crawl.stats);
    sweep.add_row({core::fmt_percent(rate, 0),
                   core::fmt_count(crawl.stats.requests),
                   core::fmt_count(crawl.stats.retry.retries),
                   core::fmt_count(crawl.stats.retry.abandoned),
                   core::fmt_double(crawl.stats.retry.backoff_ms / 1'000.0, 1),
                   core::fmt_double(crawl.stats.simulated_hours, 2),
                   identical(reference, crawl) ? "OK" : "MISS"});
  }
  std::cout << sweep.str();
  std::cout << "(every row must read OK: retries recover each injected fault,\n"
               " so the collected graph never depends on the fault schedule —\n"
               " the service only charges the crawl in time, not in edges)\n\n";

  std::cout << "--- Fleet makespan under faults (paper: 46 days, 11 machines)"
               " ---\n";
  core::TextTable fleet_table({"Fault rate", "Makespan (days)", "Utilization",
                               "Rate-limit hits", "Graph"});
  for (double rate : {0.0, 0.05, 0.20}) {
    service::ServiceConfig sconfig;
    sconfig.faults = faults_at(rate);
    service::SocialService svc(&ds.graph(), ds.profiles, sconfig);
    crawler::FleetConfig fconfig;
    fconfig.seed_node = base.seed_node;
    fconfig.machines = 11;
    fconfig.max_profiles = profiles;
    const auto before = registry.snapshot();
    const auto fleet = crawler::run_crawl_fleet(svc, fconfig);
    failures += reconcile_crawl("fleet", obs::delta(registry.snapshot(), before),
                                fleet.crawl.stats);
    fleet_table.add_row({core::fmt_percent(rate, 0),
                         core::fmt_double(fleet.makespan_days, 2),
                         core::fmt_percent(fleet.mean_utilization, 0),
                         core::fmt_count(fleet.crawl.stats.retry.rate_limited),
                         identical(reference, fleet.crawl) ? "OK" : "MISS"});
  }
  std::cout << fleet_table.str();
  std::cout << "(rate limits and backoff show up as idle machine time: the\n"
               " makespan stretches while utilization drops)\n\n";

  std::cout << "--- Kill and resume (checkpoint every 2,000 profiles) ---\n";
  const auto ckpt = std::filesystem::temp_directory_path() /
                    ("gplus_resilience_" + std::to_string(::getpid()) + ".ckpt");
  std::filesystem::remove(ckpt);
  service::ServiceConfig sconfig;
  sconfig.faults = faults_at(0.10);

  crawler::CrawlConfig killed = base;
  killed.checkpoint.path = ckpt.string();
  killed.max_profiles = profiles / 2;
  service::SocialService first_svc(&ds.graph(), ds.profiles, sconfig);
  const auto before_kill = registry.snapshot();
  const auto first = crawler::run_bfs_crawl(first_svc, killed);
  failures += reconcile_crawl(
      "killed", obs::delta(registry.snapshot(), before_kill), first.stats);
  std::cout << "killed after " << core::fmt_count(first.stats.profiles_crawled)
            << " profiles (" << core::fmt_count(first.stats.checkpoints_written)
            << " checkpoints, last at " << ckpt.string() << ")\n";

  crawler::CrawlConfig resume = killed;
  resume.max_profiles = profiles;
  service::SocialService second_svc(&ds.graph(), ds.profiles, sconfig);
  const auto before_resume = registry.snapshot();
  const auto resumed = crawler::run_bfs_crawl(second_svc, resume);
  // The resumed run's RetryStats are restored from the checkpoint (the
  // kill leg's final snapshot), so the registry delta covers only this
  // run's fetches: subtract the kill leg before reconciling.
  crawler::CrawlStats resume_delta = resumed.stats;
  resume_delta.retry.attempts -= first.stats.retry.attempts;
  resume_delta.retry.retries -= first.stats.retry.retries;
  resume_delta.retry.transient -= first.stats.retry.transient;
  resume_delta.retry.rate_limited -= first.stats.retry.rate_limited;
  resume_delta.retry.truncated -= first.stats.retry.truncated;
  resume_delta.retry.slow -= first.stats.retry.slow;
  resume_delta.retry.abandoned -= first.stats.retry.abandoned;
  resume_delta.retry.backoff_ms -= first.stats.retry.backoff_ms;
  failures += reconcile_crawl(
      "resumed", obs::delta(registry.snapshot(), before_resume), resume_delta);
  std::cout << "resumed " << core::fmt_count(resumed.stats.resumed_profiles)
            << " profiles from disk, crawled "
            << core::fmt_count(resumed.stats.profiles_crawled)
            << " total; graph vs uninterrupted fault-free run: "
            << (identical(reference, resumed) ? "OK (bit-identical)" : "MISS")
            << "\n";
  std::filesystem::remove(ckpt);

  // Every counter above is deterministic (the crawler is coordinator-only
  // and the parallel kernels use static chunk grids), so this dump is
  // byte-identical at any GPLUS_THREADS.
  std::cout << "\nmetrics (deterministic):\n"
            << obs::to_json(registry.snapshot(/*deterministic_only=*/true));
  if (failures != 0) {
    std::cout << failures << " registry reconciliation violation(s)\n";
    return 1;
  }
  return 0;
}
