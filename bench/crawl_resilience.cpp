// Crawl resilience: fault injection, retry/backoff, kill-and-resume.
//
// The paper's crawl ran for 46 days across 11 machines against a live,
// rate-limited service — machines failed, pages truncated, requests were
// throttled. This bench turns the operating reality into a measurement:
//  * a fault-rate sweep showing how retries and backoff buy graph
//    fidelity with simulated wall-clock time;
//  * the bit-identity check: every faulty crawl must collect exactly the
//    fault-free graph, or the retry layer is broken;
//  * a kill-and-resume demo: checkpoint mid-crawl, "lose" the fleet, and
//    finish from disk — converging to the same graph.
#include "bench_common.h"

#include <unistd.h>

#include <filesystem>

#include "core/analysis.h"
#include "core/table.h"
#include "crawler/crawler.h"
#include "crawler/fleet.h"
#include "service/service.h"

namespace {

using namespace gplus;

service::FaultConfig faults_at(double rate) {
  service::FaultConfig f;
  f.transient_rate = rate / 2.0;
  f.rate_limit_rate = rate / 4.0;
  f.truncation_rate = rate / 4.0;
  f.slow_rate = rate;
  return f;
}

bool identical(const crawler::CrawlResult& a, const crawler::CrawlResult& b) {
  if (a.original_id != b.original_id || a.crawled != b.crawled) return false;
  if (a.graph.node_count() != b.graph.node_count() ||
      a.graph.edge_count() != b.graph.edge_count())
    return false;
  for (graph::NodeId u = 0; u < a.graph.node_count(); ++u) {
    const auto an = a.graph.out_neighbors(u);
    const auto bn = b.graph.out_neighbors(u);
    if (!std::equal(an.begin(), an.end(), bn.begin(), bn.end())) return false;
  }
  return true;
}

}  // namespace

int main() {
  using namespace gplus;
  bench::banner("Crawl resilience", "faults, retries, checkpoint/resume");

  const auto& ds = bench::dataset();
  const std::size_t profiles =
      bench::env_or("GPLUS_CRAWL_PROFILES", 20'000);

  crawler::CrawlConfig base;
  base.seed_node = core::top_users(ds, 1)[0].node;
  base.machines = 11;
  base.max_profiles = profiles;

  // The fault-free reference every faulty run must reproduce exactly.
  service::SocialService clean(&ds.graph(), ds.profiles,
                               service::ServiceConfig{});
  const auto reference = crawler::run_bfs_crawl(clean, base);

  std::cout << "--- Fault-rate sweep (bounded crawl, " << profiles
            << " profiles, 11 machines) ---\n";
  core::TextTable sweep({"Fault rate", "Requests", "Retries", "Abandoned",
                         "Backoff (s)", "Sim. hours", "Graph"});
  for (double rate : {0.0, 0.02, 0.05, 0.10, 0.20, 0.40}) {
    service::ServiceConfig sconfig;
    sconfig.faults = faults_at(rate);
    service::SocialService svc(&ds.graph(), ds.profiles, sconfig);
    const auto crawl = crawler::run_bfs_crawl(svc, base);
    sweep.add_row({core::fmt_percent(rate, 0),
                   core::fmt_count(crawl.stats.requests),
                   core::fmt_count(crawl.stats.retry.retries),
                   core::fmt_count(crawl.stats.retry.abandoned),
                   core::fmt_double(crawl.stats.retry.backoff_ms / 1'000.0, 1),
                   core::fmt_double(crawl.stats.simulated_hours, 2),
                   identical(reference, crawl) ? "OK" : "MISS"});
  }
  std::cout << sweep.str();
  std::cout << "(every row must read OK: retries recover each injected fault,\n"
               " so the collected graph never depends on the fault schedule —\n"
               " the service only charges the crawl in time, not in edges)\n\n";

  std::cout << "--- Fleet makespan under faults (paper: 46 days, 11 machines)"
               " ---\n";
  core::TextTable fleet_table({"Fault rate", "Makespan (days)", "Utilization",
                               "Rate-limit hits", "Graph"});
  for (double rate : {0.0, 0.05, 0.20}) {
    service::ServiceConfig sconfig;
    sconfig.faults = faults_at(rate);
    service::SocialService svc(&ds.graph(), ds.profiles, sconfig);
    crawler::FleetConfig fconfig;
    fconfig.seed_node = base.seed_node;
    fconfig.machines = 11;
    fconfig.max_profiles = profiles;
    const auto fleet = crawler::run_crawl_fleet(svc, fconfig);
    fleet_table.add_row({core::fmt_percent(rate, 0),
                         core::fmt_double(fleet.makespan_days, 2),
                         core::fmt_percent(fleet.mean_utilization, 0),
                         core::fmt_count(fleet.crawl.stats.retry.rate_limited),
                         identical(reference, fleet.crawl) ? "OK" : "MISS"});
  }
  std::cout << fleet_table.str();
  std::cout << "(rate limits and backoff show up as idle machine time: the\n"
               " makespan stretches while utilization drops)\n\n";

  std::cout << "--- Kill and resume (checkpoint every 2,000 profiles) ---\n";
  const auto ckpt = std::filesystem::temp_directory_path() /
                    ("gplus_resilience_" + std::to_string(::getpid()) + ".ckpt");
  std::filesystem::remove(ckpt);
  service::ServiceConfig sconfig;
  sconfig.faults = faults_at(0.10);

  crawler::CrawlConfig killed = base;
  killed.checkpoint.path = ckpt.string();
  killed.max_profiles = profiles / 2;
  service::SocialService first_svc(&ds.graph(), ds.profiles, sconfig);
  const auto first = crawler::run_bfs_crawl(first_svc, killed);
  std::cout << "killed after " << core::fmt_count(first.stats.profiles_crawled)
            << " profiles (" << core::fmt_count(first.stats.checkpoints_written)
            << " checkpoints, last at " << ckpt.string() << ")\n";

  crawler::CrawlConfig resume = killed;
  resume.max_profiles = profiles;
  service::SocialService second_svc(&ds.graph(), ds.profiles, sconfig);
  const auto resumed = crawler::run_bfs_crawl(second_svc, resume);
  std::cout << "resumed " << core::fmt_count(resumed.stats.resumed_profiles)
            << " profiles from disk, crawled "
            << core::fmt_count(resumed.stats.profiles_crawled)
            << " total; graph vs uninterrupted fault-free run: "
            << (identical(reference, resumed) ? "OK (bit-identical)" : "MISS")
            << "\n";
  std::filesystem::remove(ckpt);
  return 0;
}
