// Figure 9: (a) path-mile CDF for friend pairs, reciprocal pairs and random
// unlinked pairs; (b) average path mile per top-10 country.
//
// Paper: 58% of friend pairs within 1,000 miles, 15% within 10 miles;
// reciprocal pairs live closer than one-way pairs; random pairs are far
// apart; and country size does NOT predict the average path mile. An
// ablation sweeps the geo-mixing knob to show the friends-vs-random gap
// collapse when geography is removed.
#include "bench_common.h"

#include <algorithm>

#include "core/geo_analysis.h"
#include "core/table.h"
#include "geo/world.h"
#include "stats/descriptive.h"
#include "stats/distribution.h"
#include "synth/graph_gen.h"
#include "synth/profile_gen.h"

namespace {

using namespace gplus;

double cdf_at(const std::vector<double>& sorted_samples, double x) {
  const auto it = std::upper_bound(sorted_samples.begin(), sorted_samples.end(), x);
  return sorted_samples.empty()
             ? 0.0
             : static_cast<double>(it - sorted_samples.begin()) /
                   static_cast<double>(sorted_samples.size());
}

}  // namespace

int main() {
  using namespace gplus;
  bench::banner("Figure 9", "physical distance between user pairs (path miles)");

  const auto& ds = bench::dataset();
  stats::Rng rng(bench::seed());
  auto samples = core::sample_path_miles(ds, 50'000, rng);
  std::sort(samples.friends.begin(), samples.friends.end());
  std::sort(samples.reciprocal.begin(), samples.reciprocal.end());
  std::sort(samples.random.begin(), samples.random.end());

  std::cout << "--- (a) CDF of pair distance (thousand miles) ---\n";
  core::TextTable cdf({"Distance <=", "Random", "Friends", "Reciprocal"});
  for (double miles : {10.0, 100.0, 500.0, 1000.0, 2000.0, 4000.0, 6000.0,
                       8000.0, 12000.0}) {
    cdf.add_row({core::fmt_double(miles / 1000.0, 2) + "k mi",
                 core::fmt_double(cdf_at(samples.random, miles), 3),
                 core::fmt_double(cdf_at(samples.friends, miles), 3),
                 core::fmt_double(cdf_at(samples.reciprocal, miles), 3)});
  }
  std::cout << cdf.str() << "\n";
  std::cout << "friends within 1,000 miles: "
            << core::fmt_percent(cdf_at(samples.friends, 1000.0))
            << " (paper: 58%); within 10 miles: "
            << core::fmt_percent(cdf_at(samples.friends, 10.0))
            << " (paper: 15%)\n";
  {
    stats::Rng ci_rng(3);
    const auto friends_ci =
        stats::bootstrap_mean_ci(samples.friends, 200, ci_rng);
    const auto random_ci = stats::bootstrap_mean_ci(samples.random, 200, ci_rng);
    std::cout << "mean distance, 95% bootstrap CI: friends "
              << core::fmt_double(friends_ci.mean, 0) << " ["
              << core::fmt_double(friends_ci.lower, 0) << ", "
              << core::fmt_double(friends_ci.upper, 0) << "] mi vs random "
              << core::fmt_double(random_ci.mean, 0) << " ["
              << core::fmt_double(random_ci.lower, 0) << ", "
              << core::fmt_double(random_ci.upper, 0)
              << "] mi (non-overlapping: the gap is not sampling noise)\n";
  }
  std::cout << "ordering (reciprocal closest, random farthest): "
            << ((stats::mean(samples.reciprocal) <= stats::mean(samples.friends) &&
                 stats::mean(samples.friends) < stats::mean(samples.random))
                    ? "ok"
                    : "MISS")
            << "\n\n";

  std::cout << "--- (b) Average path mile per country (friend edges) ---\n";
  core::TextTable per_country({"Country", "Mean miles", "Stddev", "Edges"});
  for (const auto& row : core::path_miles_by_country(ds)) {
    per_country.add_row({std::string(geo::country(row.country).name),
                         core::fmt_double(row.mean_miles, 0),
                         core::fmt_double(row.stddev_miles, 0),
                         core::fmt_count(row.edges)});
  }
  std::cout << per_country.str();
  std::cout << "(paper: no pattern relating country size to average path mile;\n"
               " small countries export many edges, e.g. GB/CA into the US)\n\n";

  std::cout << "--- Ablation: geo-mixing knob vs friends/random gap ---\n";
  const synth::PopulationModel population;
  const geo::World world;
  const std::size_t n = std::min<std::size_t>(bench::scale(), 60'000);
  core::TextTable ablation({"geo_mixing", "friends mean mi", "random mean mi",
                            "gap ratio"});
  for (double mix : {1.0, 0.5, 0.0}) {
    core::DatasetConfig config;
    config.graph = synth::google_plus_preset(n, bench::seed());
    config.graph.geo_mixing = mix;
    const auto ablation_ds = core::make_dataset(config);
    stats::Rng arng(7);
    const auto s = core::sample_path_miles(ablation_ds, 20'000, arng);
    const double f = stats::mean(s.friends);
    const double r = stats::mean(s.random);
    ablation.add_row({core::fmt_double(mix, 1), core::fmt_double(f, 0),
                      core::fmt_double(r, 0),
                      core::fmt_double(f > 0 ? r / f : 0.0, 2)});
  }
  std::cout << ablation.str();
  std::cout << "(geo_mixing 0 keeps every edge domestic: the friends curve\n"
               " collapses toward city scale while random pairs stay global)\n";
  return 0;
}
