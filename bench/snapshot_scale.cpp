// Paper-scale snapshot pipeline: out-of-core build, mmap serving, §3.3.
//
// Streams a synthetic Google+ graph at the paper's published size (35.1M
// nodes, ~575M directed edges) through the out-of-core v3 builder, opens
// the result off mmap, reproduces the §3.3 structural figures (degree
// distribution moments, SCC decomposition, ANF hop distribution) straight
// from the compressed file, and drives the query server against it —
// everything the serving path claims at paper scale, measured end to end
// and published as BENCH_snapshot.json:
//
//   build: wall seconds, peak RSS (the < 8 GB out-of-core claim), runs
//   size:  bytes/stored-arc of the compressed adjacency (the < 8 B claim)
//          and whole-file bytes per directed edge
//   open:  microseconds to a validated mmap view (the O(1) claim)
//   serve: queries/s for the degree-profile and mixed workload mixes
//
// Modes: `--smoke` caps the scale (default 500k nodes, ≤1M enforced) for
// CI; the default is the paper's 35.1M. GPLUS_SCALE overrides the node
// count in either mode, GPLUS_REQUESTS the per-mix request count,
// GPLUS_ANF_PRECISION the HyperANF register width (default 7 smoke / 5
// full — at 35M nodes each extra bit of precision costs n·2^p bytes),
// GPLUS_WORK_DIR the scratch+output directory (default ./snapshot_scale_work,
// needs ~3x the final file size free), GPLUS_BENCH_JSON the report path.
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "bench_common.h"
#include "core/parallel.h"
#include "serve/snapshot.h"
#include "serve/snapshot_build.h"
#include "serve/snapshot_file.h"
#include "serve/snapshot_stats.h"
#include "serve/workload.h"
#include "synth/stream_gen.h"

namespace {

using namespace gplus;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double peak_rss_gib() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
}

std::uint64_t header_offset(std::span<const std::byte> bytes,
                            std::size_t at) {
  std::uint64_t v = 0;
  std::memcpy(&v, bytes.data() + at, 8);
  return v;
}

struct Report {
  std::size_t nodes = 0;
  std::uint64_t edges = 0;
  double build_s = 0.0;
  double build_peak_rss_gib = 0.0;
  std::uint64_t runs = 0;
  std::uint64_t file_bytes = 0;
  double bytes_per_edge = 0.0;       // compressed adjacency, per stored arc
  double file_bytes_per_edge = 0.0;  // whole file, per directed edge
  double open_us = 0.0;
  double verify_s = 0.0;
  double degree_stats_s = 0.0;
  double scc_s = 0.0;
  double anf_s = 0.0;
  double mean_out_degree = 0.0;
  std::uint64_t max_in_degree = 0;
  double scc_giant_fraction = 0.0;
  std::uint64_t scc_count = 0;
  double effective_diameter = 0.0;
  double mean_distance = 0.0;
  double qps_degree_profile = 0.0;
  double qps_mixed = 0.0;
  std::uint64_t checksum_mixed = 0;
};

void write_json(const Report& r, const std::string& path) {
  std::ofstream out(path);
  out.precision(6);
  out << std::fixed;
  out << "{\n"
      << "  \"bench\": \"snapshot_scale\",\n"
      << "  \"nodes\": " << r.nodes << ",\n"
      << "  \"edges\": " << r.edges << ",\n"
      << "  \"build_seconds\": " << r.build_s << ",\n"
      << "  \"build_peak_rss_gib\": " << r.build_peak_rss_gib << ",\n"
      << "  \"sorted_runs\": " << r.runs << ",\n"
      << "  \"file_bytes\": " << r.file_bytes << ",\n"
      << "  \"bytes_per_edge\": " << r.bytes_per_edge << ",\n"
      << "  \"file_bytes_per_edge\": " << r.file_bytes_per_edge << ",\n"
      << "  \"open_us\": " << r.open_us << ",\n"
      << "  \"verify_seconds\": " << r.verify_s << ",\n"
      << "  \"degree_stats_seconds\": " << r.degree_stats_s << ",\n"
      << "  \"scc_seconds\": " << r.scc_s << ",\n"
      << "  \"anf_seconds\": " << r.anf_s << ",\n"
      << "  \"mean_out_degree\": " << r.mean_out_degree << ",\n"
      << "  \"max_in_degree\": " << r.max_in_degree << ",\n"
      << "  \"scc_count\": " << r.scc_count << ",\n"
      << "  \"scc_giant_fraction\": " << r.scc_giant_fraction << ",\n"
      << "  \"effective_diameter\": " << r.effective_diameter << ",\n"
      << "  \"mean_distance\": " << r.mean_distance << ",\n"
      << "  \"qps_degree_profile\": " << r.qps_degree_profile << ",\n"
      << "  \"qps_mixed\": " << r.qps_mixed << ",\n"
      << "  \"checksum_mixed\": " << r.checksum_mixed << "\n"
      << "}\n";
}

double run_mix(const serve::SnapshotView& view, const serve::WorkloadMix& mix,
               std::uint64_t requests, std::uint64_t& checksum) {
  serve::ServerConfig config;
  serve::QueryServer server(&view, config);
  serve::WorkloadConfig workload;
  workload.mix = mix;
  workload.requests = requests;
  const auto report = serve::run_closed_loop(server, workload);
  checksum = report.checksum;
  return report.qps;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  const std::size_t nodes = [&] {
    std::size_t n = bench::env_or("GPLUS_SCALE", smoke ? 500'000 : 35'100'000);
    if (smoke) n = std::min<std::size_t>(n, 1'000'000);
    return n;
  }();
  const char* work_env = std::getenv("GPLUS_WORK_DIR");
  const std::filesystem::path work_dir =
      work_env != nullptr && *work_env != '\0' ? work_env
                                               : "snapshot_scale_work";
  const char* json_env = std::getenv("GPLUS_BENCH_JSON");
  const std::string json_path =
      json_env != nullptr && *json_env != '\0' ? json_env
                                               : "BENCH_snapshot.json";

  std::printf("=== snapshot_scale%s — out-of-core v3 build + mmap serving ===\n",
              smoke ? " (smoke)" : "");
  std::printf("nodes %zu, seed %llu, %zu workers, work dir %s\n\n",
              nodes, static_cast<unsigned long long>(bench::seed()),
              core::thread_count(), work_dir.string().c_str());

  Report r;
  r.nodes = nodes;

  // ---- Build: stream the generator into the out-of-core builder. ----
  const std::filesystem::path snap_path = work_dir / "scale.snap";
  {
    const auto start = Clock::now();
    synth::PopulationModel population;
    geo::World world;
    synth::StreamGenConfig gen_config;
    gen_config.node_count = nodes;
    gen_config.seed = bench::seed();
    synth::StreamingGraphGen gen(gen_config, population, world);

    serve::OutOfCoreOptions options;
    options.work_dir = work_dir / "build";
    serve::OutOfCoreSnapshotBuilder builder(nodes, std::move(options));
    const std::uint64_t emitted = gen.stream_edges(
        [&](graph::NodeId src, graph::NodeId dst) { builder.add_edge(src, dst); });
    for (graph::NodeId u = 0; u < nodes; ++u) {
      builder.set_profile(u, gen.profile(u));
    }
    const auto stats = builder.finish(snap_path);
    r.build_s = seconds_since(start);
    r.build_peak_rss_gib = peak_rss_gib();
    r.edges = stats.edge_count;
    r.runs = stats.run_count;
    r.file_bytes = stats.total_bytes;
    std::printf("build: %.1fs, %llu emitted -> %llu unique edges, %llu runs, "
                "%.2f GiB peak RSS\n",
                r.build_s, static_cast<unsigned long long>(emitted),
                static_cast<unsigned long long>(r.edges),
                static_cast<unsigned long long>(r.runs), r.build_peak_rss_gib);
  }

  // ---- Open off mmap: O(1) validated view, then full digest verify. ----
  const auto open_start = Clock::now();
  serve::MappedSnapshot mapped(snap_path);
  const serve::SnapshotView& view = mapped.view();
  r.open_us = seconds_since(open_start) * 1e6;
  {
    const auto verify_start = Clock::now();
    try {
      view.verify_sections();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "FAIL: %s\n", e.what());
      return 1;
    }
    r.verify_s = seconds_since(verify_start);
  }
  // Compressed-adjacency footprint per stored arc (each directed edge is
  // stored twice: once per direction); the whole-file figure includes
  // permutations, profiles and the country index.
  const auto bytes = view.bytes();
  const std::uint64_t adjacency_bytes =
      header_offset(bytes, 48) - header_offset(bytes, 32);
  r.bytes_per_edge =
      static_cast<double>(adjacency_bytes) / (2.0 * static_cast<double>(r.edges));
  r.file_bytes_per_edge =
      static_cast<double>(r.file_bytes) / static_cast<double>(r.edges);
  std::printf("open: %.0fus to a validated view; verify %.2fs; "
              "%.2f B/arc adjacency, %.2f B/edge file\n",
              r.open_us, r.verify_s, r.bytes_per_edge, r.file_bytes_per_edge);
  if (r.bytes_per_edge >= 8.0) {
    std::fprintf(stderr, "FAIL: %.2f bytes/arc >= 8\n", r.bytes_per_edge);
    return 1;
  }

  // ---- §3.3 figures straight off the compressed file. ----
  {
    auto t = Clock::now();
    const auto degrees = serve::snapshot_degree_stats(view);
    r.degree_stats_s = seconds_since(t);
    r.mean_out_degree = degrees.mean_out_degree;
    r.max_in_degree = degrees.max_in_degree;
    std::printf("degrees: mean out %.2f, max out %llu, max in %llu (%.1fs)\n",
                degrees.mean_out_degree,
                static_cast<unsigned long long>(degrees.max_out_degree),
                static_cast<unsigned long long>(degrees.max_in_degree),
                r.degree_stats_s);

    t = Clock::now();
    const auto scc = serve::snapshot_scc(view);
    r.scc_s = seconds_since(t);
    r.scc_count = scc.component_count();
    r.scc_giant_fraction = scc.giant_fraction();
    std::printf("scc: %llu components, giant %.1f%% (paper 51.4%%) (%.1fs)\n",
                static_cast<unsigned long long>(r.scc_count),
                100.0 * r.scc_giant_fraction, r.scc_s);

    serve::SnapshotAnfOptions anf_options;
    anf_options.precision = static_cast<unsigned>(
        bench::env_or("GPLUS_ANF_PRECISION", smoke ? 7 : 5));
    anf_options.undirected = true;
    t = Clock::now();
    const auto anf = serve::snapshot_anf(view, anf_options);
    r.anf_s = seconds_since(t);
    r.effective_diameter = anf.effective_diameter;
    r.mean_distance = anf.mean_distance;
    std::printf("anf(p=%u): eff. diameter %.2f (paper ~5.9), mean dist %.2f "
                "(%.1fs)\n",
                anf_options.precision, r.effective_diameter, r.mean_distance,
                r.anf_s);
  }

  // ---- Serving off the mapped compressed snapshot. ----
  {
    const std::uint64_t requests =
        bench::env_or("GPLUS_REQUESTS", smoke ? 200'000 : 1'000'000);
    std::uint64_t checksum = 0;
    r.qps_degree_profile =
        run_mix(view, serve::WorkloadMix::degree_profile(), requests, checksum);
    r.qps_mixed =
        run_mix(view, serve::WorkloadMix::mixed(), requests, r.checksum_mixed);
    std::printf("serve: degree-profile %.0f q/s, mixed %.0f q/s "
                "(checksum %016llx)\n",
                r.qps_degree_profile, r.qps_mixed,
                static_cast<unsigned long long>(r.checksum_mixed));
  }

  write_json(r, json_path);
  std::printf("\nwrote %s\n", json_path.c_str());
  std::error_code ec;
  std::filesystem::remove(snap_path, ec);
  std::filesystem::remove(work_dir / "build", ec);
  std::filesystem::remove(work_dir, ec);  // only when empty
  return 0;
}
