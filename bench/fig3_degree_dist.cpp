// Figure 3: In- and out-degree CCDFs with power-law fits.
//
// The paper fits alpha = 1.3 (in) and 1.2 (out) with R² = 0.99 via linear
// regression in log-log space, and observes a sharp out-degree drop at
// 5,000 caused by Google's circle-count policy. An ablation regenerates
// the network without the cap to show the cliff is policy, not organic.
#include "bench_common.h"

#include "algo/degrees.h"
#include "core/table.h"
#include "geo/world.h"
#include "stats/descriptive.h"
#include "stats/powerlaw_mle.h"
#include "synth/graph_gen.h"

namespace {

using namespace gplus;

void print_ccdf(const std::string& label,
                const std::vector<stats::CurvePoint>& ccdf) {
  // Log-spaced sample of the curve (as the paper's log-log plot).
  std::cout << label << " (degree -> CCDF):\n";
  double next_x = 1.0;
  for (const auto& p : ccdf) {
    if (p.x + 1e-12 < next_x) continue;
    std::cout << "  " << core::fmt_double(p.x, 0) << " -> "
              << core::fmt_double(p.y, 6) << "\n";
    next_x = std::max(p.x * 2.0, 1.0);
  }
}

}  // namespace

int main() {
  using namespace gplus;
  bench::banner("Figure 3", "degree distributions (CCDF, power-law fits)");

  const auto& g = bench::dataset().graph();
  const auto in_dist = algo::in_degree_distribution(g, 3);
  const auto out_dist = algo::out_degree_distribution(g, 3);

  print_ccdf("In-degree", in_dist.ccdf);
  print_ccdf("Out-degree", out_dist.ccdf);

  std::cout << "\npower-law fits (CCDF ~ C x^-alpha):\n";
  std::cout << "  in-degree:  alpha = " << core::fmt_double(in_dist.power_law.alpha, 2)
            << ", R2 = " << core::fmt_double(in_dist.power_law.r_squared, 3)
            << "  (paper: alpha 1.3, R2 0.99)\n";
  std::cout << "  out-degree: alpha = " << core::fmt_double(out_dist.power_law.alpha, 2)
            << ", R2 = " << core::fmt_double(out_dist.power_law.r_squared, 3)
            << "  (paper: alpha 1.2, R2 0.99)\n";
  std::cout << "  max in-degree " << in_dist.max << ", max out-degree "
            << out_dist.max << "\n";

  // Second opinion: the Clauset-Shalizi-Newman MLE (density exponent
  // converted to the paper's CCDF convention) with KS-optimal threshold.
  const auto in_mle = stats::fit_power_law_auto(algo::in_degrees(g));
  const auto out_mle = stats::fit_power_law_auto(algo::out_degrees(g));
  std::cout << "\nCSN maximum-likelihood fits (CCDF-exponent convention):\n";
  std::cout << "  in-degree:  alpha = " << core::fmt_double(in_mle.ccdf_alpha(), 2)
            << " (x_min " << in_mle.x_min << ", KS "
            << core::fmt_double(in_mle.ks_distance, 3) << ", tail n = "
            << in_mle.tail_samples << ")\n";
  std::cout << "  out-degree: alpha = " << core::fmt_double(out_mle.ccdf_alpha(), 2)
            << " (x_min " << out_mle.x_min << ", KS "
            << core::fmt_double(out_mle.ks_distance, 3) << ", tail n = "
            << out_mle.tail_samples << ")\n";

  // The 5,000 cliff: out-degree CCDF mass just below vs just above the cap.
  const auto mass_above = [](const std::vector<stats::CurvePoint>& ccdf, double x) {
    for (const auto& p : ccdf) {
      if (p.x >= x) return p.y;
    }
    return 0.0;
  };
  // Audience concentration (§3.3.1: "a small fraction of the individuals
  // have disproportionately large number of neighbors").
  {
    std::vector<double> in_as_double;
    in_as_double.reserve(g.node_count());
    for (auto d : algo::in_degrees(g)) {
      in_as_double.push_back(static_cast<double>(d));
    }
    std::cout << "\naudience concentration: Gini(in-degree) = "
              << core::fmt_double(stats::gini_coefficient(in_as_double), 3)
              << " (0 = equal, 1 = one account owns every follower)\n";
  }

  std::cout << "\n--- Out-degree cap ablation (paper §3.3.1: cliff at 5,000) ---\n";
  std::cout << "with cap:    P[out >= 4500] = "
            << core::fmt_double(mass_above(out_dist.ccdf, 4500), 8)
            << ", P[out >= 5500] = "
            << core::fmt_double(mass_above(out_dist.ccdf, 5500), 8) << "\n";

  synth::GraphGenConfig uncapped = synth::google_plus_preset(bench::scale(), bench::seed());
  uncapped.enforce_out_cap = false;
  const synth::PopulationModel population;
  const geo::World world;
  const auto free_net = synth::generate_network(uncapped, population, world);
  const auto free_out = algo::out_degree_distribution(free_net.graph, 3);
  std::cout << "without cap: P[out >= 4500] = "
            << core::fmt_double(mass_above(free_out.ccdf, 4500), 8)
            << ", P[out >= 5500] = "
            << core::fmt_double(mass_above(free_out.ccdf, 5500), 8)
            << ", max out-degree " << free_out.max << "\n";
  std::cout << "(with the cap, only exempt celebrity accounts pass 5,000 — the"
               " paper's conjecture about special users)\n";
  return 0;
}
