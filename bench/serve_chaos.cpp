// Seeded kill/swap/overload storm against the resilient serving stack.
//
// The storm script (src/serve/resilience.h): serve snapshot A under
// injected engine faults, forced slowdown deadlines and queue pressure;
// attempt a doomed install of snapshot B (forced canary failure → must
// roll back to A); hot-swap to B for real; kill the active snapshot (a
// degraded stretch served from the stale cache); roll back; keep serving.
//
// Storm traffic, probe streams and the canary cover every request family
// — including the 2-hop kSuggest scatter path — so a regression in any
// handler trips the checksum or registry reconciliation below.
//
// The run *asserts* the resilience invariants rather than just printing
// numbers — this binary exits nonzero when any is violated:
//   1. every admitted request reaches exactly one terminal status, and
//      offered == accepted + rejected (no silent drops);
//   2. the storm-worn server answers a fixed probe set byte-identically
//      to a fresh server over the same final generation (post-storm state
//      equals a storm-free run's);
//   3. the whole storm — response stream, counters, cache state — is
//      bit-identical between GPLUS_THREADS=1 and GPLUS_THREADS=N.
//
// `--shards K` additionally runs the sharded-cluster storm
// (src/serve/cluster.h): K shards × 2 replicas under scripted replica
// kills, a fully-dark shard window, recovery, and the same chaos
// channels — asserting one terminal status per request, zero silent
// drops, per-replica registry reconciliation, and byte-identical state
// (including the deterministic metrics JSON) at 1 vs N lanes.
//
// `--transport` additionally runs the cluster storm over a seeded faulty
// transport (drops, delays, duplicates, reordering between router and
// replicas): timeouts, capped retries, hedged sends, circuit breakers and
// quorum-degraded answers all fire, and the same invariants must still
// hold — every accepted request one terminal status, serve.transport.*
// registry deltas reconciling exactly, the whole storm byte-identical at
// 1 vs N lanes.
//
// `--smoke` shrinks the dataset and round count for the CI matrix. Every
// run writes a machine-readable report (default BENCH_chaos.json,
// override with GPLUS_BENCH_CHAOS_JSON).
// Scale with GPLUS_SCALE / GPLUS_SEED / GPLUS_ROUNDS.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "bench_common.h"
#include "core/parallel.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "serve/cluster.h"
#include "serve/resilience.h"
#include "serve/snapshot.h"
#include "serve/snapshot_build.h"

namespace {

using namespace gplus;

void print_report(const char* label, const serve::StormReport& report) {
  std::printf(
      "%-10s offered %llu  accepted %llu  rejected %llu  responses %llu  "
      "checksum %016llx  epoch %llu\n",
      label, static_cast<unsigned long long>(report.offered),
      static_cast<unsigned long long>(report.accepted),
      static_cast<unsigned long long>(report.rejected),
      static_cast<unsigned long long>(report.responses),
      static_cast<unsigned long long>(report.checksum),
      static_cast<unsigned long long>(report.final_epoch));
  std::printf("           by status:");
  for (std::size_t s = 0; s < serve::kServeStatusCount; ++s) {
    if (report.by_status[s] == 0) continue;
    std::printf(" %s=%llu",
                std::string(serve::serve_status_name(
                                static_cast<serve::ServeStatus>(s)))
                    .c_str(),
                static_cast<unsigned long long>(report.by_status[s]));
  }
  std::printf("\n           stale served %llu  deadline exceeded %llu  "
              "shed %llu  probe %016llx (fresh %016llx)\n",
              static_cast<unsigned long long>(report.server.stale_served),
              static_cast<unsigned long long>(report.server.deadline_exceeded),
              static_cast<unsigned long long>(report.server.shed),
              static_cast<unsigned long long>(report.post_probe_checksum),
              static_cast<unsigned long long>(report.fresh_probe_checksum));
}

// Reconciles the metrics-registry delta across one storm against the
// storm's own bookkeeping. The post-storm probe streams (worn + fresh
// server, `probes_run` requests each) are the only traffic beyond the
// storm's `offered`: probes submit at most queue_capacity per drain with
// high priority and unlimited budget into a non-degraded server, so they
// can only terminate ok/invalid — every overload/degradation channel in
// the registry must match the report exactly.
int reconcile_registry(const char* label, const obs::MetricsSnapshot& d,
                       const serve::StormReport& report,
                       std::uint64_t probes_run) {
  int failures = 0;
  const auto expect = [&](const std::string& name, std::uint64_t want) {
    const auto got = static_cast<std::uint64_t>(d.value(name));
    if (got != want) {
      std::printf("VIOLATION (%s): registry %s=%llu but bookkeeping says "
                  "%llu\n",
                  label, name.c_str(), static_cast<unsigned long long>(got),
                  static_cast<unsigned long long>(want));
      ++failures;
    }
  };
  const auto by_status = [&](serve::ServeStatus s) {
    return report.by_status[static_cast<std::size_t>(s)];
  };
  expect("serve.status.rejected", report.rejected);
  expect("serve.status.shed", by_status(serve::ServeStatus::kShed));
  expect("serve.status.deadline-exceeded",
         by_status(serve::ServeStatus::kDeadlineExceeded));
  expect("serve.status.fault-injected",
         by_status(serve::ServeStatus::kFaultInjected));
  expect("serve.status.stale-cache",
         by_status(serve::ServeStatus::kStaleCache));
  expect("serve.status.unavailable",
         by_status(serve::ServeStatus::kUnavailable));
  expect("serve.accepted", report.accepted + 2 * probes_run);
  expect("serve.served", report.responses + 2 * probes_run);
  expect("serve.rejected", report.rejected);
  expect("serve.shed", by_status(serve::ServeStatus::kShed));

  // The headline invariant: every offered request reached exactly one
  // terminal status, so offered == sum of terminal-status counters (after
  // discounting the probe streams, which are extra traffic).
  std::uint64_t terminal = 0;
  for (std::size_t s = 0; s < serve::kServeStatusCount; ++s) {
    terminal += static_cast<std::uint64_t>(d.value(
        "serve.status." +
        std::string(serve::serve_status_name(
            static_cast<serve::ServeStatus>(s)))));
  }
  if (terminal != report.offered + 2 * probes_run) {
    std::printf("VIOLATION (%s): offered %llu != terminal-status sum %llu "
                "(- %llu probe responses)\n",
                label, static_cast<unsigned long long>(report.offered),
                static_cast<unsigned long long>(terminal),
                static_cast<unsigned long long>(2 * probes_run));
    ++failures;
  }
  return failures;
}

void print_cluster_report(const char* label,
                          const serve::ClusterStormReport& report) {
  std::printf(
      "%-10s offered %llu  accepted %llu  rejected %llu  responses %llu  "
      "dark %llu  quorum %llu  checksum %016llx\n",
      label, static_cast<unsigned long long>(report.offered),
      static_cast<unsigned long long>(report.accepted),
      static_cast<unsigned long long>(report.rejected),
      static_cast<unsigned long long>(report.responses),
      static_cast<unsigned long long>(report.dark_answers),
      static_cast<unsigned long long>(report.quorum_answers),
      static_cast<unsigned long long>(report.checksum));
  std::printf("           by status:");
  for (std::size_t s = 0; s < serve::kServeStatusCount; ++s) {
    if (report.by_status[s] == 0) continue;
    std::printf(" %s=%llu",
                std::string(serve::serve_status_name(
                                static_cast<serve::ServeStatus>(s)))
                    .c_str(),
                static_cast<unsigned long long>(report.by_status[s]));
  }
  std::printf("\n           scatter %llu  messages %llu  probe %016llx "
              "(unsharded %016llx)\n",
              static_cast<unsigned long long>(report.cluster.scatter),
              static_cast<unsigned long long>(report.cluster.messages),
              static_cast<unsigned long long>(report.post_probe_checksum),
              static_cast<unsigned long long>(report.unsharded_probe_checksum));
  const serve::TransportStats& t = report.transport;
  if (t.rpcs == 0) return;
  std::printf("           transport: rpcs %llu  delivered %llu  failed %llu  "
              "timeouts %llu  retries %llu  hedges %llu (won %llu)\n",
              static_cast<unsigned long long>(t.rpcs),
              static_cast<unsigned long long>(t.delivered),
              static_cast<unsigned long long>(t.failed),
              static_cast<unsigned long long>(t.timeouts),
              static_cast<unsigned long long>(t.retries),
              static_cast<unsigned long long>(t.hedges),
              static_cast<unsigned long long>(t.hedge_wins));
  std::printf("           breaker: open %llu  close %llu  probes %llu  "
              "skips %llu  dup %llu  reorder %llu  ticks %llu\n",
              static_cast<unsigned long long>(t.breaker_open),
              static_cast<unsigned long long>(t.breaker_close),
              static_cast<unsigned long long>(t.breaker_probes),
              static_cast<unsigned long long>(t.breaker_skips),
              static_cast<unsigned long long>(t.duplicates),
              static_cast<unsigned long long>(t.reorders),
              static_cast<unsigned long long>(t.ticks));
}

bool equal_transport_stats(const serve::TransportStats& a,
                           const serve::TransportStats& b) {
  return a.rpcs == b.rpcs && a.attempts == b.attempts &&
         a.delivered == b.delivered && a.failed == b.failed &&
         a.dropped == b.dropped && a.delayed == b.delayed &&
         a.timeouts == b.timeouts && a.retries == b.retries &&
         a.hedges == b.hedges && a.hedge_wins == b.hedge_wins &&
         a.duplicates == b.duplicates && a.dup_suppressed == b.dup_suppressed &&
         a.reorders == b.reorders && a.breaker_open == b.breaker_open &&
         a.breaker_close == b.breaker_close &&
         a.breaker_probes == b.breaker_probes &&
         a.breaker_skips == b.breaker_skips && a.ticks == b.ticks;
}

bool equal_cluster_state(const serve::ClusterStormReport& a,
                         const serve::ClusterStormReport& b) {
  if (a.checksum != b.checksum || a.by_status != b.by_status ||
      a.offered != b.offered || a.accepted != b.accepted ||
      a.rejected != b.rejected || a.dark_answers != b.dark_answers ||
      a.quorum_answers != b.quorum_answers ||
      a.post_probe_checksum != b.post_probe_checksum ||
      a.cluster.scatter != b.cluster.scatter ||
      a.cluster.messages != b.cluster.messages ||
      a.cluster.quorum_answers != b.cluster.quorum_answers ||
      !equal_transport_stats(a.transport, b.transport) ||
      a.replica_stats.size() != b.replica_stats.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.replica_stats.size(); ++i) {
    const auto& ra = a.replica_stats[i];
    const auto& rb = b.replica_stats[i];
    if (ra.accepted != rb.accepted || ra.served != rb.served ||
        ra.shed != rb.shed || ra.deadline_exceeded != rb.deadline_exceeded ||
        ra.fault_injected != rb.fault_injected ||
        ra.cache.hits != rb.cache.hits || ra.cache.misses != rb.cache.misses ||
        ra.cache.evictions != rb.cache.evictions ||
        ra.cache.entries != rb.cache.entries) {
      return false;
    }
  }
  return true;
}

bool equal_state(const serve::StormReport& a, const serve::StormReport& b) {
  return a.checksum == b.checksum && a.by_status == b.by_status &&
         a.offered == b.offered && a.accepted == b.accepted &&
         a.rejected == b.rejected && a.final_epoch == b.final_epoch &&
         a.post_probe_checksum == b.post_probe_checksum &&
         a.server.cache.hits == b.server.cache.hits &&
         a.server.cache.stale_hits == b.server.cache.stale_hits &&
         a.server.cache.misses == b.server.cache.misses &&
         a.server.cache.evictions == b.server.cache.evictions &&
         a.server.cache.entries == b.server.cache.entries &&
         a.server.shed == b.server.shed &&
         a.server.deadline_exceeded == b.server.deadline_exceeded &&
         a.server.fault_injected == b.server.fault_injected &&
         a.server.stale_served == b.server.stale_served &&
         a.server.unavailable == b.server.unavailable;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gplus;
  bool smoke = false;
  bool transport = false;
  std::size_t shards = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--transport") == 0) {
      transport = true;
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::strtoull(argv[++i], nullptr, 10);
    }
  }
  if (transport && shards == 0) {
    std::fprintf(stderr,
                 "serve_chaos: --transport needs --shards K (the fault model "
                 "sits between router and shard replicas)\n");
    return 1;
  }

  bench::banner("serve_chaos",
                "kill/swap/overload storm against the resilient server");

  const std::size_t nodes = smoke ? 5'000 : bench::scale();
  const std::uint64_t seed = bench::seed();
  const auto dataset_a = core::make_standard_dataset(nodes, seed);
  const auto dataset_b = core::make_standard_dataset(nodes, seed + 1);
  const auto primary = serve::build_snapshot(dataset_a);
  const auto candidate = serve::build_snapshot(dataset_b);
  std::printf("snapshots: %zu nodes each, %zu + %zu bytes, %zu workers%s\n\n",
              nodes, primary.size(), candidate.size(), core::thread_count(),
              smoke ? " (smoke)" : "");

  serve::StormConfig config;
  config.seed = seed;
  config.clients = 64;
  config.rounds = bench::env_or("GPLUS_ROUNDS", smoke ? 160 : 800);
  config.probes = 512;
  config.chaos.fault_rate = 0.01;
  config.chaos.slow_rate = 0.05;
  config.chaos.slow_budget = 16;
  config.chaos.pressure_rate = 0.15;
  config.chaos.pressure_capacity = 24;
  config.server.queue_capacity = 48;  // below clients: real overload
  config.server.cache_capacity = 1 << 12;

  auto& registry = obs::MetricsRegistry::global();
  const auto before_storm = registry.snapshot();
  const auto storm = serve::run_chaos_storm(primary, candidate, config);
  const auto after_storm = registry.snapshot();
  print_report("storm", storm);

  // Determinism leg: the identical storm at one lane.
  const std::size_t lanes = core::thread_count();
  core::set_thread_count(1);
  const auto serial = serve::run_chaos_storm(primary, candidate, config);
  core::set_thread_count(0);
  const auto after_serial = registry.snapshot();
  print_report("serial", serial);

  int failures = 0;
  for (const std::string& violation : storm.violations) {
    std::printf("VIOLATION (storm): %s\n", violation.c_str());
    ++failures;
  }
  for (const std::string& violation : serial.violations) {
    std::printf("VIOLATION (serial): %s\n", violation.c_str());
    ++failures;
  }
  if (!storm.forced_rollback_fired) {
    std::printf("VIOLATION: forced-canary rollback never fired\n");
    ++failures;
  }
  if (!equal_state(storm, serial)) {
    std::printf("VIOLATION: storm state differs between %zu lanes and 1\n",
                lanes);
    ++failures;
  }

  // Registry reconciliation: the metrics deltas across each storm leg must
  // match that leg's own bookkeeping exactly, and the two legs' deltas
  // must serialize identically (the metrics restatement of 1-vs-N
  // bit-identity; probe streams only run when the storm ends non-degraded).
  const std::uint64_t probes_run =
      storm.post_probe_checksum != 0 ? config.probes : 0;
  const auto d_storm = obs::delta(after_storm, before_storm);
  const auto d_serial = obs::delta(after_serial, after_storm);
  failures += reconcile_registry("storm", d_storm, storm, probes_run);
  failures += reconcile_registry("serial", d_serial, serial, probes_run);
  const auto deterministic_only = [](const obs::MetricsSnapshot& snap) {
    obs::MetricsSnapshot out;
    for (const auto& [name, entry] : snap.entries) {
      if (entry.determinism == obs::Determinism::kDeterministic) {
        out.entries.emplace(name, entry);
      }
    }
    return out;
  };
  const std::string json = obs::to_json(deterministic_only(d_storm));
  if (json != obs::to_json(deterministic_only(d_serial))) {
    std::printf("VIOLATION: deterministic metrics deltas differ between "
                "%zu lanes and 1\n",
                lanes);
    ++failures;
  }
  std::printf("\nmetrics delta per storm (deterministic, %zu-lane == 1-lane "
              "bit-identical):\n%s",
              lanes, json.c_str());

  // Sharded-cluster storm: scripted replica kills, a dark-shard window,
  // recovery, then probe equivalence against the unsharded engine. Run at
  // N lanes and again at 1 lane; state and the deterministic metrics JSON
  // must be byte-identical.
  serve::ClusterStormReport cluster_report;
  if (shards > 0) {
    std::printf("\n--- cluster storm: %zu shards x 2 replicas%s ---\n", shards,
                transport ? " over a faulty transport" : "");
    const serve::SnapshotView primary_view(primary.bytes());
    serve::ShardingOptions opts;
    opts.shard_count = shards;
    const auto sharded = serve::split_snapshot(primary_view, opts);

    serve::ClusterStormConfig cluster_config;
    cluster_config.seed = config.seed;
    cluster_config.clients = config.clients;
    cluster_config.rounds = config.rounds;
    cluster_config.probes = config.probes;
    cluster_config.replicas = 2;
    cluster_config.chaos = config.chaos;
    cluster_config.server = config.server;
    if (transport) {
      cluster_config.transport.enabled = true;
      cluster_config.transport.seed = config.seed ^ 0x7E5AULL;
      cluster_config.transport.profile.drop_rate = 0.03;
      cluster_config.transport.profile.delay_rate = 0.10;
      cluster_config.transport.profile.delay_min = 4;
      cluster_config.transport.profile.delay_max = 40;
      cluster_config.transport.profile.duplicate_rate = 0.02;
      cluster_config.transport.profile.reorder_rate = 0.05;
    }

    const auto before_cluster = registry.snapshot();
    const auto cluster_storm =
        serve::run_cluster_storm(sharded, primary_view, cluster_config);
    const auto after_cluster = registry.snapshot();
    print_cluster_report("cluster", cluster_storm);

    core::set_thread_count(1);
    const auto cluster_serial =
        serve::run_cluster_storm(sharded, primary_view, cluster_config);
    core::set_thread_count(0);
    const auto after_cluster_serial = registry.snapshot();
    print_cluster_report("serial", cluster_serial);

    for (const std::string& violation : cluster_storm.violations) {
      std::printf("VIOLATION (cluster): %s\n", violation.c_str());
      ++failures;
    }
    for (const std::string& violation : cluster_serial.violations) {
      std::printf("VIOLATION (cluster serial): %s\n", violation.c_str());
      ++failures;
    }
    if (!equal_cluster_state(cluster_storm, cluster_serial)) {
      std::printf("VIOLATION: cluster storm state differs between %zu lanes "
                  "and 1\n",
                  lanes);
      ++failures;
    }
    const auto d_cluster = obs::delta(after_cluster, before_cluster);
    const auto d_cluster_serial =
        obs::delta(after_cluster_serial, after_cluster);
    const std::string cluster_json = obs::to_json(deterministic_only(d_cluster));
    if (cluster_json != obs::to_json(deterministic_only(d_cluster_serial))) {
      std::printf("VIOLATION: deterministic cluster metrics deltas differ "
                  "between %zu lanes and 1\n",
                  lanes);
      ++failures;
    }
    std::printf("\ncluster metrics delta (deterministic, byte-identical at 1 "
                "and %zu lanes):\n%s",
                lanes, cluster_json.c_str());
    cluster_report = cluster_storm;
  }

  // Machine-readable report for the CI artifact: the storm totals, the
  // cluster degradation counts and the full transport counter set.
  const char* json_env = std::getenv("GPLUS_BENCH_CHAOS_JSON");
  const std::string json_path =
      json_env != nullptr && *json_env != '\0' ? json_env : "BENCH_chaos.json";
  {
    const serve::TransportStats& t = cluster_report.transport;
    std::ofstream out(json_path);
    out << "{\n"
        << "  \"bench\": \"serve_chaos\",\n"
        << "  \"nodes\": " << nodes << ",\n"
        << "  \"rounds\": " << config.rounds << ",\n"
        << "  \"threads\": " << lanes << ",\n"
        << "  \"shards\": " << shards << ",\n"
        << "  \"transport\": " << (transport ? 1 : 0) << ",\n"
        << "  \"offered\": " << storm.offered << ",\n"
        << "  \"accepted\": " << storm.accepted << ",\n"
        << "  \"responses\": " << storm.responses << ",\n"
        << "  \"checksum\": \"" << std::hex << storm.checksum << std::dec
        << "\",\n"
        << "  \"cluster_offered\": " << cluster_report.offered << ",\n"
        << "  \"cluster_accepted\": " << cluster_report.accepted << ",\n"
        << "  \"cluster_responses\": " << cluster_report.responses << ",\n"
        << "  \"cluster_dark\": " << cluster_report.dark_answers << ",\n"
        << "  \"cluster_quorum\": " << cluster_report.quorum_answers << ",\n"
        << "  \"cluster_checksum\": \"" << std::hex << cluster_report.checksum
        << std::dec << "\",\n"
        << "  \"transport_rpcs\": " << t.rpcs << ",\n"
        << "  \"transport_attempts\": " << t.attempts << ",\n"
        << "  \"transport_delivered\": " << t.delivered << ",\n"
        << "  \"transport_failed\": " << t.failed << ",\n"
        << "  \"transport_dropped\": " << t.dropped << ",\n"
        << "  \"transport_timeouts\": " << t.timeouts << ",\n"
        << "  \"transport_retries\": " << t.retries << ",\n"
        << "  \"transport_hedges\": " << t.hedges << ",\n"
        << "  \"transport_hedge_wins\": " << t.hedge_wins << ",\n"
        << "  \"transport_duplicates\": " << t.duplicates << ",\n"
        << "  \"transport_reorders\": " << t.reorders << ",\n"
        << "  \"transport_breaker_open\": " << t.breaker_open << ",\n"
        << "  \"transport_breaker_close\": " << t.breaker_close << ",\n"
        << "  \"transport_ticks\": " << t.ticks << "\n"
        << "}\n";
  }
  std::printf("\nwrote %s\n", json_path.c_str());

  if (failures == 0) {
    std::printf("\nall invariants held: one terminal status per request, "
                "no silent drops, state bit-identical at 1 and %zu lanes\n",
                lanes);
    return 0;
  }
  std::printf("\n%d invariant violation(s)\n", failures);
  return 1;
}
