// Table 3: Information shared by all users vs tel-users.
//
// Tel-users publish a phone number (work or home contact). The paper finds
// them male-skewed, single-skewed, and strongly over-represented in India.
#include "bench_common.h"

#include "core/analysis.h"
#include "core/table.h"

int main() {
  using namespace gplus;
  bench::banner("Table 3", "information shared by all users and tel-users");

  const auto& ds = bench::dataset();
  const auto all = core::cohort_breakdown(ds, false);
  const auto tel = core::cohort_breakdown(ds, true);

  core::TextTable table({"", "All users", "Tel-users", "Paper (all)", "Paper (tel)"});
  table.add_row({"Total", core::fmt_count(all.total), core::fmt_count(tel.total),
                 "27,556,390", "72,736"});

  table.add_row({"Gender (N)", core::fmt_count(all.gender_n),
                 core::fmt_count(tel.gender_n), "26,914,758", "71,267"});
  const char* paper_gender_all[] = {"67.65%", "31.46%", "0.89%"};
  const char* paper_gender_tel[] = {"85.99%", "11.26%", "2.75%"};
  for (std::size_t g = 0; g < synth::kGenderCount; ++g) {
    table.add_row({"  " + std::string(synth::gender_name(static_cast<synth::Gender>(g))),
                   core::fmt_percent(all.gender_share[g]),
                   core::fmt_percent(tel.gender_share[g]), paper_gender_all[g],
                   paper_gender_tel[g]});
  }

  table.add_row({"Relationship (N)", core::fmt_count(all.relationship_n),
                 core::fmt_count(tel.relationship_n), "1,186,903", "29,068"});
  const char* paper_rel_all[] = {"42.82%", "26.59%", "19.80%", "3.16%", "4.39%",
                                 "1.26%",  "0.50%",  "1.08%",  "0.39%"};
  const char* paper_rel_tel[] = {"57.24%", "21.03%", "10.23%", "3.98%", "2.98%",
                                 "2.77%",  "0.58%",  "0.77%",  "0.41%"};
  for (std::size_t r = 0; r < synth::kRelationshipCount; ++r) {
    table.add_row(
        {"  " + std::string(synth::relationship_name(static_cast<synth::Relationship>(r))),
         core::fmt_percent(all.relationship_share[r]),
         core::fmt_percent(tel.relationship_share[r]), paper_rel_all[r],
         paper_rel_tel[r]});
  }

  table.add_row({"Location (N)", core::fmt_count(all.location_n),
                 core::fmt_count(tel.location_n), "6,621,644", "45,676"});
  const char* loc_names[] = {"United States", "India", "Brazil",
                             "United Kingdom", "Canada", "Other"};
  const char* paper_loc_all[] = {"31.38%", "16.71%", "5.76%",
                                 "3.35%",  "2.30%",  "40.50%"};
  const char* paper_loc_tel[] = {"8.92%", "31.90%", "4.72%",
                                 "2.19%", "1.52%",  "50.77%"};
  for (std::size_t i = 0; i < 6; ++i) {
    table.add_row({"  " + std::string(loc_names[i]),
                   core::fmt_percent(all.location_share[i]),
                   core::fmt_percent(tel.location_share[i]), paper_loc_all[i],
                   paper_loc_tel[i]});
  }
  std::cout << table.str();
  return 0;
}
