// Figure 2: CCDF of the number of profile fields shared — tel-users vs all
// users (Work/Home contact excluded from the tally).
//
// The paper reports that 10% of all users share more than six fields while
// 66% of tel-users do. We print both CCDF series at integer field counts.
#include "bench_common.h"

#include "core/analysis.h"
#include "core/table.h"

namespace {

double ccdf_at(const std::vector<gplus::stats::CurvePoint>& curve, double x) {
  // P[X >= x]: the y of the first point at or beyond x; 0 past the end.
  for (const auto& p : curve) {
    if (p.x >= x) return p.y;
  }
  return 0.0;
}

}  // namespace

int main() {
  using namespace gplus;
  bench::banner("Figure 2", "number of fields shared by users in the profile");

  const auto& ds = bench::dataset();
  const auto all = core::fields_shared_ccdf(ds, false);
  const auto tel = core::fields_shared_ccdf(ds, true);

  core::TextTable table({"# fields >=", "All users CCDF", "Tel-users CCDF"});
  for (int f = 1; f <= 16; ++f) {
    table.add_row({std::to_string(f), core::fmt_double(ccdf_at(all, f), 3),
                   core::fmt_double(ccdf_at(tel, f), 3)});
  }
  std::cout << table.str() << "\n";

  std::cout << "share with more than six fields: all users "
            << core::fmt_percent(ccdf_at(all, 7)) << " (paper: 10%), tel-users "
            << core::fmt_percent(ccdf_at(tel, 7)) << " (paper: 66%)\n";
  std::cout << "tel-user curve dominates the all-user curve: ";
  bool dominates = true;
  for (int f = 2; f <= 12; ++f) {
    dominates &= ccdf_at(tel, f) >= ccdf_at(all, f) - 1e-9;
  }
  std::cout << (dominates ? "yes" : "NO") << "\n";
  return 0;
}
