// §2.2 methodology reproduction: the BFS crawl itself.
//
// Reproduces the paper's collection pipeline on the simulated service:
//  * bidirectional BFS from the most popular user (the paper seeded at
//    Mark Zuckerberg), with 11 simulated machines and a latency model;
//  * the lost-edge estimate from the 10,000-entry public-circle cap (the
//    paper found 915 users above the cap and a 1.6% loss);
//  * the BFS degree-bias caveat, quantified at several coverage levels —
//    something the authors could not do without the ground truth.
#include "bench_common.h"

#include "algo/scc.h"
#include "core/analysis.h"
#include "core/table.h"
#include "crawler/bias.h"
#include "crawler/crawler.h"
#include "crawler/fleet.h"
#include "service/service.h"

int main() {
  using namespace gplus;
  bench::banner("Methodology (§2.2)", "BFS crawl, circle cap, sampling bias");

  const auto& ds = bench::dataset();

  // Scale the cap so it bites the same way 10,000 did on the 35M-node
  // crawl: only the very top accounts exceed it.
  service::ServiceConfig sconfig;
  sconfig.circle_list_cap = bench::env_or("GPLUS_CIRCLE_CAP", 2'000);
  service::SocialService svc(&ds.graph(), ds.profiles, sconfig);

  crawler::CrawlConfig config;
  config.seed_node = core::top_users(ds, 1)[0].node;
  config.machines = 11;

  std::cout << "--- Full bidirectional crawl (11 simulated machines) ---\n";
  const auto full = crawler::run_bfs_crawl(svc, config);
  std::cout << "profiles crawled: " << core::fmt_count(full.stats.profiles_crawled)
            << ", boundary nodes: " << core::fmt_count(full.stats.boundary_nodes)
            << "\n";
  std::cout << "edges collected: " << core::fmt_count(full.stats.edges_collected)
            << " (deduped graph: " << core::fmt_count(full.graph.edge_count())
            << ")\n";
  std::cout << "requests: " << core::fmt_count(full.stats.requests)
            << ", simulated crawl time: "
            << core::fmt_double(full.stats.simulated_hours, 1)
            << " h (paper: Nov 11 - Dec 27, 2011)\n";
  std::cout << "users with a truncated list: "
            << core::fmt_count(full.stats.capped_users) << "\n";
  const auto sccs = algo::strongly_connected_components(full.graph);
  std::cout << "giant SCC of the crawled snapshot: "
            << core::fmt_percent(sccs.giant_fraction(), 1)
            << " of crawled nodes (paper: 72%)\n\n";

  std::cout << "--- Lost-edge estimate (paper: 915 users over cap, 1.6%) ---\n";
  core::TextTable lost({"Crawl coverage", "Users over cap", "Displayed",
                        "Collected", "Lost fraction"});
  for (double coverage : {0.25, 0.5, 1.0}) {
    service::SocialService fresh(&ds.graph(), ds.profiles, sconfig);
    crawler::CrawlConfig partial = config;
    partial.max_profiles =
        coverage >= 1.0 ? 0
                        : static_cast<std::size_t>(coverage *
                                                   static_cast<double>(ds.user_count()));
    const auto crawl = crawler::run_bfs_crawl(fresh, partial);
    const auto est = crawler::estimate_lost_edges(fresh, crawl);
    lost.add_row({core::fmt_percent(coverage, 0),
                  core::fmt_count(est.users_over_cap),
                  core::fmt_count(est.displayed_total),
                  core::fmt_count(est.collected_total),
                  core::fmt_percent(est.lost_fraction, 2)});
  }
  std::cout << lost.str();
  std::cout << "(a complete bidirectional crawl recovers capped edges from the\n"
               " source side — exactly the paper's recovery argument; the\n"
               " residual loss comes from never-crawled followers)\n\n";

  std::cout << "--- BFS sampling bias vs coverage (§2.2 caveat, [18,35]) ---\n";
  core::TextTable bias({"Coverage", "Sample mean in-degree", "True mean",
                        "Bias ratio", "Edge recall"});
  for (double coverage : {0.05, 0.15, 0.30, 0.56, 1.0}) {
    service::SocialService fresh(&ds.graph(), ds.profiles, sconfig);
    crawler::CrawlConfig partial = config;
    partial.max_profiles =
        coverage >= 1.0 ? 0
                        : static_cast<std::size_t>(coverage *
                                                   static_cast<double>(ds.user_count()));
    const auto crawl = crawler::run_bfs_crawl(fresh, partial);
    const auto report = crawler::measure_bias(ds.graph(), crawl);
    bias.add_row({core::fmt_percent(report.coverage, 0),
                  core::fmt_double(report.sample_mean_in_degree, 1),
                  core::fmt_double(report.truth_mean_in_degree, 1),
                  core::fmt_double(report.degree_bias_ratio, 2),
                  core::fmt_percent(report.edge_recall, 1)});
  }
  std::cout << bias.str();
  std::cout << "(the paper crawled 56% of the network: at that coverage the\n"
               " BFS over-samples popular users, inflating degree estimates)\n\n";

  std::cout << "--- Crawl fleet: makespan vs machine count (paper: 11 machines,"
               " Nov 11 - Dec 27 = 46 days) ---\n";
  core::TextTable fleet_table({"Machines", "Makespan (days)", "Utilization",
                               "Requests"});
  for (std::size_t machines : {1u, 4u, 11u, 22u}) {
    service::SocialService fresh(&ds.graph(), ds.profiles, sconfig);
    crawler::FleetConfig fconfig;
    fconfig.seed_node = config.seed_node;
    fconfig.machines = machines;
    const auto fleet = crawler::run_crawl_fleet(fresh, fconfig);
    fleet_table.add_row({std::to_string(machines),
                         core::fmt_double(fleet.makespan_days, 1),
                         core::fmt_percent(fleet.mean_utilization, 0),
                         core::fmt_count(fleet.requests)});
  }
  std::cout << fleet_table.str();
  std::cout << "(rate-limited machines with a shared frontier: at 2 req/s per\n"
               " machine the 46-day figure becomes a model output — scale the\n"
               " node count up and the 11-machine makespan walks toward it)\n";
  return 0;
}
