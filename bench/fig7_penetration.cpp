// Figure 7: (a) GDP per capita vs Google+ penetration rate (GPR);
//           (b) GDP per capita vs Internet penetration rate (IPR).
//
// Paper observations: IPR is nearly linear in GDP per capita; GPR is not —
// India tops GPR despite low GDP, while Japan / Russia / China sit far
// below their Internet penetration (domestic networks / blocking).
#include "bench_common.h"

#include "core/geo_analysis.h"
#include "core/table.h"
#include "stats/descriptive.h"

int main() {
  using namespace gplus;
  bench::banner("Figure 7", "GDP per capita vs Google+ / Internet penetration");

  const auto& ds = bench::dataset();
  auto points = core::penetration_by_country(ds);
  const std::size_t top_n = std::min<std::size_t>(20, points.size());

  core::TextTable table({"Country", "Region", "GDP/capita (PPP)",
                         "GPR (relative)", "IPR", "Dataset users"});
  for (std::size_t i = 0; i < top_n; ++i) {
    const auto& p = points[i];
    const auto& c = geo::country(p.country);
    table.add_row({std::string(c.name), std::string(geo::region_name(c.region)),
                   core::fmt_count(static_cast<std::uint64_t>(p.gdp_per_capita)),
                   core::fmt_double(p.gpr_relative, 3),
                   core::fmt_percent(p.ipr, 0), core::fmt_count(p.dataset_users)});
  }
  std::cout << table.str() << "\n";

  // Correlation structure (the figure's headline contrast).
  std::vector<double> gdp, ipr, gpr;
  for (std::size_t i = 0; i < top_n; ++i) {
    gdp.push_back(points[i].gdp_per_capita);
    ipr.push_back(points[i].ipr);
    gpr.push_back(points[i].gpr_relative);
  }
  const double corr_ipr = stats::pearson_correlation(gdp, ipr);
  const double corr_gpr = stats::pearson_correlation(gdp, gpr);
  std::cout << "corr(GDP, IPR) = " << core::fmt_double(corr_ipr, 2)
            << "  (paper: near-linear)\n";
  std::cout << "corr(GDP, GPR) = " << core::fmt_double(corr_gpr, 2)
            << "  (paper: no such trend)\n";
  std::cout << "GPR leader: " << geo::country(points[0].country).name
            << "  (paper: India)\n";

  auto gpr_of = [&](std::string_view code) {
    for (const auto& p : points) {
      if (geo::country(p.country).code == code) return p.gpr_relative;
    }
    return 0.0;
  };
  std::cout << "low-GDP countries with rich-country-level adoption: BR "
            << core::fmt_double(gpr_of("BR"), 2) << ", MX "
            << core::fmt_double(gpr_of("MX"), 2) << ", TH "
            << core::fmt_double(gpr_of("TH"), 2) << " vs GB "
            << core::fmt_double(gpr_of("GB"), 2) << ", AU "
            << core::fmt_double(gpr_of("AU"), 2) << ", CA "
            << core::fmt_double(gpr_of("CA"), 2) << "\n";
  std::cout << "domestic-network gap (GPR far below IPR rank): JP "
            << core::fmt_double(gpr_of("JP"), 2) << ", RU "
            << core::fmt_double(gpr_of("RU"), 2) << ", CN "
            << core::fmt_double(gpr_of("CN"), 2) << "\n";
  return 0;
}
