// Micro-benchmarks (google-benchmark): graph substrate throughput.
//
// CSR construction, edge queries, BFS, and I/O round-trips over synthetic
// graphs of growing size — the inner loops every reproduction bench rests
// on.
#include <benchmark/benchmark.h>

#include <sstream>

#include "algo/bfs.h"
#include "graph/builder.h"
#include "graph/edgelist_io.h"
#include "stats/rng.h"

namespace {

using namespace gplus;
using graph::DiGraph;
using graph::NodeId;

std::vector<graph::Edge> random_edges(std::size_t nodes, std::size_t edges,
                                      std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<graph::Edge> out;
  out.reserve(edges);
  for (std::size_t i = 0; i < edges; ++i) {
    out.push_back({static_cast<NodeId>(rng.next_below(nodes)),
                   static_cast<NodeId>(rng.next_below(nodes))});
  }
  return out;
}

DiGraph random_graph(std::size_t nodes, std::size_t edges, std::uint64_t seed) {
  return DiGraph::from_edges(static_cast<NodeId>(nodes),
                             random_edges(nodes, edges, seed));
}

void BM_CsrConstruction(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const auto edges = random_edges(nodes, nodes * 16, 1);
  for (auto _ : state) {
    auto g = DiGraph::from_edges(static_cast<NodeId>(nodes), edges);
    benchmark::DoNotOptimize(g.edge_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(edges.size()));
}
BENCHMARK(BM_CsrConstruction)->Range(1 << 12, 1 << 16);

void BM_HasEdge(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const auto g = random_graph(nodes, nodes * 16, 2);
  stats::Rng rng(3);
  for (auto _ : state) {
    const auto u = static_cast<NodeId>(rng.next_below(nodes));
    const auto v = static_cast<NodeId>(rng.next_below(nodes));
    benchmark::DoNotOptimize(g.has_edge(u, v));
  }
}
BENCHMARK(BM_HasEdge)->Range(1 << 12, 1 << 16);

void BM_BfsDirected(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const auto g = random_graph(nodes, nodes * 16, 4);
  stats::Rng rng(5);
  for (auto _ : state) {
    const auto source = static_cast<NodeId>(rng.next_below(nodes));
    benchmark::DoNotOptimize(algo::bfs_distances(g, source).size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.edge_count()));
}
BENCHMARK(BM_BfsDirected)->Range(1 << 12, 1 << 16);

void BM_BfsUndirectedView(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const auto g = random_graph(nodes, nodes * 16, 6);
  stats::Rng rng(7);
  for (auto _ : state) {
    const auto source = static_cast<NodeId>(rng.next_below(nodes));
    benchmark::DoNotOptimize(algo::bfs_distances_undirected(g, source).size());
  }
}
BENCHMARK(BM_BfsUndirectedView)->Range(1 << 12, 1 << 15);

void BM_ReversedCopy(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const auto g = random_graph(nodes, nodes * 16, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.reversed().edge_count());
  }
}
BENCHMARK(BM_ReversedCopy)->Range(1 << 12, 1 << 15);

void BM_BinaryRoundTrip(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const auto g = random_graph(nodes, nodes * 8, 9);
  for (auto _ : state) {
    std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
    graph::write_edgelist_binary(g, buf);
    benchmark::DoNotOptimize(graph::read_edgelist_binary(buf).edge_count());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.edge_count() * 8 + 16));
}
BENCHMARK(BM_BinaryRoundTrip)->Range(1 << 12, 1 << 14);

}  // namespace

BENCHMARK_MAIN();
