// Table 5: Occupation-job title of the top users per country.
//
// Prints the occupation codes of the top-10 located users in each of the
// paper's top-10 countries and the Jaccard similarity of each occupation
// set against the US row (paper: CA 0.83 most similar; BR 0.18 least).
#include "bench_common.h"

#include "core/analysis.h"
#include "core/table.h"

int main() {
  using namespace gplus;
  bench::banner("Table 5", "occupation-job title of the top users per country");

  const auto& ds = bench::dataset();
  const auto rows = core::occupations_by_country(ds, 10);

  // The paper's Jaccard column for reference.
  auto paper_jaccard = [](std::string_view code) {
    if (code == "US") return "1.00";
    if (code == "IN") return "0.57";
    if (code == "BR") return "0.18";
    if (code == "GB") return "0.57";
    if (code == "CA") return "0.83";
    if (code == "DE") return "0.22";
    if (code == "ID") return "0.30";
    if (code == "MX") return "0.33";
    if (code == "IT") return "0.29";
    if (code == "ES") return "0.25";
    return "-";
  };

  core::TextTable table({"Country", "Profession codes of the top-10 users",
                         "Jaccard", "Paper"});
  for (const auto& row : rows) {
    std::string codes;
    for (const auto occ : row.occupations) {
      if (!codes.empty()) codes += ' ';
      codes += synth::occupation_code(occ);
    }
    const auto code = geo::country(row.country).code;
    table.add_row({std::string(geo::country(row.country).name), codes,
                   core::fmt_double(row.jaccard_vs_us, 2), paper_jaccard(code)});
  }
  std::cout << table.str() << "\n";

  // Flavor checks the paper calls out.
  const auto has = [&](std::string_view cc, synth::Occupation occ) {
    for (const auto& row : rows) {
      if (geo::country(row.country).code != cc) continue;
      for (auto o : row.occupations) {
        if (o == occ) return true;
      }
    }
    return false;
  };
  std::cout << "Spain has politicians in its top list: "
            << (has("ES", synth::Occupation::kPolitician) ? "yes" : "no")
            << " (paper: the only such country)\n";
  std::cout << "Italy has journalists in its top list: "
            << (has("IT", synth::Occupation::kJournalist) ? "yes" : "no")
            << " (paper: 4 of 10)\n";
  return 0;
}
