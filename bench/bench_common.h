// Shared scaffolding for the reproduction benches.
//
// Every bench regenerates the standard calibrated dataset (deterministic,
// seed 42). Scale with GPLUS_SCALE (node count, default 150,000) — larger
// graphs sharpen tails at the cost of runtime. GPLUS_SEED overrides the
// seed.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/dataset.h"

namespace gplus::bench {

inline std::size_t env_or(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

inline std::size_t scale() { return env_or("GPLUS_SCALE", 150'000); }
inline std::uint64_t seed() { return env_or("GPLUS_SEED", 42); }

/// The shared standard dataset (generated once per process).
inline const core::Dataset& dataset() {
  static const core::Dataset instance = core::make_standard_dataset(scale(), seed());
  return instance;
}

/// Prints the bench banner: what paper artifact this binary regenerates.
inline void banner(const std::string& artifact, const std::string& description) {
  std::cout << "=== " << artifact << " — " << description << " ===\n";
  std::cout << "dataset: " << scale() << " synthetic users, seed " << seed()
            << " (paper: 27.5M crawled profiles)\n\n";
}

}  // namespace gplus::bench
