// Figure 10: Link distribution across the top 10 countries.
//
// Row-normalized country-to-country edge weights over located users.
// Paper: US/IN/BR/ID inward-looking (self-loops 0.74-0.79), GB/CA
// outward-looking (0.30/0.33) with their dominant foreign mass flowing to
// the US; edges under 0.01 omitted from the figure.
#include "bench_common.h"

#include "core/geo_analysis.h"
#include "core/table.h"

int main() {
  using namespace gplus;
  bench::banner("Figure 10", "link distribution across the top countries");

  const auto& ds = bench::dataset();
  const auto graph = core::country_link_graph(ds);

  std::vector<std::string> headers = {"From \\ To"};
  for (auto c : graph.countries) headers.emplace_back(geo::country(c).code);
  core::TextTable table(std::move(headers));
  for (std::size_t i = 0; i < graph.countries.size(); ++i) {
    std::vector<std::string> row = {std::string(geo::country(graph.countries[i]).code)};
    for (std::size_t j = 0; j < graph.countries.size(); ++j) {
      const double w = graph.weight[i][j];
      row.push_back(w < 0.01 ? "." : core::fmt_double(w, 2));  // figure omits <0.01
    }
    table.add_row(std::move(row));
  }
  std::cout << table.str() << "\n";

  auto paper_self = [](std::string_view code) {
    if (code == "US") return 0.79;
    if (code == "IN") return 0.77;
    if (code == "BR") return 0.78;
    if (code == "GB") return 0.30;
    if (code == "CA") return 0.33;
    if (code == "DE") return 0.38;
    if (code == "ID") return 0.74;
    if (code == "MX") return 0.46;
    if (code == "IT") return 0.56;
    if (code == "ES") return 0.49;
    return 0.0;
  };
  core::TextTable self_loops({"Country", "Self-loop (ours)", "Self-loop (paper)"});
  for (std::size_t i = 0; i < graph.countries.size(); ++i) {
    const auto code = geo::country(graph.countries[i]).code;
    self_loops.add_row({std::string(code), core::fmt_double(graph.self_loop(i), 2),
                        core::fmt_double(paper_self(code), 2)});
  }
  std::cout << self_loops.str() << "\n";

  // The headline structural claims.
  std::size_t us = 0, gb = 0, ca = 0;
  for (std::size_t i = 0; i < graph.countries.size(); ++i) {
    const auto code = geo::country(graph.countries[i]).code;
    if (code == "US") us = i;
    if (code == "GB") gb = i;
    if (code == "CA") ca = i;
  }
  double influx = 0.0;
  for (std::size_t i = 0; i < graph.countries.size(); ++i) {
    if (i != us) influx += graph.weight[i][us];
  }
  std::cout << "total foreign row-mass flowing into the US: "
            << core::fmt_double(influx, 2)
            << " (paper: dominant influx from most countries)\n";
  std::cout << "GB -> US " << core::fmt_double(graph.weight[gb][us], 2)
            << " (paper: 0.36), CA -> US "
            << core::fmt_double(graph.weight[ca][us], 2) << " (paper: 0.36)\n";
  return 0;
}
