// Triad motif engine bench: exact census throughput, wedge-sampler
// throughput off the v3 compressed snapshot view, and a calibration
// micro-leg, published as BENCH_motifs.json (override
// GPLUS_BENCH_MOTIFS_JSON):
//
//   exact_medges_per_s    exact 16-class census, million edges/s
//   sampled_wedges_per_s  seeded wedge estimator over SnapshotView
//   calib_improvement     initial/final objective error (higher better)
//
// The bench self-asserts the engine's contracts and exits nonzero on
// violation: the census must be bit-identical at GPLUS_THREADS=1 vs the
// default lane, the sampled closure fraction must agree with the exact
// census within tolerance, and calibration must never regress its
// objective.
//
// Modes: `--smoke` caps the scale for CI (default 20k nodes, ≤50k
// enforced); the default is the standard 150k bench dataset. GPLUS_SCALE
// overrides the node count, GPLUS_MOTIF_SAMPLES the estimator's wedge
// sample count.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "algo/clustering.h"
#include "algo/motifs.h"
#include "algo/reciprocity.h"
#include "algo/rewire.h"
#include "bench_common.h"
#include "core/parallel.h"
#include "serve/snapshot.h"
#include "serve/snapshot_build.h"

namespace {

using namespace gplus;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  std::size_t n = bench::env_or("GPLUS_SCALE", smoke ? 20'000 : 150'000);
  if (smoke) n = std::min<std::size_t>(n, 50'000);
  const std::uint64_t seed = bench::seed();
  const std::size_t samples =
      bench::env_or("GPLUS_MOTIF_SAMPLES", smoke ? 100'000 : 400'000);

  std::printf("=== motif_census — directed triad engine%s ===\n",
              smoke ? " (smoke)" : "");
  std::printf("dataset: %zu synthetic users, seed %llu\n\n", n,
              static_cast<unsigned long long>(seed));
  const core::Dataset dataset = core::make_standard_dataset(n, seed);
  const graph::DiGraph& g = dataset.graph();

  int failures = 0;
  std::vector<std::pair<std::string, double>> json_fields;

  // -- Exact census: timed on the default lane, verified against the
  // single-thread lane (the deterministic-runtime contract).
  auto start = std::chrono::steady_clock::now();
  const algo::TriadCensus census = algo::triad_census(g);
  const double exact_s = seconds_since(start);
  const double exact_medges =
      static_cast<double>(g.edge_count()) / exact_s / 1e6;
  std::printf("exact census     %8.2f Medges/s  (%.3fs, %llu closed triads)\n",
              exact_medges, exact_s,
              static_cast<unsigned long long>(census.closed()));

  core::set_thread_count(1);
  const algo::TriadCensus lane1 = algo::triad_census(g);
  core::set_thread_count(0);
  if (!(lane1 == census)) {
    std::printf("VIOLATION: census differs at GPLUS_THREADS=1\n");
    ++failures;
  }

  // -- Sampled census over the v3 compressed snapshot view: the
  // paper-scale path (mmap-served graphs too big for exact counting).
  serve::SnapshotOptions options;
  options.version = serve::kSnapshotVersion3;
  const serve::SnapshotBuffer snapshot = serve::build_snapshot(dataset, options);
  const serve::SnapshotView view(snapshot.bytes());
  algo::TriadSampleConfig sconfig;
  sconfig.samples = samples;
  sconfig.seed = seed + 1;
  start = std::chrono::steady_clock::now();
  const algo::SampledTriadCensus sampled =
      algo::sample_triad_census_of_view(view, sconfig);
  const double sampled_s = seconds_since(start);
  const double wedges_per_s =
      static_cast<double>(sampled.sampled) / sampled_s;
  std::printf("sampled census   %8.0f wedges/s  (%.3fs, %zu samples)\n",
              wedges_per_s, sampled_s, static_cast<std::size_t>(sampled.sampled));

  const double exact_closure = census.wedge_closure();
  const double err = std::abs(sampled.closed_fraction - exact_closure);
  // 5x the binomial standard error, plus an absolute guard for tiny
  // closure fractions: a seeded sampler outside this band is broken.
  const double sigma = std::sqrt(exact_closure * (1.0 - exact_closure) /
                                 static_cast<double>(sampled.sampled));
  const double tolerance = std::max(5.0 * sigma, 0.002);
  std::printf("closure: exact %.4f sampled %.4f (tolerance %.4f)\n",
              exact_closure, sampled.closed_fraction, tolerance);
  if (err > tolerance) {
    std::printf("VIOLATION: sampled closure off by %.4f > %.4f\n", err,
                tolerance);
    ++failures;
  }

  // -- Calibration micro-leg: steer a degree-matched random graph back
  // toward the generated profile; the greedy loop must never regress.
  const std::size_t calib_nodes = std::min<std::size_t>(n, 10'000);
  std::optional<core::Dataset> small_storage;
  if (calib_nodes != n) {
    small_storage.emplace(core::make_standard_dataset(calib_nodes, seed));
  }
  const graph::DiGraph& calib_base =
      small_storage ? small_storage->graph() : g;
  stats::Rng shuffle_rng(seed + 2);
  const graph::DiGraph randomized =
      algo::random_same_density(calib_base, shuffle_rng);
  algo::RewireObjective objective;
  objective.target_clustering =
      algo::average_clustering_coefficient(calib_base);
  objective.target_reciprocity = algo::global_reciprocity(calib_base);
  algo::CalibrateConfig cconfig;
  cconfig.seed = seed + 3;
  cconfig.max_rounds = smoke ? 4 : 8;
  cconfig.clustering_sample = 0;
  start = std::chrono::steady_clock::now();
  const algo::CalibrationResult calib =
      algo::calibrate_to_profile(randomized, objective, cconfig);
  const double calib_s = seconds_since(start);
  const double improvement =
      calib.final_error > 0.0 ? calib.initial_error / calib.final_error : 1.0;
  std::printf("calibration      %8.2fx error improvement  (%.3fs, %llu swaps)\n",
              improvement, calib_s,
              static_cast<unsigned long long>(calib.swaps_applied));
  if (calib.final_error > calib.initial_error) {
    std::printf("VIOLATION: calibration regressed its objective\n");
    ++failures;
  }

  json_fields.emplace_back("exact_medges_per_s", exact_medges);
  json_fields.emplace_back("sampled_wedges_per_s", wedges_per_s);
  json_fields.emplace_back("calib_improvement", improvement);

  const char* json_env = std::getenv("GPLUS_BENCH_MOTIFS_JSON");
  const std::string json_path = json_env != nullptr && *json_env != '\0'
                                    ? json_env
                                    : "BENCH_motifs.json";
  {
    std::ofstream out(json_path);
    out.precision(2);
    out << std::fixed;
    out << "{\n  \"bench\": \"motif_census\",\n  \"seed\": " << seed
        << ",\n  \"nodes\": " << n;
    for (const auto& [field, value] : json_fields) {
      out << ",\n  \"" << field << "\": " << value;
    }
    out << "\n}\n";
  }
  std::printf("\nwrote %s\n", json_path.c_str());
  if (failures != 0) {
    std::printf("%d violation(s)\n", failures);
    return 1;
  }
  return 0;
}
