// Figure 5: Estimated path-length (hop) distribution, directed and
// undirected.
//
// The paper BFSes from a growing random source sample (2,000 -> 10,000,
// stopping when the distribution stabilizes) and reports mode 6 / mean 5.9
// for the directed graph and mode 5 / mean 4.7 undirected, with diameters
// 19 and 13. At simulation scale the absolute hop counts compress (a 150k
// graph is ~230x smaller than the crawl) but the orderings — directed
// longer than undirected, diameter several times the mean — hold.
#include "bench_common.h"

#include "algo/anf.h"
#include "algo/bfs.h"
#include "core/hop_analysis.h"
#include "core/table.h"

int main() {
  using namespace gplus;
  bench::banner("Figure 5", "estimated path length distribution");

  const auto& g = bench::dataset().graph();
  stats::Rng rng(bench::seed());

  algo::PathLengthOptions opt;
  opt.initial_sources = 100;
  opt.max_sources = bench::env_or("GPLUS_PATH_SOURCES", 500);

  const auto directed = algo::estimate_path_lengths(g, opt, rng);
  opt.undirected = true;
  const auto undirected = algo::estimate_path_lengths(g, opt, rng);

  core::TextTable table({"Hops", "Directed P[h]", "Undirected P[h]"});
  const std::size_t rows =
      std::max(directed.pmf.size(), undirected.pmf.size());
  for (std::size_t h = 1; h < rows; ++h) {
    const double d = h < directed.pmf.size() ? directed.pmf[h] : 0.0;
    const double u = h < undirected.pmf.size() ? undirected.pmf[h] : 0.0;
    table.add_row({std::to_string(h), core::fmt_double(d, 4),
                   core::fmt_double(u, 4)});
  }
  std::cout << table.str() << "\n";

  std::cout << "directed:   mean " << core::fmt_double(directed.mean, 2)
            << ", mode " << directed.mode << ", diameter >= "
            << directed.diameter_lower_bound << ", sources "
            << directed.sources_used << "  (paper: 5.9 / 6 / 19)\n";
  std::cout << "undirected: mean " << core::fmt_double(undirected.mean, 2)
            << ", mode " << undirected.mode << ", diameter >= "
            << undirected.diameter_lower_bound << ", sources "
            << undirected.sources_used << "  (paper: 4.7 / 5 / 13)\n";
  std::cout << "reachable pair share (directed): "
            << core::fmt_percent(directed.reachable_fraction, 1) << "\n";

  std::cout << "\nordering checks: directed mean > undirected mean: "
            << (directed.mean > undirected.mean ? "ok" : "MISS")
            << "; directed diameter >= undirected: "
            << (directed.diameter_lower_bound >= undirected.diameter_lower_bound
                    ? "ok"
                    : "MISS")
            << "\n";

  // Cross-check with HyperANF — the all-pairs estimator behind the
  // paper's cited "Four degrees of separation" [3].
  std::cout << "\n--- HyperANF cross-check (the [3] methodology) ---\n";
  algo::AnfOptions anf_opt;
  anf_opt.seed = bench::seed();
  const auto anf = algo::approximate_neighborhood_function(g, anf_opt);
  std::cout << "all-pairs directed mean distance: "
            << core::fmt_double(anf.mean_distance, 2) << " (sampled BFS: "
            << core::fmt_double(directed.mean, 2) << ")\n";
  std::cout << "effective diameter (90th pct): "
            << core::fmt_double(anf.effective_diameter, 2) << "; converged in "
            << anf.iterations << " passes\n";

  // Geography x hops: the Fig 5 / Fig 10 join.
  std::cout << "\n--- Hop distance by geography (extension) ---\n";
  stats::Rng hop_rng(bench::seed());
  const auto split =
      core::measure_hop_geography(bench::dataset(), 40, hop_rng);
  std::cout << "same-country pairs:  mean "
            << core::fmt_double(split.domestic_mean_hops, 2) << " hops over "
            << core::fmt_count(split.domestic_pairs) << " pairs\n";
  std::cout << "cross-country pairs: mean "
            << core::fmt_double(split.international_mean_hops, 2)
            << " hops over " << core::fmt_count(split.international_pairs)
            << " pairs\n";
  std::cout << "(the Fig 10 self-loop structure shows up as a hop discount\n"
               " for domestic pairs — the topological face of §4's geography)\n";
  return 0;
}
