// Figure 4: (a) relation-reciprocity CDF, (b) clustering-coefficient CDF,
// (c) strongly-connected-component size CCDF.
//
// Paper findings: >60% of users with RR above 0.6 and 32% global edge
// reciprocity (vs 22.1% on Twitter); 40% of users with clustering above
// 0.2 (higher than Twitter and Facebook); 9.77M SCCs with a single giant
// component of 25.24M nodes. An ablation sweeps the friend-reciprocation
// knob to show the RR CDF response.
#include "bench_common.h"

#include "algo/bowtie.h"
#include "algo/clustering.h"
#include "algo/reciprocity.h"
#include "algo/scc.h"
#include "core/table.h"
#include "geo/world.h"
#include "synth/graph_gen.h"

namespace {

using namespace gplus;

double cdf_at(const std::vector<stats::CurvePoint>& cdf, double x) {
  return stats::evaluate_step(cdf, x);
}

void print_cdf_row(const std::string& label,
                   const std::vector<stats::CurvePoint>& cdf) {
  std::cout << label;
  for (double x = 0.0; x <= 1.0001; x += 0.1) {
    std::cout << "  " << core::fmt_double(cdf_at(cdf, x), 3);
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace gplus;
  bench::banner("Figure 4", "reciprocity, clustering and SCC distributions");

  const auto& g = bench::dataset().graph();

  std::cout << "--- (a) Relation Reciprocity CDF ---\n";
  std::cout << "x:           ";
  for (double x = 0.0; x <= 1.0001; x += 0.1) {
    std::cout << "  " << core::fmt_double(x, 1) << "  ";
  }
  std::cout << "\n";
  const auto rr_cdf = algo::reciprocity_cdf(g);
  print_cdf_row("G+ (synth):", rr_cdf);
  const double above_06 = 1.0 - cdf_at(rr_cdf, 0.6);
  std::cout << "users with RR > 0.6: " << core::fmt_percent(above_06)
            << "  (paper: more than 60%)\n";
  std::cout << "global reciprocity: "
            << core::fmt_percent(algo::global_reciprocity(g))
            << "  (paper: 32%; Twitter 22.1%; Flickr 68%; Yahoo!360 84%)\n\n";

  std::cout << "--- (b) Clustering Coefficient CDF (sampled nodes) ---\n";
  stats::Rng rng(bench::seed());
  const std::size_t cc_sample = std::min<std::size_t>(100'000, g.node_count());
  const auto cc_cdf = algo::clustering_cdf(g, cc_sample, rng);
  print_cdf_row("G+ (synth):", cc_cdf);
  std::cout << "users with CC > 0.2: "
            << core::fmt_percent(1.0 - cdf_at(cc_cdf, 0.2))
            << "  (paper: 40%)\n\n";

  std::cout << "--- (c) SCC size CCDF ---\n";
  const auto sccs = algo::strongly_connected_components(g);
  const auto scc_ccdf = algo::scc_size_ccdf(sccs);
  std::cout << "components: " << core::fmt_count(sccs.component_count())
            << "; giant: " << core::fmt_count(sccs.giant_size()) << " nodes ("
            << core::fmt_percent(sccs.giant_fraction(), 1)
            << " of graph; paper: 25.24M of 35.1M = 72%)\n";
  std::cout << "size -> CCDF (log-spaced):\n";
  double next_x = 1.0;
  for (const auto& p : scc_ccdf) {
    if (p.x + 1e-12 < next_x) continue;
    std::cout << "  " << core::fmt_double(p.x, 0) << " -> "
              << core::fmt_double(p.y, 8) << "\n";
    next_x = std::max(p.x * 4.0, 1.0);
  }
  // The giant component always deserves a row.
  if (!scc_ccdf.empty()) {
    std::cout << "  " << core::fmt_double(scc_ccdf.back().x, 0) << " -> "
              << core::fmt_double(scc_ccdf.back().y, 8) << " (giant)\n";
  }

  // Bow-tie view around the giant SCC (extension of §3.3.4).
  const auto bowtie = algo::bow_tie_decomposition(g);
  std::cout << "\nbow-tie decomposition: core "
            << core::fmt_percent(bowtie.core_fraction(g.node_count()), 1)
            << ", IN " << core::fmt_count(bowtie.in) << ", OUT "
            << core::fmt_count(bowtie.out) << ", other "
            << core::fmt_count(bowtie.other)
            << "\n(OUT is dominated by the dormant sign-up-and-leave accounts"
               " the core follows into the void)\n";

  std::cout << "\n--- Ablation: RR response to the friend-reciprocation knob ---\n";
  const synth::PopulationModel population;
  const geo::World world;
  const std::size_t n = std::min<std::size_t>(bench::scale(), 60'000);
  core::TextTable ablation({"friend_reciprocation", "global reciprocity",
                            "share RR > 0.6"});
  for (double p_back : {0.2, 0.4, 0.64, 0.8}) {
    synth::GraphGenConfig config = synth::google_plus_preset(n, bench::seed());
    config.friend_reciprocation = p_back;
    const auto net = synth::generate_network(config, population, world);
    const auto rr = algo::relation_reciprocities(net.graph);
    std::size_t high = 0;
    for (double r : rr) high += r > 0.6;
    ablation.add_row({core::fmt_double(p_back, 2),
                      core::fmt_percent(algo::global_reciprocity(net.graph)),
                      core::fmt_percent(static_cast<double>(high) / rr.size())});
  }
  std::cout << ablation.str();
  return 0;
}
