// Extension bench (§7 future work #2): content diffusion vs privacy.
//
// Runs reshare cascades over the calibrated network to answer the paper's
// open question — how do privacy settings and openness shape content
// sharing? Measures cascade reach by post visibility, author audience,
// and author-country openness culture, plus the cascade-size CCDF (the
// classic heavy-tailed diffusion signature).
#include "bench_common.h"

#include <algorithm>

#include "algo/topk.h"
#include "core/table.h"
#include "stats/distribution.h"
#include "stream/circles.h"
#include "stream/diffusion.h"

int main() {
  using namespace gplus;
  bench::banner("Diffusion dynamics (§7 future work)",
                "cascades, visibility, and openness");

  const auto& ds = bench::dataset();
  const stream::DiffusionSimulator sim(&ds, {});
  stats::Rng rng(bench::seed());

  std::cout << "--- Public vs circles-only reach (top-20 authors) ---\n";
  core::TextTable vis({"Visibility", "Mean views", "Mean reshares", "Mean depth"});
  for (bool is_public : {true, false}) {
    std::vector<stream::Cascade> cascades;
    for (const auto& author : algo::top_by_in_degree(ds.graph(), 20)) {
      for (int i = 0; i < 3; ++i) {
        cascades.push_back(sim.simulate_post(author.node, is_public, rng));
      }
    }
    const auto s = stream::summarize_cascades(cascades);
    vis.add_row({is_public ? "Public" : "Circles only",
                 core::fmt_double(s.mean_views, 0),
                 core::fmt_double(s.mean_reshares, 1),
                 core::fmt_double(s.mean_depth, 2)});
  }
  std::cout << vis.str() << "\n";

  std::cout << "--- Cascade-size CCDF (random authors) ---\n";
  const auto cascades = sim.simulate_posts(4'000, rng);
  std::vector<std::uint64_t> sizes;
  sizes.reserve(cascades.size());
  for (const auto& c : cascades) sizes.push_back(c.views);
  const auto ccdf = stats::integer_ccdf(sizes);
  double next_x = 1.0;
  for (const auto& p : ccdf) {
    if (p.x + 1e-12 < next_x) continue;
    std::cout << "  views >= " << core::fmt_double(p.x, 0) << " -> "
              << core::fmt_double(p.y, 5) << "\n";
    next_x = std::max(p.x * 4.0, 1.0);
  }
  const auto all = stream::summarize_cascades(cascades);
  std::cout << "mean views " << core::fmt_double(all.mean_views, 1)
            << ", max " << core::fmt_double(all.max_views, 0)
            << ", reshared share " << core::fmt_percent(all.reshared_share, 1)
            << "\n\n";

  std::cout << "--- Author-country openness vs sharing behavior ---\n";
  core::TextTable by_country({"Author country", "Posts", "Public-post share",
                              "Median views"});
  for (const char* code : {"ID", "MX", "US", "IN", "DE"}) {
    const auto country = *geo::find_country(code);
    std::vector<double> views;
    std::size_t public_posts = 0, posts = 0;
    for (graph::NodeId u = 0; u < ds.user_count() && posts < 600; ++u) {
      if (ds.profiles[u].country != country || ds.profiles[u].celebrity ||
          ds.graph().in_degree(u) == 0) {
        continue;
      }
      const auto cascade = sim.simulate_post(u, rng);
      public_posts += cascade.public_post;
      views.push_back(static_cast<double>(cascade.views));
      ++posts;
    }
    std::sort(views.begin(), views.end());
    by_country.add_row(
        {std::string(geo::country(country).name), core::fmt_count(posts),
         core::fmt_percent(posts ? static_cast<double>(public_posts) /
                                       static_cast<double>(posts)
                                 : 0.0, 1),
         views.empty() ? "-" : core::fmt_double(views[views.size() / 2], 0)});
  }
  std::cout << by_country.str();
  std::cout << "(Fig 8's openness cultures carry over to the stream: open\n"
               " countries default more posts to 'public' than conservative\n"
               " ones — the mechanism behind the paper's conjecture that\n"
               " privacy culture shapes content sharing)\n\n";

  std::cout << "--- Circles (§2.1): reconstructed assignment and reach ---\n";
  const stream::CircleAssignment circles(ds, bench::seed());
  const auto cstats = stream::circle_stats(circles);
  core::TextTable circle_table({"Circle", "Share of contacts", "Mean size"});
  for (std::size_t k = 0; k < stream::kCircleKindCount; ++k) {
    circle_table.add_row(
        {std::string(stream::circle_name(static_cast<stream::CircleKind>(k))),
         core::fmt_percent(cstats.share[k], 1),
         core::fmt_double(cstats.mean_size[k], 1)});
  }
  std::cout << circle_table.str();

  const stream::DiffusionSimulator circle_sim(&ds, &circles, {});
  std::vector<stream::Cascade> pub, circ;
  for (const auto& author : algo::top_by_in_degree(ds.graph(), 30)) {
    pub.push_back(circle_sim.simulate_post(author.node, true, rng));
    circ.push_back(circle_sim.simulate_post(author.node, false, rng));
  }
  const auto pub_s = stream::summarize_cascades(pub);
  const auto circ_s = stream::summarize_cascades(circ);
  std::cout << "top-author reach with concrete circles: public "
            << core::fmt_double(pub_s.mean_views, 0) << " views vs circle post "
            << core::fmt_double(circ_s.mean_views, 0)
            << " (one circle of real contacts, not a follower fraction)\n\n";

  std::cout << "--- Epidemic threshold: reach vs reshare probability ---\n";
  core::TextTable epidemic({"reshare_base", "Mean reach (share of graph)",
                            "Max reach"});
  for (double reshare : {0.002, 0.01, 0.02, 0.05, 0.1}) {
    stream::DiffusionConfig config;
    config.reshare_base = reshare;
    const stream::DiffusionSimulator epidemic_sim(&ds, config);
    const auto batch = epidemic_sim.simulate_posts(600, rng);
    const auto s = stream::summarize_cascades(batch);
    const auto n = static_cast<double>(ds.user_count());
    epidemic.add_row({core::fmt_double(reshare, 3),
                      core::fmt_percent(s.mean_views / n, 2),
                      core::fmt_percent(s.max_views / n, 1)});
  }
  std::cout << epidemic.str();
  std::cout << "(the supercritical jump is §3.3.5's 'information can spread\n"
               " quickly and widely' made quantitative: past the threshold a\n"
               " single post sweeps a constant fraction of the network)\n";
  return 0;
}
