// Table 4: Comparison of topological characteristics of Google+ and other
// online social networks.
//
// Two parts:
//  1. the paper's printed rows (cited constants for Facebook / Twitter /
//     Orkut and the authors' Google+ measurements);
//  2. our measured rows — the same structural pipeline run on the standard
//     Google+-like dataset and on the Twitter-like / Facebook-like
//     generator presets, so the *ordering* claims (G+ more reciprocal than
//     Twitter, longer paths than both, far sparser than Facebook) can be
//     checked end-to-end.
#include "bench_common.h"

#include "core/analysis.h"
#include "core/reference.h"
#include "core/table.h"
#include "geo/world.h"
#include "synth/graph_gen.h"

namespace {

using namespace gplus;

core::StructuralSummary measure(const graph::DiGraph& g, std::uint64_t seed) {
  stats::Rng rng(seed);
  const std::size_t sources = std::min<std::size_t>(300, g.node_count());
  return core::structural_summary(g, sources, rng);
}

void add_measured_row(core::TextTable& table, const std::string& name,
                      const core::StructuralSummary& s) {
  table.add_row({name, core::fmt_count(s.nodes), core::fmt_count(s.edges),
                 core::fmt_double(s.path_length, 1),
                 core::fmt_percent(s.reciprocity, 0),
                 ">=" + std::to_string(s.diameter_lower_bound),
                 core::fmt_double(s.mean_degree, 1)});
}

}  // namespace

int main() {
  using namespace gplus;
  bench::banner("Table 4", "topological comparison across social networks");

  std::cout << "--- Paper rows (cited values) ---\n";
  core::TextTable paper({"Network", "Nodes", "Edges", "% Crawled", "Path length",
                         "Reciprocity", "Diameter", "Mean degree"});
  for (const auto& row : core::reference_networks()) {
    paper.add_row({std::string(row.name), core::fmt_double(row.nodes / 1e6, 1) + "M",
                   core::fmt_double(row.edges / 1e6, 0) + "M",
                   core::fmt_percent(row.crawled_fraction, 0),
                   core::fmt_double(row.path_length, 1),
                   core::fmt_percent(row.reciprocity, 1),
                   std::to_string(row.diameter),
                   row.mean_in_degree ? core::fmt_double(*row.mean_in_degree, 1)
                                      : "-"});
  }
  std::cout << paper.str() << "\n";

  std::cout << "--- Measured rows (our generator presets, equal scale) ---\n";
  const std::size_t n = bench::scale();
  const synth::PopulationModel population;
  const geo::World world;

  core::TextTable measured({"Network", "Nodes", "Edges", "Path length",
                            "Reciprocity", "Diameter(lb)", "Mean degree"});

  const auto& gplus_ds = bench::dataset();
  const auto gplus_row = measure(gplus_ds.graph(), 1);
  add_measured_row(measured, "Google+ (synthetic)", gplus_row);

  const auto twitter = synth::generate_network(
      synth::twitter_like_preset(n, bench::seed()), population, world);
  const auto twitter_row = measure(twitter.graph, 2);
  add_measured_row(measured, "Twitter-like", twitter_row);

  const auto facebook = synth::generate_network(
      synth::facebook_like_preset(n, bench::seed()), population, world);
  const auto facebook_row = measure(facebook.graph, 3);
  add_measured_row(measured, "Facebook-like", facebook_row);

  std::cout << measured.str() << "\n";

  std::cout << "--- Ordering checks (paper claims) ---\n";
  auto check = [](const std::string& claim, bool ok) {
    std::cout << (ok ? "[ok]   " : "[MISS] ") << claim << "\n";
  };
  check("G+ more reciprocal than Twitter (32% vs 22%)",
        gplus_row.reciprocity > twitter_row.reciprocity);
  check("Facebook fully reciprocal", facebook_row.reciprocity > 0.95);
  check("G+ path length >= Twitter-like path length",
        gplus_row.path_length >= twitter_row.path_length - 0.2);
  check("G+ sparser than Facebook-like (mean degree)",
        gplus_row.mean_degree < facebook_row.mean_degree + 5.0);
  check("G+ in/out power-law alphas near 1.3/1.2",
        gplus_row.in_alpha > 1.0 && gplus_row.in_alpha < 1.7 &&
            gplus_row.out_alpha > 0.95 && gplus_row.out_alpha < 1.6);
  std::cout << "\nG+ measured alphas: in " << core::fmt_double(gplus_row.in_alpha, 2)
            << ", out " << core::fmt_double(gplus_row.out_alpha, 2)
            << " (paper: 1.3 / 1.2); giant SCC "
            << core::fmt_percent(gplus_row.giant_scc_fraction, 0)
            << " of nodes (paper: 72%)\n";
  return 0;
}
