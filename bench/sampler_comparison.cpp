// Extension bench (§2.2 caveat): sampling-strategy comparison.
//
// The paper acknowledges BFS degree bias, citing the random-walk
// literature [18, 35], but could not quantify it without ground truth.
// This bench runs BFS, a simple random walk, Metropolis-Hastings RW (the
// unbiased sampler of [18]) and an oracle uniform sampler against the
// same simulated service, comparing each sample's mean in-degree to the
// truth at matched sample sizes and request budgets.
#include "bench_common.h"

#include "algo/degrees.h"
#include "core/table.h"
#include "crawler/samplers.h"
#include "service/service.h"
#include "stats/descriptive.h"

int main() {
  using namespace gplus;
  bench::banner("Sampler comparison (§2.2, [18],[35])",
                "BFS vs random walk vs MHRW vs uniform");

  const auto& ds = bench::dataset();
  double truth_mean = 0.0;
  for (auto d : algo::in_degrees(ds.graph())) {
    truth_mean += static_cast<double>(d);
  }
  truth_mean /= static_cast<double>(ds.user_count());
  std::cout << "ground-truth mean in-degree: " << core::fmt_double(truth_mean, 2)
            << "\n\n";

  // Whole-population degree sample for the KS comparison.
  std::vector<double> truth_degrees;
  truth_degrees.reserve(ds.user_count());
  for (auto d : algo::in_degrees(ds.graph())) {
    truth_degrees.push_back(static_cast<double>(d));
  }

  const std::size_t target = std::min<std::size_t>(ds.user_count() / 20, 5'000);
  core::TextTable table({"Sampler", "Users", "Mean in-degree", "Bias ratio",
                         "KS vs truth", "Requests", "Steps"});
  for (auto kind : {crawler::SamplerKind::kBfs, crawler::SamplerKind::kRandomWalk,
                    crawler::SamplerKind::kMetropolisHastings,
                    crawler::SamplerKind::kUniformOracle}) {
    // Average over a few seeds to steady the walk estimators.
    double mean_sum = 0.0, ks_sum = 0.0;
    std::uint64_t requests = 0, steps = 0;
    std::size_t users = 0;
    constexpr int kRuns = 3;
    for (int run = 0; run < kRuns; ++run) {
      service::SocialService svc(&ds.graph(), ds.profiles, {});
      crawler::SamplerOptions options;
      options.target_users = target;
      options.rng_seed = bench::seed() + static_cast<std::uint64_t>(run);
      const auto result = crawler::sample_users(svc, kind, options);
      mean_sum += result.mean_in_degree;
      std::vector<double> sample_degrees;
      sample_degrees.reserve(result.users.size());
      for (auto u : result.users) {
        sample_degrees.push_back(static_cast<double>(ds.graph().in_degree(u)));
      }
      ks_sum += stats::ks_two_sample(sample_degrees, truth_degrees);
      requests += result.requests;
      steps += result.steps;
      users = result.users.size();
    }
    const double mean = mean_sum / kRuns;
    table.add_row({std::string(crawler::sampler_name(kind)),
                   core::fmt_count(users), core::fmt_double(mean, 2),
                   core::fmt_double(mean / truth_mean, 2),
                   core::fmt_double(ks_sum / kRuns, 3),
                   core::fmt_count(requests / kRuns),
                   core::fmt_count(steps / kRuns)});
  }
  std::cout << table.str() << "\n";
  std::cout << "reading: BFS and the raw walk over-sample popular accounts\n"
               "(bias ratio > 1); MHRW pays extra steps for near-uniform\n"
               "sampling — the correction [18] proposes for exactly the bias\n"
               "the paper's §2.2 concedes.\n";
  return 0;
}
