// Figure 8: CCDF of the number of fields shared, per top-10 country.
//
// Paper: Indonesia and Mexico share the most; Germany is the most
// conservative (the only country with <10% of users sharing more than 12
// fields). Located users share at least Name + Places lived, so x >= 2.
#include "bench_common.h"

#include "core/geo_analysis.h"
#include "core/table.h"

namespace {

double ccdf_at(const std::vector<gplus::stats::CurvePoint>& curve, double x) {
  for (const auto& p : curve) {
    if (p.x >= x) return p.y;
  }
  return 0.0;
}

}  // namespace

int main() {
  using namespace gplus;
  bench::banner("Figure 8", "fields shared per profile, by country (CCDF)");

  const auto& ds = bench::dataset();
  const auto top10 = geo::paper_top10();

  std::vector<std::vector<stats::CurvePoint>> curves;
  curves.reserve(top10.size());
  for (auto c : top10) curves.push_back(core::country_fields_ccdf(ds, c));

  std::vector<std::string> headers = {"# fields >="};
  for (auto c : top10) headers.emplace_back(geo::country(c).code);
  core::TextTable table(std::move(headers));
  for (int f = 2; f <= 14; ++f) {
    std::vector<std::string> row = {std::to_string(f)};
    for (const auto& curve : curves) {
      row.push_back(core::fmt_double(ccdf_at(curve, f), 3));
    }
    table.add_row(std::move(row));
  }
  std::cout << table.str() << "\n";

  // Paper's two headline contrasts.
  auto curve_of = [&](std::string_view code) -> const std::vector<stats::CurvePoint>& {
    for (std::size_t i = 0; i < top10.size(); ++i) {
      if (geo::country(top10[i]).code == code) return curves[i];
    }
    return curves[0];
  };
  std::cout << "share with more than 10 fields: ID "
            << core::fmt_percent(ccdf_at(curve_of("ID"), 11)) << ", MX "
            << core::fmt_percent(ccdf_at(curve_of("MX"), 11)) << ", DE "
            << core::fmt_percent(ccdf_at(curve_of("DE"), 11))
            << "  (paper: DE alone under 30% at >10 fields)\n";
  bool de_lowest = true;
  for (std::size_t i = 0; i < top10.size(); ++i) {
    if (geo::country(top10[i]).code == "DE") continue;
    de_lowest &= ccdf_at(curve_of("DE"), 11) <= ccdf_at(curves[i], 11) + 1e-9;
  }
  std::cout << "Germany most conservative at >10 fields: "
            << (de_lowest ? "yes" : "NO") << "\n";
  return 0;
}
