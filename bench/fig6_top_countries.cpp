// Figure 6: Top 10 countries with Google+ users (share of located users).
#include "bench_common.h"

#include "core/geo_analysis.h"
#include "core/table.h"

int main() {
  using namespace gplus;
  bench::banner("Figure 6", "top 10 countries with Google+ users");

  const auto& ds = bench::dataset();
  const auto shares = core::located_country_shares(ds);

  // The paper's Fig 6 bars (US/IN read off Table 3; the rest off the plot).
  auto paper_share = [](std::string_view code) {
    if (code == "US") return "31.4%";
    if (code == "IN") return "16.7%";
    if (code == "BR") return "5.8%";
    if (code == "GB") return "3.4%";
    if (code == "CA") return "2.3%";
    if (code == "DE") return "~2.2%";
    if (code == "ID") return "~2.1%";
    if (code == "MX") return "~1.9%";
    if (code == "IT") return "~1.8%";
    if (code == "ES") return "~1.6%";
    return "-";
  };

  core::TextTable table({"Rank", "Country", "Located users", "Fraction", "Paper"});
  for (std::size_t i = 0; i < std::min<std::size_t>(10, shares.size()); ++i) {
    const auto& s = shares[i];
    table.add_row({std::to_string(i + 1),
                   std::string(geo::country(s.country).name),
                   core::fmt_count(s.users), core::fmt_percent(s.fraction, 1),
                   paper_share(geo::country(s.country).code)});
  }
  std::cout << table.str() << "\n";

  std::uint64_t located = 0;
  for (graph::NodeId u = 0; u < ds.user_count(); ++u) located += ds.located(u);
  std::cout << "located users: " << core::fmt_count(located) << " of "
            << core::fmt_count(ds.user_count()) << " ("
            << core::fmt_percent(static_cast<double>(located) /
                                 static_cast<double>(ds.user_count()), 1)
            << "; paper: 26.75% share 'places lived')\n";
  return 0;
}
