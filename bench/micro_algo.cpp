// Micro-benchmarks (google-benchmark): analysis kernels and the generator.
#include <benchmark/benchmark.h>

#include "algo/clustering.h"
#include "algo/degrees.h"
#include "algo/reciprocity.h"
#include "algo/anf.h"
#include "algo/betweenness.h"
#include "algo/communities.h"
#include "algo/kcore.h"
#include "algo/pagerank.h"
#include "algo/scc.h"
#include "algo/triangles.h"
#include "geo/world.h"
#include "graph/digraph.h"
#include "stats/rng.h"
#include "synth/graph_gen.h"
#include "synth/population.h"

namespace {

using namespace gplus;
using graph::DiGraph;
using graph::NodeId;

const synth::PopulationModel& population() {
  static const synth::PopulationModel instance;
  return instance;
}

const geo::World& world() {
  static const geo::World instance;
  return instance;
}

const DiGraph& preset_graph(std::size_t nodes) {
  static std::map<std::size_t, synth::GeneratedNetwork> cache;
  auto it = cache.find(nodes);
  if (it == cache.end()) {
    it = cache.emplace(nodes, synth::generate_network(
                                  synth::google_plus_preset(nodes, 42),
                                  population(), world()))
             .first;
  }
  return it->second.graph;
}

void BM_GenerateNetwork(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto net = synth::generate_network(
        synth::google_plus_preset(nodes, 42), population(), world());
    benchmark::DoNotOptimize(net.graph.edge_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nodes));
}
BENCHMARK(BM_GenerateNetwork)->Range(1 << 12, 1 << 15)->Unit(benchmark::kMillisecond);

void BM_GlobalReciprocity(benchmark::State& state) {
  const auto& g = preset_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::global_reciprocity(g));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.edge_count()));
}
BENCHMARK(BM_GlobalReciprocity)->Range(1 << 12, 1 << 15);

void BM_StronglyConnectedComponents(benchmark::State& state) {
  const auto& g = preset_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        algo::strongly_connected_components(g).component_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.edge_count()));
}
BENCHMARK(BM_StronglyConnectedComponents)->Range(1 << 12, 1 << 15);

void BM_SampledClustering(benchmark::State& state) {
  const auto& g = preset_graph(1 << 14);
  stats::Rng rng(1);
  const auto sample = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        algo::sampled_clustering_coefficients(g, sample, rng).size());
  }
}
BENCHMARK(BM_SampledClustering)->Range(256, 4096);

void BM_DegreeDistribution(benchmark::State& state) {
  const auto& g = preset_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::in_degree_distribution(g, 3).power_law.alpha);
  }
}
BENCHMARK(BM_DegreeDistribution)->Range(1 << 12, 1 << 15);

void BM_RelationReciprocities(benchmark::State& state) {
  const auto& g = preset_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::relation_reciprocities(g).size());
  }
}
BENCHMARK(BM_RelationReciprocities)->Range(1 << 12, 1 << 15);

void BM_TriangleCensus(benchmark::State& state) {
  const auto& g = preset_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::count_triangles(g).triangles);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.edge_count()));
}
BENCHMARK(BM_TriangleCensus)->Range(1 << 12, 1 << 15);

void BM_KCoreDecomposition(benchmark::State& state) {
  const auto& g = preset_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::k_core_decomposition(g).degeneracy);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.edge_count()));
}
BENCHMARK(BM_KCoreDecomposition)->Range(1 << 12, 1 << 15);

void BM_PageRank(benchmark::State& state) {
  const auto& g = preset_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::pagerank(g).iterations);
  }
}
BENCHMARK(BM_PageRank)->Range(1 << 12, 1 << 14)->Unit(benchmark::kMillisecond);

void BM_HyperAnf(benchmark::State& state) {
  const auto& g = preset_graph(1 << 13);
  algo::AnfOptions options;
  options.precision = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        algo::approximate_neighborhood_function(g, options).mean_distance);
  }
}
BENCHMARK(BM_HyperAnf)->Arg(5)->Arg(7)->Arg(9)->Unit(benchmark::kMillisecond);


void BM_SampledBetweenness(benchmark::State& state) {
  const auto& g = preset_graph(1 << 13);
  stats::Rng rng(2);
  const auto sources = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::sampled_betweenness(g, sources, rng).size());
  }
}
BENCHMARK(BM_SampledBetweenness)->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_LabelPropagation(benchmark::State& state) {
  const auto& g = preset_graph(static_cast<std::size_t>(state.range(0)));
  stats::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::label_propagation(g, rng).community_count);
  }
}
BENCHMARK(BM_LabelPropagation)->Range(1 << 12, 1 << 14)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
