// Serial-vs-parallel speedup of the kernels ported onto the shared
// runtime (core/parallel.h), on a synthetic power-law graph.
//
// Prints one row per kernel: serial time (1 lane), parallel time
// (GPLUS_THREADS / hardware lanes) and the speedup. Triangle census and
// PageRank carry the headline expectation (>= 1.5x on 4+ cores); on
// hosts with fewer cores the expectation is reported as SKIP, a
// measured shortfall as MISS. Determinism is asserted as a side effect:
// both runs of every kernel must agree bit-for-bit.
//
// GPLUS_SCALE overrides the node count (default 120,000 — comfortably
// over the 100k the trajectory tracks); GPLUS_SEED the generator seed.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "algo/anf.h"
#include "algo/betweenness.h"
#include "algo/clustering.h"
#include "algo/pagerank.h"
#include "algo/reciprocity.h"
#include "algo/triangles.h"
#include "bench_common.h"
#include "core/parallel.h"
#include "geo/world.h"
#include "stats/rng.h"
#include "synth/graph_gen.h"
#include "synth/population.h"

namespace {

using namespace gplus;

double seconds_of(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

struct Row {
  std::string kernel;
  double serial_s = 0.0;
  double parallel_s = 0.0;
  bool identical = false;
  bool headline = false;  // carries the >= 1.5x expectation
};

void print_row(const Row& row, std::size_t cores) {
  const double speedup = row.parallel_s > 0 ? row.serial_s / row.parallel_s : 0;
  const char* verdict = "";
  if (row.headline) {
    if (cores < 4) {
      verdict = speedup >= 1.5 ? "ok (and <4 cores)" : "SKIP (<4 cores)";
    } else {
      verdict = speedup >= 1.5 ? "ok" : "MISS (expected >= 1.5x)";
    }
  }
  std::printf("%-22s %9.3fs %9.3fs %7.2fx  %-10s %s\n", row.kernel.c_str(),
              row.serial_s, row.parallel_s, speedup,
              row.identical ? "identical" : "DIVERGED", verdict);
}

}  // namespace

int main() {
  const std::size_t nodes = gplus::bench::env_or("GPLUS_SCALE", 120'000);
  const std::uint64_t seed = gplus::bench::seed();
  const std::size_t cores = std::max(1u, std::thread::hardware_concurrency());
  gplus::bench::banner("micro_parallel",
                       "serial vs shared-pool speedup of the hot kernels");
  std::printf("lanes: serial=1, parallel=%zu (GPLUS_THREADS honored), host cores=%zu\n\n",
              gplus::core::thread_count(), cores);

  const synth::PopulationModel population;
  const geo::World world;
  const auto net = synth::generate_network(
      synth::google_plus_preset(nodes, seed), population, world);
  const auto& g = net.graph;
  std::printf("graph: %zu nodes, %zu edges (power-law preset)\n\n",
              g.node_count(), g.edge_count());
  std::printf("%-22s %10s %10s %8s  %-10s %s\n", "kernel", "serial", "parallel",
              "speedup", "results", "headline");

  std::vector<Row> rows;
  // Each entry runs the kernel twice — once at 1 lane, once at the
  // default lane count — and diffs the results.
  auto bench = [&](const std::string& name, bool headline, auto kernel,
                   auto equal) {
    Row row;
    row.kernel = name;
    row.headline = headline;
    gplus::core::set_thread_count(1);
    decltype(kernel()) serial_result;
    row.serial_s = seconds_of([&] { serial_result = kernel(); });
    gplus::core::set_thread_count(0);
    decltype(kernel()) parallel_result;
    row.parallel_s = seconds_of([&] { parallel_result = kernel(); });
    row.identical = equal(serial_result, parallel_result);
    print_row(row, cores);
    rows.push_back(row);
  };

  bench(
      "triangle census", true, [&] { return algo::count_triangles(g); },
      [](const auto& a, const auto& b) {
        return a.triangles == b.triangles && a.triples == b.triples;
      });
  bench(
      "pagerank", true, [&] { return algo::pagerank(g).score; },
      [](const auto& a, const auto& b) { return a == b; });
  bench(
      "clustering (exact)", false,
      [&] { return algo::clustering_coefficients(g); },
      [](const auto& a, const auto& b) { return a == b; });
  bench(
      "global reciprocity", false, [&] { return algo::global_reciprocity(g); },
      [](double a, double b) { return a == b; });
  bench(
      "hyperanf (p=6)", false,
      [&] {
        algo::AnfOptions options;
        options.precision = 6;
        return algo::approximate_neighborhood_function(g, options)
            .reachable_pairs;
      },
      [](const auto& a, const auto& b) { return a == b; });
  bench(
      "sampled betweenness", false,
      [&] {
        stats::Rng rng(5);
        return algo::sampled_betweenness(g, 48, rng);
      },
      [](const auto& a, const auto& b) { return a == b; });

  bool all_identical = true;
  for (const auto& row : rows) all_identical &= row.identical;
  std::printf("\ndeterminism: %s\n",
              all_identical ? "all kernels thread-count independent"
                            : "MISS — serial/parallel results diverged");
  return all_identical ? 0 : 1;
}
