// Figure 1: "Google+ home page of Larry Page" — rendered in ASCII.
//
// The paper's first figure is a screenshot of the most-followed profile.
// We render the synthetic counterpart through the *service* API — the
// same privacy-filtered view the crawler saw — for the top user and for a
// typical user, including the two public lists and their displayed
// totals.
#include "bench_common.h"

#include "core/analysis.h"
#include "core/table.h"
#include "service/service.h"
#include "stream/circles.h"

namespace {

using namespace gplus;

void render_profile(service::SocialService& svc, const core::Dataset& ds,
                    graph::NodeId id) {
  const auto page = svc.fetch_profile(id);
  const auto& profile = ds.profiles[id];
  const std::string name = synth::display_name(id, profile);

  std::cout << "+--------------------------------------------------------------+\n";
  std::cout << "|  " << name << "\n";
  if (page.occupation) {
    std::cout << "|  " << synth::occupation_name(*page.occupation) << "\n";
  }
  if (page.country) {
    std::cout << "|  Lives in: " << geo::country(*page.country).name << "\n";
  }
  std::cout << "|\n";
  std::cout << "|  Have " << (name.size() > 18 ? "them" : name) << " in circles: "
            << core::fmt_count(page.have_in_circles_total) << " people\n";
  std::cout << "|  In their circles: "
            << core::fmt_count(page.in_their_circles_total) << " people\n";
  std::cout << "|\n";
  std::cout << "|  About (public fields):\n";
  for (auto a : synth::all_attributes()) {
    if (page.shared.test(a)) {
      std::cout << "|    * " << synth::attribute_name(a) << "\n";
    }
  }
  std::cout << "|  lists " << (page.lists_public ? "public" : "private") << "\n";
  std::cout << "+--------------------------------------------------------------+\n";
}

}  // namespace

int main() {
  using namespace gplus;
  bench::banner("Figure 1", "profile home page of the most-followed user");

  const auto& ds = bench::dataset();
  service::SocialService svc(&ds.graph(), ds.profiles, {});

  const auto top = core::top_users(ds, 1)[0];
  std::cout << "--- The network's 'Larry Page' (top in-degree) ---\n";
  render_profile(svc, ds, top.node);

  // The paper's Fig 1 shows circle-management UI; print the reconstructed
  // circle counts for the same user.
  const stream::CircleAssignment circles(ds, bench::seed());
  const auto counts = circles.counts(top.node);
  std::cout << "circles: ";
  for (std::size_t k = 0; k < stream::kCircleKindCount; ++k) {
    if (k) std::cout << ", ";
    std::cout << stream::circle_name(static_cast<stream::CircleKind>(k)) << " "
              << counts[k];
  }
  std::cout << "\n\n";

  // A typical user for contrast.
  graph::NodeId typical = 0;
  for (graph::NodeId u = 0; u < ds.user_count(); ++u) {
    if (!ds.profiles[u].celebrity && ds.graph().in_degree(u) >= 5 &&
        ds.graph().in_degree(u) <= 15) {
      typical = u;
      break;
    }
  }
  std::cout << "--- A typical user, for contrast ---\n";
  render_profile(svc, ds, typical);
  std::cout << "\n(paper: Larry Page was listed in 3.7M circles by Aug 2012,\n"
               " 'while the majority are listed in no more than 10' — the\n"
               " same four orders of magnitude separate these two pages)\n";
  return 0;
}
