// Extension bench: the structural appendix.
//
// Measurements beyond the paper's §3 that modern OSN studies report, run
// on the same calibrated dataset:
//  * degree assortativity (social vs broadcast mixing);
//  * triangle census / global transitivity;
//  * k-core profile (dense nucleus vs casual shell);
//  * degree-preserving null model — is the measured clustering and
//    reciprocity structure, or just the degree sequence?
//  * community detection vs the planted geography (NMI);
//  * PageRank vs in-degree: does Table 1's ranking survive reweighting?
#include "bench_common.h"

#include <algorithm>
#include <numeric>
#include <set>

#include "algo/assortativity.h"
#include "algo/betweenness.h"
#include "algo/clustering.h"
#include "algo/communities.h"
#include "algo/kcore.h"
#include "algo/pagerank.h"
#include "algo/reciprocity.h"
#include "algo/rewire.h"
#include "algo/robustness.h"
#include "algo/topk.h"
#include "algo/triangles.h"
#include "core/table.h"
#include "graph/builder.h"
#include "graph/subgraph.h"

int main() {
  using namespace gplus;
  bench::banner("Structural appendix", "mixing, cores, null models, communities");

  const auto& ds = bench::dataset();
  const graph::DiGraph& g = ds.graph();

  std::cout << "--- Degree mixing ---\n";
  std::cout << "assortativity (out->in): "
            << core::fmt_double(algo::degree_assortativity(g), 3)
            << "  (social networks: ~> 0; broadcast networks: < 0)\n";
  std::cout << "assortativity (in->in):  "
            << core::fmt_double(
                   algo::degree_assortativity(g, algo::DegreeMode::kInIn), 3)
            << "\n\n";

  std::cout << "--- Triangles ---\n";
  const auto census = algo::count_triangles(g);
  std::cout << "triangles: " << core::fmt_count(census.triangles)
            << ", connected triples: " << core::fmt_count(census.triples)
            << ", transitivity: " << core::fmt_double(census.transitivity(), 4)
            << "\n\n";

  std::cout << "--- k-core profile ---\n";
  const auto cores = algo::k_core_decomposition(g);
  core::TextTable core_table({"k", "Users in k-core", "Share"});
  for (std::uint32_t k : {1u, 2u, 4u, 8u, 16u, 32u}) {
    if (k > cores.degeneracy) break;
    const auto size = cores.core_size(k);
    core_table.add_row({std::to_string(k), core::fmt_count(size),
                        core::fmt_percent(static_cast<double>(size) /
                                          static_cast<double>(g.node_count()), 1)});
  }
  std::cout << core_table.str();
  std::cout << "degeneracy (deepest core): " << cores.degeneracy << "\n\n";

  std::cout << "--- Degree-preserving null model ---\n";
  {
    // Rewire a subsample-scale graph (full rewiring is O(E) but the
    // clustering re-measure dominates).
    stats::Rng rng(bench::seed());
    const auto rewired = algo::rewire_configuration_model(g, 5.0, rng);
    stats::Rng cc_rng(1);
    const auto cc_real =
        algo::sampled_clustering_coefficients(g, 20'000, cc_rng);
    const auto cc_null =
        algo::sampled_clustering_coefficients(rewired, 20'000, cc_rng);
    auto mean = [](const std::vector<double>& v) {
      double total = 0.0;
      for (double x : v) total += x;
      return v.empty() ? 0.0 : total / static_cast<double>(v.size());
    };
    core::TextTable null_table({"Metric", "Google+ (synth)", "Rewired null"});
    null_table.add_row({"Mean clustering", core::fmt_double(mean(cc_real), 4),
                        core::fmt_double(mean(cc_null), 4)});
    null_table.add_row({"Global reciprocity",
                        core::fmt_percent(algo::global_reciprocity(g)),
                        core::fmt_percent(algo::global_reciprocity(rewired))});
    std::cout << null_table.str();
    std::cout << "(both collapse under rewiring: the triangles and mutual\n"
               " links are genuine structure, not a degree-sequence artifact)\n\n";
  }

  std::cout << "--- Communities vs planted geography ---\n";
  {
    // Label propagation over the *reciprocal* subgraph of located users:
    // mutual links are the paper's notion of a real social tie (§3.3.2),
    // and dropping the one-way celebrity in-flows keeps the hub spokes
    // from collapsing everything into one label.
    std::vector<graph::NodeId> located;
    for (graph::NodeId u = 0; u < g.node_count(); ++u) {
      if (ds.located(u)) located.push_back(u);
    }
    const auto induced = graph::induced_subgraph(g, located);
    graph::GraphBuilder mutual(
        static_cast<graph::NodeId>(induced.graph.node_count()));
    for (graph::NodeId u = 0; u < induced.graph.node_count(); ++u) {
      for (graph::NodeId v : induced.graph.out_neighbors(u)) {
        if (u < v && induced.graph.has_edge(v, u)) {
          mutual.add_reciprocal_edge(u, v);
        }
      }
    }
    graph::Subgraph sub;
    sub.graph = mutual.build();
    sub.original_id = induced.original_id;
    stats::Rng rng(bench::seed());
    const auto detected = algo::label_propagation(sub.graph, rng);

    std::vector<std::uint32_t> country_labels, city_labels;
    country_labels.reserve(sub.original_id.size());
    for (auto orig : sub.original_id) {
      country_labels.push_back(ds.profiles[orig].country);
      city_labels.push_back((static_cast<std::uint32_t>(ds.profiles[orig].country)
                             << 8) |
                            ds.net.city[orig]);
    }
    const auto by_country = algo::partition_from_labels(country_labels);
    const auto by_city = algo::partition_from_labels(city_labels);

    core::TextTable nmi_table({"Comparison", "NMI"});
    nmi_table.add_row(
        {"detected vs planted country",
         core::fmt_double(algo::normalized_mutual_information(detected, by_country), 3)});
    nmi_table.add_row(
        {"detected vs planted city",
         core::fmt_double(algo::normalized_mutual_information(detected, by_city), 3)});
    nmi_table.add_row(
        {"country vs city (upper context)",
         core::fmt_double(algo::normalized_mutual_information(by_country, by_city), 3)});
    std::cout << nmi_table.str();
    std::cout << "detected communities: " << detected.community_count
              << "; modularity: "
              << core::fmt_double(algo::modularity(sub.graph, detected), 3)
              << "\n(the §4 claim quantified: topology alone recovers a large"
                 "\n share of the planted geography)\n\n";
  }

  std::cout << "--- Betweenness: are the celebrities also the brokers? ---\n";
  {
    stats::Rng rng(bench::seed());
    const auto scores = algo::sampled_betweenness(g, 64, rng);
    const auto by_deg = algo::top_by_in_degree(g, 20);
    // Rank nodes by betweenness.
    std::vector<graph::NodeId> by_btw(g.node_count());
    std::iota(by_btw.begin(), by_btw.end(), graph::NodeId{0});
    std::partial_sort(by_btw.begin(), by_btw.begin() + 20, by_btw.end(),
                      [&](graph::NodeId a, graph::NodeId b) {
                        return scores[a] > scores[b];
                      });
    std::set<graph::NodeId> top_deg;
    for (const auto& r : by_deg) top_deg.insert(r.node);
    std::size_t overlap = 0;
    for (std::size_t i = 0; i < 20; ++i) overlap += top_deg.contains(by_btw[i]);
    std::cout << "top-20 betweenness vs top-20 in-degree overlap: " << overlap
              << "/20 (celebrity hubs double as shortest-path brokers)\n\n";
  }

  std::cout << "--- Robustness: random churn vs celebrity takedown ---\n";
  {
    const std::vector<double> fractions = {0.0, 0.01, 0.05, 0.10};
    stats::Rng rng1(bench::seed()), rng2(bench::seed());
    const auto random =
        algo::removal_sweep(g, algo::RemovalStrategy::kRandom, fractions, rng1);
    const auto targeted = algo::removal_sweep(
        g, algo::RemovalStrategy::kTopInDegree, fractions, rng2);
    core::TextTable table({"Removed", "Giant WCC (random)", "Giant WCC (top hubs)",
                           "Edges left (random)", "Edges left (top hubs)"});
    for (std::size_t i = 0; i < fractions.size(); ++i) {
      table.add_row({core::fmt_percent(fractions[i], 0),
                     core::fmt_percent(random[i].giant_wcc_fraction, 1),
                     core::fmt_percent(targeted[i].giant_wcc_fraction, 1),
                     core::fmt_percent(random[i].edge_survival, 1),
                     core::fmt_percent(targeted[i].edge_survival, 1)});
    }
    std::cout << table.str();
    std::cout << "(the Albert-Jeong-Barabási asymmetry of scale-free graphs:\n"
                 " hubs 'play a central role' — §3.3.1 — in a measurable way)\n\n";
  }

  std::cout << "--- PageRank vs in-degree (Table 1 robustness) ---\n";
  {
    const auto pr = algo::pagerank(g);
    const auto by_pr = algo::top_by_pagerank(pr, 20);
    const auto by_deg = algo::top_by_in_degree(g, 20);
    std::set<graph::NodeId> top_deg;
    for (const auto& r : by_deg) top_deg.insert(r.node);
    std::size_t overlap = 0;
    for (auto u : by_pr) overlap += top_deg.contains(u);
    std::cout << "top-20 overlap: " << overlap << "/20 (iterations "
              << pr.iterations << ", converged "
              << (pr.converged ? "yes" : "no") << ")\n";
    std::cout << "(a high overlap says the paper's raw-in-degree Table 1\n"
                 " ranking is robust to audience-quality reweighting)\n";
  }
  return 0;
}
