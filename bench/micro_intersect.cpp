// Microbenchmark for the shared sorted-set intersection kernels
// (algo/intersect.h): scalar merge, galloping, SSE2/AVX2 block compare
// and the bitset-window variant, swept across skewed list-length ratios.
//
// The skew sweep is the point: the adjacency intersections behind the
// triangle census, Jaccard scoring and the kSuggest mutual-count all hit
// wildly asymmetric list pairs (a celebrity row against a leaf row), and
// each kernel has a regime where it wins — merge at ratio ~1, galloping
// once the ratio passes ~32, SIMD in between. `pick_auto` encodes that
// heuristic; this bench is how its thresholds were calibrated.
//
// Every kernel must return the identical count on every pair — the
// dispatch-invariance contract the serving checksums rely on — so the
// bench asserts agreement and exits nonzero on divergence. Results are
// published to BENCH_intersect.json (override GPLUS_BENCH_INTERSECT_JSON)
// as Melem/s per (kernel, ratio) for the CI artifact; unavailable SIMD
// tiers on the host are reported as 0 and skipped.
//
// GPLUS_SEED overrides the list-generation seed; GPLUS_INTERSECT_REPEAT
// the measurement repeat count (default 7, best-of).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "algo/intersect.h"
#include "bench_common.h"
#include "stats/rng.h"

namespace {

using namespace gplus;
using algo::IntersectKernel;

// Sorted duplicate-free list of `count` values drawn from [0, universe).
std::vector<graph::NodeId> make_sorted(stats::Rng& rng, std::size_t count,
                                       std::uint64_t universe) {
  std::vector<graph::NodeId> values;
  values.reserve(count);
  while (values.size() < count) {
    values.push_back(static_cast<graph::NodeId>(rng.next_below(universe)));
    if (values.size() == count) {
      std::sort(values.begin(), values.end());
      values.erase(std::unique(values.begin(), values.end()), values.end());
    }
  }
  return values;
}

struct Scenario {
  const char* name;    // JSON-friendly ratio label
  std::size_t small;   // shorter list length
  std::size_t large;   // longer list length
};

struct Cell {
  double melems_per_s = 0.0;  // (|a| + |b|) processed per second, millions
  std::size_t count = 0;      // intersection size (must agree across kernels)
  bool available = false;
};

}  // namespace

int main() {
  bench::banner("micro_intersect",
                "sorted-set intersection kernels across list-length skew");
  const std::uint64_t seed = bench::seed();
  const std::size_t repeats = bench::env_or("GPLUS_INTERSECT_REPEAT", 7);

  // Fixed work volume per scenario: the large list stays 64k entries and
  // the small side shrinks, so ratios isolate the skew effect rather than
  // the footprint. Universe 4x the large list keeps overlap plausible.
  const std::size_t kLarge = 1u << 16;
  const Scenario scenarios[] = {
      {"r1", kLarge, kLarge},
      {"r8", kLarge / 8, kLarge},
      {"r64", kLarge / 64, kLarge},
      {"r512", kLarge / 512, kLarge},
  };
  const IntersectKernel kernels[] = {
      IntersectKernel::kScalar, IntersectKernel::kGalloping,
      IntersectKernel::kSse, IntersectKernel::kAvx2, IntersectKernel::kBitset,
  };

  std::printf("host SIMD: sse=%s avx2=%s  (repeats: best of %zu)\n\n",
              algo::sse_intersect_available() ? "yes" : "no",
              algo::avx2_intersect_available() ? "yes" : "no", repeats);
  std::printf("%-10s", "ratio");
  for (const IntersectKernel k : kernels) {
    std::printf(" %12s", algo::intersect_kernel_name(k).data());
  }
  std::printf("   (Melem/s)\n");

  int failures = 0;
  std::vector<std::pair<std::string, double>> json_fields;
  for (const Scenario& s : scenarios) {
    stats::Rng rng(seed + s.small);
    const auto a = make_sorted(rng, s.small, kLarge * 4);
    const auto b = make_sorted(rng, s.large, kLarge * 4);
    const double elems = static_cast<double>(a.size() + b.size());

    Cell cells[std::size(kernels)];
    for (std::size_t k = 0; k < std::size(kernels); ++k) {
      const IntersectKernel kernel = kernels[k];
      if ((kernel == IntersectKernel::kSse &&
           !algo::sse_intersect_available()) ||
          (kernel == IntersectKernel::kAvx2 &&
           !algo::avx2_intersect_available())) {
        continue;
      }
      cells[k].available = true;
      cells[k].count = algo::intersect_count(a, b, kernel);
      double best_s = 1e300;
      for (std::size_t r = 0; r < repeats; ++r) {
        // Enough inner iterations to lift tiny pairs above timer noise.
        const std::size_t iters = std::max<std::size_t>(1, (1u << 22) / elems);
        volatile std::size_t sink = 0;
        const auto start = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < iters; ++i) {
          sink = sink + algo::intersect_count(a, b, kernel);
        }
        const auto stop = std::chrono::steady_clock::now();
        const double elapsed =
            std::chrono::duration<double>(stop - start).count() /
            static_cast<double>(iters);
        best_s = std::min(best_s, elapsed);
      }
      cells[k].melems_per_s = elems / best_s / 1e6;
    }

    // Dispatch-invariance check: every available kernel, same count.
    std::size_t reference = cells[0].count;  // scalar always runs
    std::printf("%-10s", s.name);
    for (std::size_t k = 0; k < std::size(kernels); ++k) {
      if (!cells[k].available) {
        std::printf(" %12s", "n/a");
        continue;
      }
      std::printf(" %12.1f", cells[k].melems_per_s);
      if (cells[k].count != reference) {
        std::printf("\nVIOLATION: %s count %zu != scalar %zu on %s\n",
                    algo::intersect_kernel_name(kernels[k]).data(),
                    cells[k].count, reference, s.name);
        ++failures;
      }
      json_fields.emplace_back(
          std::string("melems_") +
              std::string(algo::intersect_kernel_name(kernels[k])) + "_" +
              s.name,
          cells[k].melems_per_s);
    }
    std::printf("   |a∩b|=%zu\n", reference);
  }

  const char* json_env = std::getenv("GPLUS_BENCH_INTERSECT_JSON");
  const std::string json_path = json_env != nullptr && *json_env != '\0'
                                    ? json_env
                                    : "BENCH_intersect.json";
  {
    std::ofstream out(json_path);
    out.precision(1);
    out << std::fixed;
    out << "{\n  \"bench\": \"micro_intersect\",\n  \"seed\": " << seed;
    for (const auto& [field, value] : json_fields) {
      out << ",\n  \"" << field << "\": " << value;
    }
    out << "\n}\n";
  }
  std::printf("\nwrote %s\n", json_path.c_str());
  if (failures != 0) {
    std::printf("%d violation(s)\n", failures);
    return 1;
  }
  return 0;
}
