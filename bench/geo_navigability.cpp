// Extension bench (§5, [29]): geographic navigability.
//
// Liben-Nowell et al. showed blog social networks route greedily by
// geography; the paper leans on that work to interpret its Fig 9
// distance findings. This bench runs the routing experiment on the
// calibrated network — and on the geo-ablated variant — to show that
// navigability is produced by the same distance-decaying link structure
// Fig 9 measures, not by the degree sequence.
#include "bench_common.h"

#include "core/geo_analysis.h"
#include "core/geo_routing.h"
#include "core/table.h"

int main() {
  using namespace gplus;
  bench::banner("Geographic navigability ([29])",
                "greedy geo-routing over located users");

  const auto& ds = bench::dataset();
  stats::Rng rng(bench::seed());
  const std::size_t pairs = 2'000;

  std::cout << "--- Calibrated network ---\n";
  const auto stats = core::measure_geo_routing(ds, pairs, rng);
  core::TextTable table({"Metric", "Value"});
  table.add_row({"Routing attempts", core::fmt_count(stats.attempts)});
  table.add_row({"Delivered", core::fmt_count(stats.delivered)});
  table.add_row({"Success rate", core::fmt_percent(stats.success_rate, 1)});
  table.add_row({"Mean hops (delivered)",
                 core::fmt_double(stats.mean_hops_delivered, 1)});
  table.add_row({"Median stall distance",
                 core::fmt_double(stats.median_stall_miles, 0) + " mi"});
  std::cout << table.str();
  std::cout << "(the router only sees the ~27% of contacts who share a\n"
               " location — the same constraint the paper's crawler had)\n\n";

  std::cout << "--- P(link | distance): the [29] decay curve ---\n";
  stats::Rng lp_rng(bench::seed());
  const auto curve = core::link_probability_by_distance(ds, 3'000'000, lp_rng);
  core::TextTable lp_table({"Distance (mi)", "Sampled pairs", "Linked",
                            "P(link)"});
  for (const auto& bin : curve) {
    lp_table.add_row(
        {core::fmt_double(bin.min_miles, 0) + "-" +
             core::fmt_double(bin.max_miles, 0),
         core::fmt_count(bin.pairs), core::fmt_count(bin.linked),
         bin.pairs ? core::fmt_double(bin.probability, 6) : "-"});
  }
  std::cout << lp_table.str();
  std::cout << "(monotone decay with distance — the gradient the greedy\n"
               " router climbs; [29] finds the same shape on LiveJournal)\n\n";

  std::cout << "--- Baseline: random forwarding (no geographic gradient) ---\n";
  stats::Rng rng2(bench::seed());
  const auto random_stats = core::measure_geo_routing(
      ds, pairs, rng2, {}, core::RoutePolicy::kRandom);
  core::TextTable baseline({"Policy", "Success rate", "Mean hops"});
  baseline.add_row({"greedy by geography",
                    core::fmt_percent(stats.success_rate, 1),
                    core::fmt_double(stats.mean_hops_delivered, 1)});
  baseline.add_row({"random forwarding",
                    core::fmt_percent(random_stats.success_rate, 1),
                    core::fmt_double(random_stats.mean_hops_delivered, 1)});
  std::cout << baseline.str();
  std::cout << "(the gap is the information carried by contact geography —\n"
               " Liben-Nowell's navigability result, reproduced functionally)\n";
  return 0;
}
