// Extension bench (§7 future work #1): growth-phase dynamics.
//
// Simulates the §2.1 timeline — a 90-day invite-only viral phase, the
// open-signup jump, logistic saturation — and measures the temporal laws
// the paper invokes through [28]: densification (e ∝ n^a, a > 1) and a
// non-growing effective diameter, plus detection of the adoption-curve
// phase transitions the authors want to predict.
#include "bench_common.h"

#include "algo/reciprocity.h"
#include "core/table.h"
#include "crawler/bias.h"
#include "crawler/crawler.h"
#include "evolve/growth.h"
#include "service/service.h"

int main() {
  using namespace gplus;
  bench::banner("Growth dynamics (§7 future work)",
                "adoption phases, densification, diameter over time");

  evolve::GrowthConfig config;
  config.final_node_count = std::min<std::size_t>(bench::scale(), 60'000);
  config.seed = bench::seed();
  const evolve::GrowthSimulation sim(config);

  std::cout << "--- Adoption curve ---\n";
  const auto curve = evolve::adoption_curve(sim);
  core::TextTable adoption({"Day", "Registered", "New that day", "Phase"});
  for (int day : {10, 45, 90, 91, 100, 115, 130, 150, 180}) {
    const char* phase =
        day <= config.invite_only_days ? "invite-only (viral)"
        : (curve.saturation_day != 0 && day >= curve.saturation_day)
            ? "saturating"
            : "open sign-up";
    adoption.add_row({std::to_string(day),
                      core::fmt_count(sim.node_count_at(day)),
                      core::fmt_count(curve.daily_new[static_cast<std::size_t>(day)]),
                      phase});
  }
  std::cout << adoption.str();
  std::cout << "detected transition day: " << curve.transition_day
            << " (open sign-up at day " << config.invite_only_days + 1
            << " — the paper's Sept 20, 2011)\n";
  std::cout << "peak-growth day: " << curve.peak_day << ", saturation onset: "
            << (curve.saturation_day ? std::to_string(curve.saturation_day)
                                     : std::string("beyond window"))
            << "\n\n";

  std::cout << "--- Snapshot series (the multi-crawl §7 proposes) ---\n";
  stats::Rng rng(bench::seed());
  const std::vector<int> days = {40, 70, 95, 110, 130, 150, 180};
  const auto series = evolve::measure_growth(sim, days, 120, rng);
  core::TextTable snapshots({"Day", "Nodes", "Edges", "Mean degree",
                             "Effective diameter", "Giant WCC"});
  for (const auto& m : series) {
    snapshots.add_row({std::to_string(m.day), core::fmt_count(m.nodes),
                       core::fmt_count(m.edges),
                       core::fmt_double(m.mean_degree, 2),
                       core::fmt_double(m.effective_diameter, 2),
                       core::fmt_percent(m.giant_wcc_fraction, 1)});
  }
  std::cout << snapshots.str() << "\n";

  const auto fit = evolve::densification_fit(series);
  std::cout << "densification law e(t) ~ n(t)^a: a = "
            << core::fmt_double(fit.slope, 3) << " (R2 "
            << core::fmt_double(fit.r_squared, 3)
            << "; [28] reports a in (1, 2))\n";
  std::cout << "effective diameter: "
            << core::fmt_double(series.front().effective_diameter, 2) << " -> "
            << core::fmt_double(series.back().effective_diameter, 2)
            << " while the network grew "
            << core::fmt_double(static_cast<double>(series.back().nodes) /
                                    static_cast<double>(series.front().nodes), 1)
            << "x ([28]: non-increasing)\n";
  std::cout << "\n(the paper measured one snapshot at ~day 180 and conjectured\n"
               " its 5.9-hop mean path would shrink 'as the network densifies' —\n"
               " the snapshot series shows exactly that mechanism)\n\n";

  // §7's program executed: re-crawl the network at several dates and
  // track the measured (not ground-truth) metrics over time.
  std::cout << "--- Multi-snapshot crawling (the §7 proposal, end to end) ---\n";
  core::TextTable crawls({"Day", "Crawled", "Measured mean degree",
                          "Measured reciprocity", "Degree bias"});
  for (int day : {95, 130, 180}) {
    const auto snapshot = sim.snapshot(day);
    std::vector<synth::Profile> blank(snapshot.node_count());
    service::SocialService svc(&snapshot, blank, {});
    crawler::CrawlConfig cconfig;
    // Seed at the most-followed account of the day, paper-style; crawl
    // the paper's 56% coverage.
    graph::NodeId seed_node = 0;
    for (graph::NodeId u = 0; u < snapshot.node_count(); ++u) {
      if (snapshot.in_degree(u) > snapshot.in_degree(seed_node)) seed_node = u;
    }
    cconfig.seed_node = seed_node;
    cconfig.max_profiles =
        static_cast<std::size_t>(0.56 * static_cast<double>(snapshot.node_count()));
    const auto crawl = crawler::run_bfs_crawl(svc, cconfig);
    const auto bias = crawler::measure_bias(snapshot, crawl);
    crawls.add_row({std::to_string(day),
                    core::fmt_count(crawl.stats.profiles_crawled),
                    core::fmt_double(crawl.graph.mean_degree(), 2),
                    core::fmt_percent(algo::global_reciprocity(crawl.graph), 1),
                    core::fmt_double(bias.degree_bias_ratio, 2)});
  }
  std::cout << crawls.str();
  std::cout << "(what a measurement team re-crawling monthly would publish:\n"
               " densification visible through the crawled lens, with the\n"
               " §2.2 BFS bias attached to every point)\n";
  return 0;
}
