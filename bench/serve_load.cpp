// Closed-loop load harness for the query-serving subsystem.
//
// Builds a snapshot of the standard seeded dataset, then drives the
// batched query server with the seeded Zipf-over-in-degree client mixes
// (§3.1's α≈1.3 celebrity skew) and reports throughput, p50/p95/p99
// service latency, cache statistics and the response-stream checksum —
// the checksum is identical at every GPLUS_THREADS value, which is the
// determinism contract this harness exists to demonstrate.
//
// Scale with GPLUS_SCALE / GPLUS_SEED (bench_common.h); request count
// with GPLUS_REQUESTS (default 1M per mix). The final section offers the
// queue past capacity and shows bounded, explicit rejection.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/parallel.h"
#include "serve/snapshot.h"
#include "serve/workload.h"

namespace {

using namespace gplus;

void run_mix(const serve::SnapshotView& view, const char* name,
             const serve::WorkloadMix& mix, std::uint64_t requests) {
  serve::ServerConfig config;
  serve::QueryServer server(&view, config);
  serve::WorkloadConfig workload;
  workload.mix = mix;
  workload.requests = requests;
  const auto report = serve::run_closed_loop(server, workload);
  std::printf(
      "%-15s %9.0f q/s  p50 %6.2fus  p95 %6.2fus  p99 %6.2fus  "
      "hit %5.1f%%  rejected %llu  checksum %016llx\n",
      name, report.qps, report.p50_us, report.p95_us, report.p99_us,
      100.0 * report.server.cache.hit_rate(),
      static_cast<unsigned long long>(report.rejected),
      static_cast<unsigned long long>(report.checksum));
}

void overload_demo(const serve::SnapshotView& view) {
  serve::ServerConfig config;
  config.queue_capacity = 64;
  serve::QueryServer server(&view, config);
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    serve::Request q;
    q.type = serve::RequestType::kDegree;
    q.user = i % static_cast<std::uint32_t>(view.node_count());
    (server.submit(q) == serve::ServeStatus::kOk) ? ++accepted : ++rejected;
  }
  std::printf(
      "overload: offered 1000 to a %zu-slot queue -> accepted %llu, "
      "rejected %llu (bounded, explicit)\n",
      server.queue_capacity(), static_cast<unsigned long long>(accepted),
      static_cast<unsigned long long>(rejected));
}

}  // namespace

int main() {
  using namespace gplus;
  bench::banner("serve_load",
                "closed-loop query serving over the immutable snapshot");
  const core::Dataset& dataset = bench::dataset();
  const auto snapshot = serve::build_snapshot(dataset);
  const serve::SnapshotView view(snapshot.bytes());
  std::printf("snapshot: %zu bytes, %zu workers\n\n", snapshot.size(),
              core::thread_count());

  const std::uint64_t requests = bench::env_or("GPLUS_REQUESTS", 1'000'000);
  run_mix(view, "degree-profile", serve::WorkloadMix::degree_profile(), requests);
  run_mix(view, "read", serve::WorkloadMix::read(), requests);
  run_mix(view, "mixed", serve::WorkloadMix::mixed(), requests);
  run_mix(view, "path", serve::WorkloadMix::path(), requests / 10);
  std::printf("\n");
  overload_demo(view);
  return 0;
}
