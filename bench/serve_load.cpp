// Closed-loop load harness for the query-serving subsystem.
//
// Builds a snapshot of the standard seeded dataset, then drives the
// batched query server with the seeded Zipf-over-in-degree client mixes
// (§3.1's α≈1.3 celebrity skew) and reports throughput, p50/p95/p99
// service latency, cache statistics and the response-stream checksum —
// the checksum is identical at every GPLUS_THREADS value, which is the
// determinism contract this harness exists to demonstrate.
//
// `--shards K` additionally splits the snapshot into K vertex shards and
// drives the same mixed workload through the sharded cluster router
// (DESIGN.md §13). The cluster's response-stream checksum must equal the
// unsharded server's — the harness exits nonzero when it does not.
//
// `--transport` (with --shards) re-runs the cluster leg over a seeded
// faulty transport (DESIGN.md §15): drops, delays, duplicates and
// reordering between router and replicas. That leg's checksum is NOT
// asserted against the unsharded run — degraded answers are the point —
// but every request still reaches a terminal status, and the harness
// reports how many responses carried an explicit degradation flag.
//
// `--smoke` shrinks the dataset and request counts for the CI bench gate,
// which publishes the JSON report (default BENCH_serve.json, override
// with GPLUS_BENCH_SERVE_JSON) and compares the throughput fields against
// bench/floors.json. `--mix NAME` runs a single named mix leg instead of
// the full sweep (point GPLUS_BENCH_SERVE_JSON elsewhere so the
// restricted report doesn't shadow the full one's floored fields). Scale
// with GPLUS_SCALE / GPLUS_SEED; request count with GPLUS_REQUESTS. The
// final section offers the queue past capacity and shows bounded,
// explicit rejection.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.h"
#include "core/parallel.h"
#include "serve/cluster.h"
#include "serve/snapshot.h"
#include "serve/snapshot_build.h"
#include "serve/workload.h"

namespace {

using namespace gplus;

struct MixResult {
  const char* name = "";
  double qps = 0.0;
  std::uint64_t checksum = 0;
};

MixResult run_mix(const serve::SnapshotView& view, const char* name,
                  const serve::WorkloadMix& mix, std::uint64_t requests) {
  serve::ServerConfig config;
  serve::QueryServer server(&view, config);
  serve::WorkloadConfig workload;
  workload.mix = mix;
  workload.requests = requests;
  const auto report = serve::run_closed_loop(server, workload);
  std::printf(
      "%-15s %9.0f q/s  p50 %6.2fus  p95 %6.2fus  p99 %6.2fus  "
      "hit %5.1f%%  rejected %llu  checksum %016llx\n",
      name, report.qps, report.p50_us, report.p95_us, report.p99_us,
      100.0 * report.server.cache.hit_rate(),
      static_cast<unsigned long long>(report.rejected),
      static_cast<unsigned long long>(report.checksum));
  return {name, report.qps, report.checksum};
}

void overload_demo(const serve::SnapshotView& view) {
  serve::ServerConfig config;
  config.queue_capacity = 64;
  serve::QueryServer server(&view, config);
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    serve::Request q;
    q.type = serve::RequestType::kDegree;
    q.user = i % static_cast<std::uint32_t>(view.node_count());
    (server.submit(q) == serve::ServeStatus::kOk) ? ++accepted : ++rejected;
  }
  std::printf(
      "overload: offered 1000 to a %zu-slot queue -> accepted %llu, "
      "rejected %llu (bounded, explicit)\n",
      server.queue_capacity(), static_cast<unsigned long long>(accepted),
      static_cast<unsigned long long>(rejected));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gplus;
  bool smoke = false;
  bool transport = false;
  std::size_t shards = 0;
  const char* only_mix = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--transport") == 0) {
      transport = true;
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--mix") == 0 && i + 1 < argc) {
      only_mix = argv[++i];
    }
  }
  if (transport && shards == 0) {
    std::fprintf(stderr,
                 "serve_load: --transport needs --shards K (the fault model "
                 "sits between router and shard replicas)\n");
    return 1;
  }

  bench::banner("serve_load",
                "closed-loop query serving over the immutable snapshot");
  const std::size_t nodes = smoke ? 20'000 : bench::scale();
  const auto dataset = core::make_standard_dataset(nodes, bench::seed());
  const auto snapshot = serve::build_snapshot(dataset);
  const serve::SnapshotView view(snapshot.bytes());
  std::printf("snapshot: %zu nodes, %zu bytes, %zu workers%s\n\n", nodes,
              snapshot.size(), core::thread_count(), smoke ? " (smoke)" : "");

  const std::uint64_t requests =
      bench::env_or("GPLUS_REQUESTS", smoke ? 100'000 : 1'000'000);
  // Path and suggest legs carry multi-hop traversals per request; a tenth
  // of the request count keeps their wall time in line with the cheap legs.
  const auto leg_requests = [&](std::string_view name) {
    return (name == "path" || name == "suggest") ? requests / 10 : requests;
  };
  std::vector<MixResult> results;
  std::size_t cluster_ref = 2;  // index of the leg the cluster re-runs
  if (only_mix != nullptr) {
    results.push_back(run_mix(view, only_mix,
                              serve::WorkloadMix::by_name(only_mix),
                              leg_requests(only_mix)));
    cluster_ref = 0;
  } else {
    results.push_back(run_mix(view, "degree-profile",
                              serve::WorkloadMix::degree_profile(), requests));
    results.push_back(
        run_mix(view, "read", serve::WorkloadMix::read(), requests));
    results.push_back(
        run_mix(view, "mixed", serve::WorkloadMix::mixed(), requests));
    results.push_back(
        run_mix(view, "path", serve::WorkloadMix::path(), requests / 10));
    results.push_back(run_mix(view, "suggest", serve::WorkloadMix::suggest(),
                              requests / 10));
  }
  const std::string cluster_leg = results[cluster_ref].name;

  // Sharded cluster leg: the reference workload (mixed, or the --mix
  // selection) re-driven through the K-shard router. Answer-identical to
  // the unsharded run — checksum equality is asserted.
  int failures = 0;
  double qps_cluster = 0.0;
  double qps_faulty = 0.0;
  std::uint64_t checksum_cluster = 0;
  std::uint64_t degraded_faulty = 0;
  if (shards > 0) {
    serve::ShardingOptions opts;
    opts.shard_count = shards;
    const auto sharded = serve::split_snapshot(view, opts);
    std::vector<serve::SnapshotView> shard_views;
    shard_views.reserve(shards);
    for (const auto& shard : sharded.shards) {
      shard_views.emplace_back(shard.bytes());
    }
    std::vector<const serve::SnapshotView*> ptrs;
    for (const auto& sv : shard_views) ptrs.push_back(&sv);
    serve::ClusterServer cluster(&sharded.routing, ptrs);
    serve::WorkloadConfig workload;
    workload.mix = serve::WorkloadMix::by_name(cluster_leg);
    workload.requests = leg_requests(cluster_leg);
    const auto report = serve::run_closed_loop(cluster, view, workload);
    qps_cluster = report.qps;
    checksum_cluster = report.checksum;
    const auto stats = cluster.stats_snapshot();
    const std::string label = "cluster-" + cluster_leg;
    std::printf(
        "%-15s %9.0f q/s  p50 %6.2fus  p95 %6.2fus  p99 %6.2fus  "
        "scatter %llu  messages %llu  checksum %016llx  (%zu shards)\n",
        label.c_str(), report.qps, report.p50_us, report.p95_us,
        report.p99_us, static_cast<unsigned long long>(stats.scatter),
        static_cast<unsigned long long>(stats.messages),
        static_cast<unsigned long long>(report.checksum), shards);
    const std::uint64_t checksum_ref = results[cluster_ref].checksum;
    if (checksum_cluster != checksum_ref) {
      std::printf("VIOLATION: cluster %s checksum %016llx != unsharded "
                  "%016llx\n",
                  cluster_leg.c_str(),
                  static_cast<unsigned long long>(checksum_cluster),
                  static_cast<unsigned long long>(checksum_ref));
      ++failures;
    }

    // Faulty-transport leg: the same workload through a cluster whose
    // router↔replica channel drops, delays, duplicates and reorders.
    // Checksum equality is deliberately NOT asserted here — some answers
    // are explicitly degraded — but nothing may hang or vanish. The drop
    // rate sits above the chaos storm's cruising profile on purpose:
    // retries + hedging fully mask light loss, and a leg whose degraded
    // count is always zero demonstrates nothing.
    if (transport) {
      serve::ClusterConfig faulty_config;
      faulty_config.replicas = 2;
      faulty_config.transport.enabled = true;
      faulty_config.transport.seed = bench::seed() ^ 0x7E5AULL;
      faulty_config.transport.profile.drop_rate = 0.12;
      faulty_config.transport.profile.delay_rate = 0.10;
      faulty_config.transport.profile.delay_min = 4;
      faulty_config.transport.profile.delay_max = 40;
      faulty_config.transport.profile.duplicate_rate = 0.02;
      faulty_config.transport.profile.reorder_rate = 0.05;
      serve::ClusterServer faulty(&sharded.routing, ptrs, faulty_config);
      const auto faulty_report = serve::run_closed_loop(faulty, view, workload);
      qps_faulty = faulty_report.qps;
      degraded_faulty = faulty_report.degraded;
      const auto& t = faulty.transport_stats();
      const std::string faulty_label = "faulty-" + cluster_leg;
      std::printf(
          "%-15s %9.0f q/s  p50 %6.2fus  p95 %6.2fus  p99 %6.2fus  "
          "degraded %llu  rpcs %llu  hedges %llu  checksum %016llx\n",
          faulty_label.c_str(), faulty_report.qps, faulty_report.p50_us,
          faulty_report.p95_us, faulty_report.p99_us,
          static_cast<unsigned long long>(degraded_faulty),
          static_cast<unsigned long long>(t.rpcs),
          static_cast<unsigned long long>(t.hedges),
          static_cast<unsigned long long>(faulty_report.checksum));
      if (faulty_report.served < workload.requests) {
        std::printf("VIOLATION: faulty leg served %llu < %llu requested\n",
                    static_cast<unsigned long long>(faulty_report.served),
                    static_cast<unsigned long long>(workload.requests));
        ++failures;
      }
    }
  }
  std::printf("\n");
  overload_demo(view);

  const char* json_env = std::getenv("GPLUS_BENCH_SERVE_JSON");
  const std::string json_path =
      json_env != nullptr && *json_env != '\0' ? json_env : "BENCH_serve.json";
  {
    std::ofstream out(json_path);
    out.precision(1);
    out << std::fixed;
    out << "{\n"
        << "  \"bench\": \"serve_load\",\n"
        << "  \"nodes\": " << nodes << ",\n"
        << "  \"requests\": " << requests << ",\n"
        << "  \"threads\": " << core::thread_count() << ",\n"
        << "  \"shards\": " << shards << ",\n";
    for (const MixResult& r : results) {
      out << "  \"qps_" << r.name << "\": " << r.qps << ",\n";
    }
    out << "  \"qps_cluster_" << cluster_leg << "\": " << qps_cluster << ",\n";
    if (transport) {
      out << "  \"qps_faulty_" << cluster_leg << "\": " << qps_faulty << ",\n"
          << "  \"degraded_faulty_" << cluster_leg << "\": " << degraded_faulty
          << ",\n";
    }
    out << "  \"checksum_" << cluster_leg << "\": \"" << std::hex
        << results[cluster_ref].checksum << std::dec << "\",\n"
        << "  \"checksum_cluster_" << cluster_leg << "\": \"" << std::hex
        << checksum_cluster << std::dec << "\"\n"
        << "}\n";
  }
  std::printf("\nwrote %s\n", json_path.c_str());
  if (failures != 0) {
    std::printf("%d violation(s)\n", failures);
    return 1;
  }
  return 0;
}
