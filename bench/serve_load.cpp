// Closed-loop load harness for the query-serving subsystem.
//
// Builds a snapshot of the standard seeded dataset, then drives the
// batched query server with the seeded Zipf-over-in-degree client mixes
// (§3.1's α≈1.3 celebrity skew) and reports throughput, p50/p95/p99
// service latency, cache statistics and the response-stream checksum —
// the checksum is identical at every GPLUS_THREADS value, which is the
// determinism contract this harness exists to demonstrate.
//
// `--shards K` additionally splits the snapshot into K vertex shards and
// drives the same mixed workload through the sharded cluster router
// (DESIGN.md §13). The cluster's response-stream checksum must equal the
// unsharded server's — the harness exits nonzero when it does not.
//
// `--smoke` shrinks the dataset and request counts for the CI bench gate,
// which publishes the JSON report (default BENCH_serve.json, override
// with GPLUS_BENCH_SERVE_JSON) and compares the throughput fields against
// bench/floors.json. Scale with GPLUS_SCALE / GPLUS_SEED; request count
// with GPLUS_REQUESTS. The final section offers the queue past capacity
// and shows bounded, explicit rejection.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/parallel.h"
#include "serve/cluster.h"
#include "serve/snapshot.h"
#include "serve/snapshot_build.h"
#include "serve/workload.h"

namespace {

using namespace gplus;

struct MixResult {
  const char* name = "";
  double qps = 0.0;
  std::uint64_t checksum = 0;
};

MixResult run_mix(const serve::SnapshotView& view, const char* name,
                  const serve::WorkloadMix& mix, std::uint64_t requests) {
  serve::ServerConfig config;
  serve::QueryServer server(&view, config);
  serve::WorkloadConfig workload;
  workload.mix = mix;
  workload.requests = requests;
  const auto report = serve::run_closed_loop(server, workload);
  std::printf(
      "%-15s %9.0f q/s  p50 %6.2fus  p95 %6.2fus  p99 %6.2fus  "
      "hit %5.1f%%  rejected %llu  checksum %016llx\n",
      name, report.qps, report.p50_us, report.p95_us, report.p99_us,
      100.0 * report.server.cache.hit_rate(),
      static_cast<unsigned long long>(report.rejected),
      static_cast<unsigned long long>(report.checksum));
  return {name, report.qps, report.checksum};
}

void overload_demo(const serve::SnapshotView& view) {
  serve::ServerConfig config;
  config.queue_capacity = 64;
  serve::QueryServer server(&view, config);
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    serve::Request q;
    q.type = serve::RequestType::kDegree;
    q.user = i % static_cast<std::uint32_t>(view.node_count());
    (server.submit(q) == serve::ServeStatus::kOk) ? ++accepted : ++rejected;
  }
  std::printf(
      "overload: offered 1000 to a %zu-slot queue -> accepted %llu, "
      "rejected %llu (bounded, explicit)\n",
      server.queue_capacity(), static_cast<unsigned long long>(accepted),
      static_cast<unsigned long long>(rejected));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gplus;
  bool smoke = false;
  std::size_t shards = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::strtoull(argv[++i], nullptr, 10);
    }
  }

  bench::banner("serve_load",
                "closed-loop query serving over the immutable snapshot");
  const std::size_t nodes = smoke ? 20'000 : bench::scale();
  const auto dataset = core::make_standard_dataset(nodes, bench::seed());
  const auto snapshot = serve::build_snapshot(dataset);
  const serve::SnapshotView view(snapshot.bytes());
  std::printf("snapshot: %zu nodes, %zu bytes, %zu workers%s\n\n", nodes,
              snapshot.size(), core::thread_count(), smoke ? " (smoke)" : "");

  const std::uint64_t requests =
      bench::env_or("GPLUS_REQUESTS", smoke ? 100'000 : 1'000'000);
  std::vector<MixResult> results;
  results.push_back(run_mix(view, "degree-profile",
                            serve::WorkloadMix::degree_profile(), requests));
  results.push_back(run_mix(view, "read", serve::WorkloadMix::read(), requests));
  results.push_back(
      run_mix(view, "mixed", serve::WorkloadMix::mixed(), requests));
  results.push_back(
      run_mix(view, "path", serve::WorkloadMix::path(), requests / 10));

  // Sharded cluster leg: same mixed workload through the K-shard router.
  // Answer-identical to the unsharded run — checksum equality is asserted.
  int failures = 0;
  double qps_cluster = 0.0;
  std::uint64_t checksum_cluster = 0;
  if (shards > 0) {
    serve::ShardingOptions opts;
    opts.shard_count = shards;
    const auto sharded = serve::split_snapshot(view, opts);
    std::vector<serve::SnapshotView> shard_views;
    shard_views.reserve(shards);
    for (const auto& shard : sharded.shards) {
      shard_views.emplace_back(shard.bytes());
    }
    std::vector<const serve::SnapshotView*> ptrs;
    for (const auto& sv : shard_views) ptrs.push_back(&sv);
    serve::ClusterServer cluster(&sharded.routing, ptrs);
    serve::WorkloadConfig workload;
    workload.mix = serve::WorkloadMix::mixed();
    workload.requests = requests;
    const auto report = serve::run_closed_loop(cluster, view, workload);
    qps_cluster = report.qps;
    checksum_cluster = report.checksum;
    const auto stats = cluster.stats_snapshot();
    std::printf(
        "%-15s %9.0f q/s  p50 %6.2fus  p95 %6.2fus  p99 %6.2fus  "
        "scatter %llu  messages %llu  checksum %016llx  (%zu shards)\n",
        "cluster-mixed", report.qps, report.p50_us, report.p95_us,
        report.p99_us, static_cast<unsigned long long>(stats.scatter),
        static_cast<unsigned long long>(stats.messages),
        static_cast<unsigned long long>(report.checksum), shards);
    const std::uint64_t checksum_mixed = results[2].checksum;
    if (checksum_cluster != checksum_mixed) {
      std::printf("VIOLATION: cluster mixed checksum %016llx != unsharded "
                  "%016llx\n",
                  static_cast<unsigned long long>(checksum_cluster),
                  static_cast<unsigned long long>(checksum_mixed));
      ++failures;
    }
  }
  std::printf("\n");
  overload_demo(view);

  const char* json_env = std::getenv("GPLUS_BENCH_SERVE_JSON");
  const std::string json_path =
      json_env != nullptr && *json_env != '\0' ? json_env : "BENCH_serve.json";
  {
    std::ofstream out(json_path);
    out.precision(1);
    out << std::fixed;
    out << "{\n"
        << "  \"bench\": \"serve_load\",\n"
        << "  \"nodes\": " << nodes << ",\n"
        << "  \"requests\": " << requests << ",\n"
        << "  \"threads\": " << core::thread_count() << ",\n"
        << "  \"shards\": " << shards << ",\n";
    for (const MixResult& r : results) {
      out << "  \"qps_" << r.name << "\": " << r.qps << ",\n";
    }
    out << "  \"qps_cluster_mixed\": " << qps_cluster << ",\n"
        << "  \"checksum_mixed\": \"" << std::hex << results[2].checksum
        << std::dec << "\",\n"
        << "  \"checksum_cluster_mixed\": \"" << std::hex << checksum_cluster
        << std::dec << "\"\n"
        << "}\n";
  }
  std::printf("\nwrote %s\n", json_path.c_str());
  if (failures != 0) {
    std::printf("%d violation(s)\n", failures);
    return 1;
  }
  return 0;
}
