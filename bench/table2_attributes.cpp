// Table 2: Public attributes available in Google+.
//
// Prints the availability count and percentage of each of the 17 profile
// fields next to the paper's values.
#include "bench_common.h"

#include "core/analysis.h"
#include "core/table.h"
#include "synth/profile_gen.h"

int main() {
  using namespace gplus;
  bench::banner("Table 2", "public attributes available in Google+");

  const auto& ds = bench::dataset();
  const auto rows = core::attribute_availability(ds);

  // The paper's Table 2 column, for side-by-side comparison. Work/Home are
  // driven by the tel-user model rather than a per-field base rate.
  auto paper_pct = [](synth::Attribute a) -> double {
    switch (a) {
      case synth::Attribute::kWorkContact: return 0.0022;
      case synth::Attribute::kHomeContact: return 0.0021;
      default: return synth::attribute_base_rate(a);
    }
  };

  core::TextTable table({"Attribute", "Available", "%", "Paper %"});
  for (const auto& row : rows) {
    table.add_row({std::string(synth::attribute_name(row.attribute)),
                   core::fmt_count(row.available),
                   core::fmt_percent(row.fraction),
                   core::fmt_percent(paper_pct(row.attribute))});
  }
  std::cout << table.str();
  return 0;
}
