// Table 1: Top 20 users ranked by in-degree.
//
// The paper's list mixes IT founders, musicians, bloggers and actors, with
// 7 of 20 from the IT industry — unlike Twitter's media-outlet-heavy top
// list. We print the synthetic top 20 with occupation and country, and the
// IT share.
#include "bench_common.h"

#include "core/analysis.h"
#include "core/table.h"

int main() {
  using namespace gplus;
  bench::banner("Table 1", "top 20 users ranked by in-degree");

  const auto& ds = bench::dataset();
  const auto top = core::top_users(ds, 20);

  core::TextTable table({"Rank", "Name", "Occupation", "Country", "In-degree"});
  for (std::size_t i = 0; i < top.size(); ++i) {
    const auto& u = top[i];
    table.add_row({std::to_string(i + 1), u.name,
                   std::string(synth::occupation_name(u.occupation)),
                   u.country == geo::kNoCountry
                       ? "?"
                       : std::string(geo::country(u.country).code),
                   core::fmt_count(u.in_degree)});
  }
  std::cout << table.str() << "\n";
  std::cout << "IT share of top 20: " << core::fmt_percent(core::it_fraction(top))
            << "  (paper: 7/20 = 35%)\n";

  std::size_t celebs = 0;
  for (const auto& u : top) celebs += u.celebrity;
  std::cout << "designated public figures in top 20: " << celebs << "/20\n";
  return 0;
}
