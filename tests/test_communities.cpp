#include "algo/communities.h"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/builder.h"

namespace gplus::algo {
namespace {

using graph::DiGraph;
using graph::GraphBuilder;
using graph::NodeId;

// Two dense cliques joined by a single bridge edge.
DiGraph two_cliques(NodeId size_each) {
  GraphBuilder b;
  for (NodeId u = 0; u < size_each; ++u) {
    for (NodeId v = 0; v < size_each; ++v) {
      if (u != v) b.add_edge(u, v);
    }
  }
  for (NodeId u = size_each; u < 2 * size_each; ++u) {
    for (NodeId v = size_each; v < 2 * size_each; ++v) {
      if (u != v) b.add_edge(u, v);
    }
  }
  b.add_edge(0, size_each);  // bridge
  return b.build();
}

TEST(LabelPropagation, FindsTwoCliques) {
  const auto g = two_cliques(12);
  stats::Rng rng(1);
  const auto partition = label_propagation(g, rng);
  EXPECT_EQ(partition.community_count, 2u);
  // Every member of clique 1 shares a label; same for clique 2.
  for (NodeId u = 1; u < 12; ++u) {
    EXPECT_EQ(partition.label[u], partition.label[0]);
  }
  for (NodeId u = 13; u < 24; ++u) {
    EXPECT_EQ(partition.label[u], partition.label[12]);
  }
  EXPECT_NE(partition.label[0], partition.label[12]);
}

TEST(LabelPropagation, IsolatedNodesKeepOwnLabels) {
  GraphBuilder b(4);
  b.add_reciprocal_edge(0, 1);
  stats::Rng rng(2);
  const auto partition = label_propagation(b.build(), rng);
  EXPECT_EQ(partition.label[0], partition.label[1]);
  EXPECT_NE(partition.label[2], partition.label[3]);
  EXPECT_EQ(partition.community_count, 3u);
}

TEST(LabelPropagation, EmptyGraph) {
  stats::Rng rng(3);
  const auto partition = label_propagation(DiGraph{}, rng);
  EXPECT_EQ(partition.community_count, 0u);
  EXPECT_TRUE(partition.label.empty());
}

TEST(PartitionFromLabels, CompactsArbitraryIds) {
  const std::vector<std::uint32_t> raw = {99, 5, 99, 7, 5};
  const auto p = partition_from_labels(raw);
  EXPECT_EQ(p.community_count, 3u);
  EXPECT_EQ(p.label[0], p.label[2]);
  EXPECT_EQ(p.label[1], p.label[4]);
  EXPECT_NE(p.label[0], p.label[3]);
  const auto sizes = p.sizes();
  std::uint64_t total = std::accumulate(sizes.begin(), sizes.end(),
                                        std::uint64_t{0});
  EXPECT_EQ(total, raw.size());
}

TEST(Nmi, IdenticalPartitionsAreOne) {
  const std::vector<std::uint32_t> labels = {0, 0, 1, 1, 2, 2};
  const auto a = partition_from_labels(labels);
  const auto b = partition_from_labels(labels);
  EXPECT_NEAR(normalized_mutual_information(a, b), 1.0, 1e-9);
}

TEST(Nmi, RelabeledPartitionsStillOne) {
  const std::vector<std::uint32_t> x = {0, 0, 1, 1, 2, 2};
  const std::vector<std::uint32_t> y = {7, 7, 3, 3, 9, 9};
  EXPECT_NEAR(normalized_mutual_information(partition_from_labels(x),
                                            partition_from_labels(y)),
              1.0, 1e-9);
}

TEST(Nmi, IndependentPartitionsNearZero) {
  // Labels alternate vs block: knowing one says nothing about the other.
  std::vector<std::uint32_t> alternate, block;
  for (std::uint32_t i = 0; i < 400; ++i) {
    alternate.push_back(i % 2);
    block.push_back(i < 200 ? 0 : 1);
  }
  const double nmi = normalized_mutual_information(
      partition_from_labels(alternate), partition_from_labels(block));
  EXPECT_LT(nmi, 0.05);
}

TEST(Nmi, TrivialPartitionConventions) {
  const std::vector<std::uint32_t> one_block(10, 0);
  std::vector<std::uint32_t> singletons(10);
  std::iota(singletons.begin(), singletons.end(), 0U);
  // one-block vs anything non-trivial: 0 (entropy 0 on one side).
  EXPECT_DOUBLE_EQ(
      normalized_mutual_information(partition_from_labels(one_block),
                                    partition_from_labels(singletons)),
      0.0);
  // two trivial partitions: 1 by convention.
  EXPECT_DOUBLE_EQ(
      normalized_mutual_information(partition_from_labels(one_block),
                                    partition_from_labels(one_block)),
      1.0);
}

TEST(Nmi, RejectsMismatchedSizes) {
  const std::vector<std::uint32_t> a = {0, 1};
  const std::vector<std::uint32_t> b = {0, 1, 2};
  EXPECT_THROW(normalized_mutual_information(partition_from_labels(a),
                                             partition_from_labels(b)),
               std::invalid_argument);
}

TEST(Modularity, HighForPlantedPartitionLowForMerged) {
  const auto g = two_cliques(10);
  std::vector<std::uint32_t> planted(20);
  for (NodeId u = 0; u < 20; ++u) planted[u] = u < 10 ? 0 : 1;
  const double planted_q = modularity(g, partition_from_labels(planted));
  EXPECT_GT(planted_q, 0.4);

  const std::vector<std::uint32_t> merged(20, 0);
  EXPECT_LT(modularity(g, partition_from_labels(merged)), 0.01);
}

TEST(Modularity, LabelPropagationFindsHighModularityPartition) {
  const auto g = two_cliques(10);
  stats::Rng rng(5);
  const auto detected = label_propagation(g, rng);
  EXPECT_GT(modularity(g, detected), 0.4);
}

TEST(Modularity, ValidatesCoverage) {
  const auto g = two_cliques(4);
  const std::vector<std::uint32_t> short_labels = {0, 1};
  EXPECT_THROW(modularity(g, partition_from_labels(short_labels)),
               std::invalid_argument);
  EXPECT_DOUBLE_EQ(modularity(DiGraph{}, Partition{}), 0.0);
}

}  // namespace
}  // namespace gplus::algo
