#include "crawler/fleet.h"

#include <gtest/gtest.h>

#include "graph/builder.h"

namespace gplus::crawler {
namespace {

using graph::GraphBuilder;
using graph::NodeId;

struct Fixture {
  graph::DiGraph graph;
  std::vector<synth::Profile> profiles;

  Fixture() {
    GraphBuilder b;
    // A connected mutual community of 200 users.
    for (NodeId u = 0; u < 200; ++u) {
      b.add_reciprocal_edge(u, (u + 1) % 200);
      b.add_reciprocal_edge(u, (u + 7) % 200);
    }
    graph = b.build();
    profiles.assign(graph.node_count(), synth::Profile{});
  }

  service::SocialService service() {
    return service::SocialService(&graph, profiles, {});
  }
};

TEST(Fleet, CrawlsEverythingReachable) {
  Fixture fx;
  auto svc = fx.service();
  FleetConfig config;
  const auto result = run_crawl_fleet(svc, config);
  EXPECT_EQ(result.profiles_crawled, fx.graph.node_count());
  EXPECT_EQ(result.requests, svc.request_count());
  EXPECT_GT(result.makespan_days, 0.0);
  EXPECT_EQ(result.machines.size(), 11u);
}

TEST(Fleet, BudgetStopsEarly) {
  Fixture fx;
  auto svc = fx.service();
  FleetConfig config;
  config.max_profiles = 50;
  const auto result = run_crawl_fleet(svc, config);
  EXPECT_EQ(result.profiles_crawled, 50u);
}

TEST(Fleet, MoreMachinesShrinkMakespan) {
  Fixture fx;
  FleetConfig one;
  one.machines = 1;
  FleetConfig eleven;
  eleven.machines = 11;
  auto svc1 = fx.service();
  const auto slow = run_crawl_fleet(svc1, one);
  auto svc2 = fx.service();
  const auto fast = run_crawl_fleet(svc2, eleven);
  EXPECT_GT(slow.makespan_days, fast.makespan_days * 4.0);
  // Work conserved: same total requests either way.
  EXPECT_EQ(slow.requests, fast.requests);
}

TEST(Fleet, RateLimitDominatesMakespan) {
  Fixture fx;
  FleetConfig fast_rate;
  fast_rate.requests_per_second = 10.0;
  fast_rate.mean_latency_seconds = 0.0;
  FleetConfig slow_rate = fast_rate;
  slow_rate.requests_per_second = 1.0;
  auto svc1 = fx.service();
  const auto fast = run_crawl_fleet(svc1, fast_rate);
  auto svc2 = fx.service();
  const auto slow = run_crawl_fleet(svc2, slow_rate);
  // 10x slower rate -> ~10x the makespan (exact without latency noise).
  EXPECT_NEAR(slow.makespan_days / fast.makespan_days, 10.0, 0.5);
}

TEST(Fleet, UtilizationAndAccountingAreCoherent) {
  Fixture fx;
  auto svc = fx.service();
  FleetConfig config;
  config.machines = 4;
  const auto result = run_crawl_fleet(svc, config);
  EXPECT_GT(result.mean_utilization, 0.0);
  EXPECT_LE(result.mean_utilization, 1.0 + 1e-9);
  std::uint64_t machine_requests = 0;
  for (const auto& m : result.machines) {
    machine_requests += m.requests;
    EXPECT_GE(m.busy_seconds, 0.0);
  }
  EXPECT_EQ(machine_requests, result.requests);
  // Timeline is cumulative and ends at the total.
  ASSERT_FALSE(result.profiles_by_day.empty());
  for (std::size_t d = 1; d < result.profiles_by_day.size(); ++d) {
    EXPECT_GE(result.profiles_by_day[d], result.profiles_by_day[d - 1]);
  }
  EXPECT_EQ(result.profiles_by_day.back(), result.profiles_crawled);
}

TEST(Fleet, Validation) {
  Fixture fx;
  auto svc = fx.service();
  FleetConfig bad_seed;
  bad_seed.seed_node = 9999;
  EXPECT_THROW(run_crawl_fleet(svc, bad_seed), std::invalid_argument);
  FleetConfig no_machines;
  no_machines.machines = 0;
  EXPECT_THROW(run_crawl_fleet(svc, no_machines), std::invalid_argument);
  FleetConfig bad_rate;
  bad_rate.requests_per_second = 0.0;
  EXPECT_THROW(run_crawl_fleet(svc, bad_rate), std::invalid_argument);
}

}  // namespace
}  // namespace gplus::crawler
