// Out-of-core build crash-resume: killing a streamed build at any durable
// point and rebuilding over the same scratch directory must produce a
// final v3 file byte-identical to the uninterrupted build.
//
// Crashes are simulated deterministically through the builder's
// checkpoint hook (returning false throws at exactly that durable point —
// no SIGKILL flakiness), at every stage of the pipeline: after a run
// flush mid-ingest, after each external merge, after row encoding and
// just before the atomic rename. Resume semantics are the documented
// contract: replay the same deterministic stream, let `resumed_edges()`
// fast-forward what is already durable, finish idempotently.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <string>

#include "core/dataset.h"
#include "serve/snapshot.h"
#include "serve/snapshot_build.h"

namespace gplus::serve {
namespace {

namespace fs = std::filesystem;

const core::Dataset& dataset() {
  static const core::Dataset instance = core::make_standard_dataset(1'200, 19);
  return instance;
}

// Replays the dataset graph as the deterministic edge/profile stream.
void replay(OutOfCoreSnapshotBuilder& builder) {
  const auto& g = dataset().graph();
  for (graph::NodeId u = 0; u < g.node_count(); ++u) {
    for (const graph::NodeId v : g.out_neighbors(u)) builder.add_edge(u, v);
    builder.set_profile(u, dataset().profiles[u]);
  }
}

OutOfCoreOptions options_for(const fs::path& work_dir) {
  OutOfCoreOptions options;
  options.work_dir = work_dir;
  options.sort_buffer_edges = 2'048;  // several runs from ~20k edges
  return options;
}

SnapshotBuffer reference_build(const fs::path& dir) {
  const fs::path path = dir / "reference.snap";
  OutOfCoreSnapshotBuilder builder(dataset().graph().node_count(),
                                   options_for(dir / "work"));
  replay(builder);
  builder.finish(path);
  SnapshotBuffer bytes = load_snapshot(path);
  fs::remove(path);
  return bytes;
}

class SnapshotResume : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test case: ctest -j runs cases of this binary as
    // concurrent processes, which must not share scratch directories.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string("gplus_resume_") + info->name() + "_" +
            std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

TEST_F(SnapshotResume, KilledAtEveryStageResumesToIdenticalBytes) {
  const SnapshotBuffer want = reference_build(dir_);

  const char* stages[] = {"run_flush", "merged_forward", "merged_reverse",
                          "encoded", "assemble"};
  for (const char* kill_at : stages) {
    SCOPED_TRACE(kill_at);
    const fs::path work = dir_ / (std::string("work_") + kill_at);
    const fs::path out = dir_ / (std::string("out_") + kill_at + ".snap");

    // First attempt: die at the chosen durable point.
    {
      auto options = options_for(work);
      options.checkpoint = [&](std::string_view stage) {
        return stage != kill_at;
      };
      OutOfCoreSnapshotBuilder builder(dataset().graph().node_count(),
                                       std::move(options));
      EXPECT_EQ(builder.resumed_edges(), 0u);
      try {
        replay(builder);
        builder.finish(out);
        FAIL() << "checkpoint abort did not fire";
      } catch (const std::runtime_error& error) {
        EXPECT_NE(std::string(error.what()).find(kill_at), std::string::npos);
      }
      EXPECT_FALSE(fs::exists(out)) << "torn output after simulated crash";
    }

    // Second attempt: same work_dir, replay the same stream, finish.
    {
      OutOfCoreSnapshotBuilder builder(dataset().graph().node_count(),
                                       options_for(work));
      if (std::string(kill_at) == "run_flush") {
        EXPECT_GT(builder.resumed_edges(), 0u)
            << "nothing durable after a flushed run";
      }
      EXPECT_LE(builder.resumed_edges(), dataset().graph().edge_count());
      replay(builder);
      const auto stats = builder.finish(out);
      EXPECT_EQ(stats.resumed_edges, builder.resumed_edges());
      EXPECT_EQ(stats.edge_count, dataset().graph().edge_count());
    }
    const SnapshotBuffer got = load_snapshot(out);
    ASSERT_EQ(got.size(), want.size()) << kill_at;
    EXPECT_EQ(
        std::memcmp(got.bytes().data(), want.bytes().data(), want.size()), 0)
        << "resumed build diverged after killing at " << kill_at;

    // The resumed file serves: validated open + digest sweep.
    const SnapshotView view(got.bytes());
    EXPECT_NO_THROW(view.verify_sections());
  }
}

TEST_F(SnapshotResume, FreshDirectoryIgnoresForeignManifest) {
  // A manifest for a *different* node count must not poison a new build:
  // the builder detects the mismatch and starts clean.
  const fs::path work = dir_ / "work_mismatch";
  {
    OutOfCoreSnapshotBuilder builder(64, options_for(work));
    for (graph::NodeId u = 0; u < 63; ++u) builder.add_edge(u, u + 1);
    // Abandon without finish: leaves manifest + runs behind only if a
    // flush happened; either way the directory is dirty.
  }
  OutOfCoreSnapshotBuilder builder(dataset().graph().node_count(),
                                   options_for(work));
  EXPECT_EQ(builder.resumed_edges(), 0u);
  replay(builder);
  const fs::path out = dir_ / "mismatch.snap";
  builder.finish(out);
  const SnapshotBuffer want = reference_build(dir_);
  const SnapshotBuffer got = load_snapshot(out);
  ASSERT_EQ(got.size(), want.size());
  EXPECT_EQ(std::memcmp(got.bytes().data(), want.bytes().data(), want.size()),
            0);
}

}  // namespace
}  // namespace gplus::serve
