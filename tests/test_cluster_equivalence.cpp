// Cluster answer equivalence: every request family served through the
// K-shard router must be identical — status, flags, payload — to the
// unsharded engine, at K=1 and K=4, under both sharding policies, and the
// full response stream must be bit-identical at every GPLUS_THREADS
// value. This is the DESIGN.md §13 contract the CI matrix gates; the
// CTest ".threads1" variant re-runs every case on the serial fallback.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "core/dataset.h"
#include "core/parallel.h"
#include "serve/cluster.h"
#include "serve/snapshot.h"
#include "serve/snapshot_build.h"
#include "serve/workload.h"

namespace gplus::serve {
namespace {

constexpr std::size_t kNodes = 4000;

const core::Dataset& dataset() {
  static const core::Dataset instance = core::make_standard_dataset(kNodes, 21);
  return instance;
}

const SnapshotView& full_view() {
  static const SnapshotBuffer snapshot = build_snapshot(dataset());
  static const SnapshotView instance{snapshot.bytes()};
  return instance;
}

const ShardedSnapshot& sharded(std::size_t shards, ShardingPolicy policy) {
  static std::vector<std::pair<std::pair<std::size_t, ShardingPolicy>,
                               ShardedSnapshot>>
      cache;
  for (const auto& [key, value] : cache) {
    if (key.first == shards && key.second == policy) return value;
  }
  ShardingOptions opts;
  opts.shard_count = shards;
  opts.policy = policy;
  cache.emplace_back(std::make_pair(shards, policy),
                     split_snapshot(full_view(), opts));
  return cache.back().second;
}

// The probe batch every comparison uses: per family a spread of valid
// targets plus the edge cases — out-of-range ids, paging offsets beyond
// the row, k=0 (cap default), k > cap, u==v paths, far/unreachable paths
// and tight cost budgets that force kDeadlineExceeded partials.
std::vector<Request> probe_batch() {
  std::vector<Request> batch;
  const auto n = static_cast<graph::NodeId>(kNodes);
  auto add = [&](RequestType type, graph::NodeId user, graph::NodeId target,
                 std::uint32_t offset, std::uint32_t limit,
                 std::uint32_t budget) {
    Request q;
    q.type = type;
    q.user = user;
    q.target = target;
    q.offset = offset;
    q.limit = limit;
    q.cost_budget = budget;
    batch.push_back(q);
  };
  for (std::uint32_t i = 0; i < 600; ++i) {
    const graph::NodeId u = (i * 131) % n;
    const graph::NodeId v = (i * 53 + 29) % n;
    add(RequestType::kGetProfile, u, 0, 0, 0, 0);
    add(RequestType::kGetOutCircle, u, 0, (i % 5) * 7, 20, 0);
    add(RequestType::kGetInCircle, u, 0, (i % 3) * 11, 25, 0);
    add(RequestType::kReciprocity, u, 0, 0, 0, 0);
    add(RequestType::kDegree, u, 0, 0, 0, 0);
    add(RequestType::kShortestPath, u, v, 0, 0, 0);
    add(RequestType::kTopK, 0, 0, 0, 1 + i % 20, 0);
    add(RequestType::kSuggest, u, 0, 0, 1 + i % 20, 0);
  }
  // Edge cases.
  add(RequestType::kGetProfile, n, 0, 0, 0, 0);          // invalid user
  add(RequestType::kDegree, n + 7, 0, 0, 0, 0);          // invalid user
  add(RequestType::kGetOutCircle, 3, 0, 1'000'000, 50, 0);  // offset past row
  add(RequestType::kShortestPath, 1, n, 0, 0, 0);        // invalid target
  add(RequestType::kShortestPath, n, 1, 0, 0, 0);        // invalid source
  add(RequestType::kShortestPath, 42, 42, 0, 0, 0);      // u == v
  add(RequestType::kShortestPath, 5, 4999 % n, 0, 0, 3);   // budget partial
  add(RequestType::kShortestPath, 9, 4001 % n, 0, 0, 12);  // budget partial
  add(RequestType::kTopK, 0, 0, 0, 0, 0);                // k = 0 -> cap
  add(RequestType::kTopK, 0, 0, 0, 1'000'000, 0);        // k > cap
  add(RequestType::kTopK, n + 1, 0, 0, 10, 0);           // user ignored
  add(RequestType::kTopK, 0, 0, 0, 50, 7);               // budget partial
  add(RequestType::kSuggest, n, 0, 0, 10, 0);            // invalid user
  add(RequestType::kSuggest, 8, 0, 0, 0, 0);             // k = 0 -> cap
  add(RequestType::kSuggest, 8, 0, 0, 1'000'000, 0);     // k > cap
  add(RequestType::kSuggest, 13, 0, 0, 20, 30);          // budget partial
  add(RequestType::kSuggest, 17, 0, 0, 20, 2);           // budget at root
  return batch;
}

std::vector<Response> drain_unsharded(const std::vector<Request>& batch) {
  ServerConfig config;
  config.queue_capacity = batch.size() + 16;
  QueryServer server(&full_view(), config);
  for (const auto& q : batch) {
    EXPECT_EQ(server.submit(q), ServeStatus::kOk);
  }
  std::vector<Response> responses;
  server.drain(responses);
  return responses;
}

std::vector<Response> drain_cluster(const std::vector<Request>& batch,
                                    std::size_t shards,
                                    ShardingPolicy policy) {
  const auto& split = sharded(shards, policy);
  std::vector<SnapshotView> storage;
  storage.reserve(split.shards.size());
  for (const auto& shard : split.shards) storage.emplace_back(shard.bytes());
  std::vector<const SnapshotView*> ptrs;
  for (const auto& view : storage) ptrs.push_back(&view);
  ClusterConfig config;
  config.server.queue_capacity = batch.size() + 16;
  ClusterServer cluster(&split.routing, ptrs, config);
  for (const auto& q : batch) {
    EXPECT_EQ(cluster.submit(q), ServeStatus::kOk);
  }
  std::vector<Response> responses;
  cluster.drain(responses);
  return responses;
}

void expect_identical(const std::vector<Response>& want,
                      const std::vector<Response>& got, const char* label) {
  ASSERT_EQ(want.size(), got.size()) << label;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].status, got[i].status) << label << " slot " << i;
    EXPECT_EQ(want[i].flags, got[i].flags) << label << " slot " << i;
    ASSERT_EQ(want[i].payload, got[i].payload) << label << " slot " << i;
  }
}

TEST(ClusterEquivalence, EveryFamilyMatchesUnshardedAtK1AndK4) {
  const auto batch = probe_batch();
  const auto want = drain_unsharded(batch);
  ASSERT_EQ(want.size(), batch.size());
  expect_identical(want, drain_cluster(batch, 1, ShardingPolicy::kRankStripe),
                   "K=1 stripe");
  expect_identical(want, drain_cluster(batch, 4, ShardingPolicy::kRankStripe),
                   "K=4 stripe");
}

TEST(ClusterEquivalence, RangePolicyMatchesToo) {
  const auto batch = probe_batch();
  const auto want = drain_unsharded(batch);
  expect_identical(want, drain_cluster(batch, 4, ShardingPolicy::kRankRange),
                   "K=4 range");
  expect_identical(want, drain_cluster(batch, 7, ShardingPolicy::kRankRange),
                   "K=7 range");
}

TEST(ClusterEquivalence, ScatterCostsMatchTheEngineExactly) {
  // Deadline outcomes are a pure function of virtual cost, so scatter
  // executions must meter the exact engine cost, not an approximation.
  std::vector<Request> batch;
  const RequestType scatter_types[] = {RequestType::kShortestPath,
                                       RequestType::kTopK,
                                       RequestType::kSuggest};
  for (std::uint32_t i = 0; i < 300; ++i) {
    Request q;
    q.type = scatter_types[i % 3];
    q.user = (i * 89) % kNodes;
    q.target = (i * 17 + 5) % kNodes;
    q.limit = q.type == RequestType::kShortestPath ? 0 : 1 + i % 30;
    q.cost_budget = i % 4 == 0 ? 5 + i % 40 : 0;
    batch.push_back(q);
  }
  const auto want = drain_unsharded(batch);
  const auto got = drain_cluster(batch, 4, ShardingPolicy::kRankStripe);
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].status, got[i].status) << i;
    EXPECT_EQ(want[i].cost, got[i].cost) << i;
    ASSERT_EQ(want[i].payload, got[i].payload) << i;
  }
}

struct ClusterRun {
  LoadReport report;
  ClusterStats stats;
};

ClusterRun run_cluster_workload(std::size_t shards,
                                const WorkloadMix& mix,
                                std::uint64_t requests) {
  const auto& split = sharded(shards, ShardingPolicy::kRankStripe);
  std::vector<SnapshotView> storage;
  storage.reserve(split.shards.size());
  for (const auto& shard : split.shards) storage.emplace_back(shard.bytes());
  std::vector<const SnapshotView*> ptrs;
  for (const auto& view : storage) ptrs.push_back(&view);
  ClusterConfig config;
  config.replicas = 2;
  ClusterServer cluster(&split.routing, ptrs, config);
  WorkloadConfig workload;
  workload.mix = mix;
  workload.seed = 99;
  workload.clients = 64;
  workload.requests = requests;
  workload.measure_latency = false;
  ClusterRun run;
  run.report = run_closed_loop(cluster, full_view(), workload);
  run.stats = cluster.stats_snapshot();
  return run;
}

TEST(ClusterEquivalence, WorkloadChecksumMatchesUnshardedServer) {
  for (const auto& [name, mix] :
       {std::pair{"mixed", WorkloadMix::mixed()},
        std::pair{"path", WorkloadMix::path()},
        std::pair{"suggest", WorkloadMix::suggest()}}) {
    ServerConfig config;
    QueryServer server(&full_view(), config);
    WorkloadConfig workload;
    workload.mix = mix;
    workload.seed = 99;
    workload.clients = 64;
    workload.requests = 20'000;
    workload.measure_latency = false;
    const auto want = run_closed_loop(server, workload);
    const auto got = run_cluster_workload(4, mix, 20'000);
    EXPECT_EQ(want.checksum, got.report.checksum) << name;
    EXPECT_EQ(want.served, got.report.served) << name;
    EXPECT_EQ(want.response_bytes, got.report.response_bytes) << name;
  }
}

class ClusterLaneEquivalence : public ::testing::TestWithParam<std::size_t> {
 protected:
  void TearDown() override { core::set_thread_count(0); }
};

TEST_P(ClusterLaneEquivalence, WorkloadBitIdenticalAcrossLaneCounts) {
  core::set_thread_count(1);
  const auto base = run_cluster_workload(4, WorkloadMix::mixed(), 20'000);
  core::set_thread_count(GetParam());
  const auto got = run_cluster_workload(4, WorkloadMix::mixed(), 20'000);
  EXPECT_EQ(base.report.checksum, got.report.checksum);
  EXPECT_EQ(base.report.response_bytes, got.report.response_bytes);
  EXPECT_EQ(base.report.served, got.report.served);
  EXPECT_EQ(base.report.rejected, got.report.rejected);
  EXPECT_EQ(base.stats.accepted, got.stats.accepted);
  EXPECT_EQ(base.stats.scatter, got.stats.scatter);
  EXPECT_EQ(base.stats.messages, got.stats.messages);
  EXPECT_EQ(base.stats.by_status, got.stats.by_status);
}

TEST_P(ClusterLaneEquivalence, DrainPayloadsMatchSerialExecution) {
  const auto batch = probe_batch();
  core::set_thread_count(1);
  const auto base = drain_cluster(batch, 4, ShardingPolicy::kRankStripe);
  core::set_thread_count(GetParam());
  const auto got = drain_cluster(batch, 4, ShardingPolicy::kRankStripe);
  ASSERT_EQ(base.size(), got.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(base[i].status, got[i].status) << i;
    EXPECT_EQ(base[i].flags, got[i].flags) << i;
    EXPECT_EQ(base[i].cost, got[i].cost) << i;
    ASSERT_EQ(base[i].payload, got[i].payload) << i;
  }
}

TEST_P(ClusterLaneEquivalence, StormStateBitIdenticalAcrossLaneCounts) {
  ClusterStormConfig config;
  config.seed = 11;
  config.clients = 24;
  config.rounds = 48;
  config.probes = 64;
  config.replicas = 2;
  const auto& split = sharded(4, ShardingPolicy::kRankStripe);
  core::set_thread_count(1);
  const auto base = run_cluster_storm(split, full_view(), config);
  core::set_thread_count(GetParam());
  const auto got = run_cluster_storm(split, full_view(), config);
  EXPECT_TRUE(base.violations.empty());
  EXPECT_TRUE(got.violations.empty());
  EXPECT_EQ(base.checksum, got.checksum);
  EXPECT_EQ(base.by_status, got.by_status);
  EXPECT_EQ(base.offered, got.offered);
  EXPECT_EQ(base.dark_answers, got.dark_answers);
  EXPECT_EQ(base.post_probe_checksum, got.post_probe_checksum);
  EXPECT_EQ(base.unsharded_probe_checksum, got.unsharded_probe_checksum);
}

std::vector<std::size_t> lane_counts() {
  std::vector<std::size_t> lanes{2, 7};
  const std::size_t hw =
      std::max<std::size_t>(2, std::thread::hardware_concurrency());
  if (std::find(lanes.begin(), lanes.end(), hw) == lanes.end()) {
    lanes.push_back(hw);
  }
  return lanes;
}

INSTANTIATE_TEST_SUITE_P(
    Lanes, ClusterLaneEquivalence, ::testing::ValuesIn(lane_counts()),
    [](const auto& info) { return "lanes" + std::to_string(info.param); });

}  // namespace
}  // namespace gplus::serve
