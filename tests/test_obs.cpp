// Observability-layer tests: registry semantics (counter/gauge/histogram
// math, registration collisions), sharded-counter exactness under the
// parallel runtime, merge determinism between GPLUS_THREADS=1 and N,
// snapshot/delta algebra, deterministic-only filtering, exporter golden
// output, and the virtual-clock trace log. The CTest ".threads1" variant
// re-runs every case under GPLUS_THREADS=1.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <tuple>

#include "core/parallel.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gplus::obs {
namespace {

// --- Counter ---------------------------------------------------------------

TEST(CounterTest, AddAndValue) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.add(0);
  EXPECT_EQ(c.value(), 42u);
}

TEST(CounterTest, ShardedCellsAreExactUnderParallelFor) {
  // Every lane hammers the same counter; the sharded cells must lose
  // nothing, at any lane count. Integer sums over the cells are exact.
  Counter c;
  constexpr std::size_t kN = 200'000;
  core::parallel_for(kN, 1'000, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) c.add();
  });
  EXPECT_EQ(c.value(), kN);
}

TEST(CounterTest, MergedTotalIdenticalAtOneLaneAndFour) {
  const auto run = [](std::size_t lanes) {
    core::set_thread_count(lanes);
    Counter c;
    core::parallel_for(50'000, 500, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) c.add(i % 7);
    });
    core::set_thread_count(0);
    return c.value();
  };
  EXPECT_EQ(run(1), run(4));
}

// --- Gauge -----------------------------------------------------------------

TEST(GaugeTest, SetAddValue) {
  Gauge g;
  EXPECT_EQ(g.value(), 0);
  g.set(10);
  EXPECT_EQ(g.value(), 10);
  g.add(-25);
  EXPECT_EQ(g.value(), -15);
  g.set(3);
  EXPECT_EQ(g.value(), 3);
}

// --- Histogram -------------------------------------------------------------

TEST(HistogramTest, BucketsCountAndSum) {
  Histogram h({10, 20, 30});
  // Bucket i counts values <= bounds[i]; one implicit overflow bucket.
  h.record(0);
  h.record(10);   // both land in le10
  h.record(11);   // le20
  h.record(30);   // le30
  h.record(31);   // overflow
  h.record(1'000);  // overflow
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 0u + 10 + 11 + 30 + 31 + 1'000);
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 2u);
}

TEST(HistogramTest, RejectsEmptyOrNonIncreasingBounds) {
  EXPECT_THROW(Histogram({}), std::logic_error);
  EXPECT_THROW(Histogram({5, 5}), std::logic_error);
  EXPECT_THROW(Histogram({10, 5}), std::logic_error);
}

TEST(HistogramTest, ShardedRecordingIsExactAndLaneIndependent) {
  const auto run = [](std::size_t lanes) {
    core::set_thread_count(lanes);
    Histogram h({100, 1'000});
    core::parallel_for(30'000, 300, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) h.record(i % 2'000);
    });
    core::set_thread_count(0);
    return std::tuple(h.count(), h.sum(), h.bucket_counts());
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  EXPECT_EQ(std::get<0>(serial), 30'000u);
  EXPECT_EQ(serial, parallel);
}

// --- Registry --------------------------------------------------------------

TEST(RegistryTest, FirstUseCreatesLaterUsesReturnTheSameMetric) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x.count");
  a.add(3);
  Counter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(reg.size(), 1u);
  reg.gauge("x.level").set(-4);
  reg.histogram("x.hist", {1, 2}).record(2);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(RegistryTest, MismatchedReRegistrationThrows) {
  MetricsRegistry reg;
  reg.counter("m");
  EXPECT_THROW(reg.gauge("m"), std::logic_error);
  EXPECT_THROW(reg.histogram("m", {1}), std::logic_error);
  // Same kind, different determinism tag.
  EXPECT_THROW(reg.counter("m", Determinism::kRunDependent), std::logic_error);
  // Same kind, different histogram bounds.
  reg.histogram("h", {1, 2, 3});
  EXPECT_THROW(reg.histogram("h", {1, 2}), std::logic_error);
  // Matching re-registration is fine.
  EXPECT_NO_THROW(reg.counter("m"));
  EXPECT_NO_THROW(reg.histogram("h", {1, 2, 3}));
}

TEST(RegistryTest, SnapshotCapturesEveryKind) {
  MetricsRegistry reg;
  reg.counter("c").add(7);
  reg.gauge("g").set(-9);
  Histogram& h = reg.histogram("h", {5});
  h.record(3);
  h.record(8);

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.entries.size(), 3u);
  EXPECT_TRUE(snap.contains("c"));
  EXPECT_FALSE(snap.contains("missing"));
  EXPECT_EQ(snap.value("c"), 7);
  EXPECT_EQ(snap.value("g"), -9);
  EXPECT_EQ(snap.value("h"), 2);  // histogram value() is the sample count
  EXPECT_EQ(snap.value("missing"), 0);
  const auto& entry = snap.entries.at("h");
  EXPECT_EQ(entry.kind, MetricKind::kHistogram);
  EXPECT_EQ(entry.sum, 11u);
  EXPECT_EQ(entry.bounds, (std::vector<std::uint64_t>{5}));
  EXPECT_EQ(entry.buckets, (std::vector<std::uint64_t>{1, 1}));
}

TEST(RegistryTest, DeterministicOnlyFiltersRunDependentMetrics) {
  MetricsRegistry reg;
  reg.counter("det").add(1);
  reg.counter("sched", Determinism::kRunDependent).add(1);
  EXPECT_EQ(reg.snapshot().entries.size(), 2u);
  const MetricsSnapshot filtered = reg.snapshot(/*deterministic_only=*/true);
  EXPECT_EQ(filtered.entries.size(), 1u);
  EXPECT_TRUE(filtered.contains("det"));
  EXPECT_FALSE(filtered.contains("sched"));
}

TEST(RegistryTest, GlobalIsASingleProcessWideInstance) {
  EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

// --- Snapshot delta --------------------------------------------------------

TEST(DeltaTest, CountersAndHistogramsSubtractGaugesKeepAfter) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  Gauge& g = reg.gauge("g");
  Histogram& h = reg.histogram("h", {10});
  c.add(5);
  g.set(100);
  h.record(4);
  const MetricsSnapshot before = reg.snapshot();

  c.add(7);
  g.set(42);
  h.record(12);
  h.record(6);
  const MetricsSnapshot d = delta(reg.snapshot(), before);

  EXPECT_EQ(d.value("c"), 7);
  EXPECT_EQ(d.value("g"), 42);  // gauges are levels, not rates
  const auto& dh = d.entries.at("h");
  EXPECT_EQ(dh.count, 2u);
  EXPECT_EQ(dh.sum, 18u);
  EXPECT_EQ(dh.buckets, (std::vector<std::uint64_t>{1, 1}));
}

TEST(DeltaTest, EntriesAbsentFromBeforePassThroughWhole) {
  MetricsRegistry reg;
  reg.counter("old").add(2);
  const MetricsSnapshot before = reg.snapshot();
  reg.counter("fresh").add(9);
  const MetricsSnapshot d = delta(reg.snapshot(), before);
  EXPECT_EQ(d.value("fresh"), 9);
  EXPECT_EQ(d.value("old"), 0);
}

TEST(DeltaTest, BeforeOnlyEntriesAreDropped) {
  MetricsSnapshot before;
  before.entries["gone"].value = 3;
  const MetricsSnapshot d = delta(MetricsSnapshot{}, before);
  EXPECT_TRUE(d.entries.empty());
}

// --- Exporters -------------------------------------------------------------

MetricsSnapshot exporter_fixture() {
  MetricsRegistry reg;
  reg.counter("app.requests").add(12);
  reg.gauge("app.depth").set(-3);
  Histogram& h = reg.histogram("app.cost", {1, 10});
  h.record(1);
  h.record(5);
  h.record(99);
  return reg.snapshot();
}

TEST(ExporterTest, TextGoldenOutput) {
  EXPECT_EQ(to_text(exporter_fixture()),
            "histogram app.cost count=3 sum=105 le1=1 le10=1 inf=1\n"
            "gauge app.depth -3\n"
            "counter app.requests 12\n");
}

TEST(ExporterTest, JsonGoldenOutput) {
  EXPECT_EQ(to_json(exporter_fixture()),
            "{\n"
            "  \"counters\": {\n"
            "    \"app.requests\": 12\n"
            "  },\n"
            "  \"gauges\": {\n"
            "    \"app.depth\": -3\n"
            "  },\n"
            "  \"histograms\": {\n"
            "    \"app.cost\": {\"count\": 3, \"sum\": 105, "
            "\"bounds\": [1, 10], \"buckets\": [1, 1, 1]}\n"
            "  }\n"
            "}\n");
}

TEST(ExporterTest, EmptySnapshotSerializesToEmptySections) {
  const MetricsSnapshot empty;
  EXPECT_EQ(to_text(empty), "");
  EXPECT_EQ(to_json(empty),
            "{\n"
            "  \"counters\": {},\n"
            "  \"gauges\": {},\n"
            "  \"histograms\": {}\n"
            "}\n");
}

// --- TraceLog --------------------------------------------------------------

TEST(TraceTest, DisabledLogIsANoOp) {
  TraceLog log;
  EXPECT_FALSE(log.enabled());
  const std::size_t span = log.begin_span("ignored");
  EXPECT_EQ(span, TraceLog::kNoSpan);
  log.attr(span, "k", 1);
  log.end_span(span);
  EXPECT_EQ(log.span_count(), 0u);
  EXPECT_EQ(log.to_text(), "");
}

TEST(TraceTest, SpansStampTheVirtualClockNeverWallTime) {
  TraceLog log;
  log.set_enabled(true);
  const std::size_t outer = log.begin_span("outer");
  log.advance(10);
  const std::size_t inner = log.begin_span("inner");
  log.attr(inner, "items", 4);
  log.advance(5);
  log.end_span(inner);
  log.end_span(outer);

  EXPECT_EQ(log.now(), 15u);
  EXPECT_EQ(log.span_count(), 2u);
  EXPECT_EQ(log.to_text(),
            "span outer depth=0 start=0 end=15\n"
            "span inner depth=1 start=10 end=15 items=4\n");
}

TEST(TraceTest, ScopeIsRaiiAndClearResetsClockAndSpans) {
  TraceLog log;
  log.set_enabled(true);
  {
    TraceLog::Scope scope(log, "work");
    scope.attr("n", 2);
    log.advance(3);
  }
  EXPECT_EQ(log.to_text(), "span work depth=0 start=0 end=3 n=2\n");
  log.clear();
  EXPECT_EQ(log.now(), 0u);
  EXPECT_EQ(log.span_count(), 0u);
  EXPECT_EQ(log.to_text(), "");
}

TEST(TraceTest, IdenticalWorkloadYieldsIdenticalText) {
  const auto run = [] {
    TraceLog log;
    log.set_enabled(true);
    for (int i = 0; i < 3; ++i) {
      TraceLog::Scope scope(log, "round");
      scope.attr("i", static_cast<std::uint64_t>(i));
      log.advance(7);
    }
    return log.to_text();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace gplus::obs
