#include "graph/subgraph.h"

#include <gtest/gtest.h>

#include "graph/builder.h"

namespace gplus::graph {
namespace {

DiGraph sample_graph() {
  // 0 -> 1 -> 2 -> 3 -> 0 ring, plus chords 0 -> 2 and 3 -> 1.
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 0);
  b.add_edge(0, 2);
  b.add_edge(3, 1);
  return b.build();
}

TEST(Subgraph, KeepsOnlyInternalEdges) {
  const auto g = sample_graph();
  const std::vector<NodeId> keep = {0, 1, 2};
  const auto sub = induced_subgraph(g, keep);
  EXPECT_EQ(sub.graph.node_count(), 3u);
  // Internal edges: 0->1, 1->2, 0->2.
  EXPECT_EQ(sub.graph.edge_count(), 3u);
  EXPECT_TRUE(sub.graph.has_edge(0, 1));
  EXPECT_TRUE(sub.graph.has_edge(1, 2));
  EXPECT_TRUE(sub.graph.has_edge(0, 2));
}

TEST(Subgraph, OriginalIdsMapBack) {
  const auto g = sample_graph();
  const std::vector<NodeId> keep = {3, 1};
  const auto sub = induced_subgraph(g, keep);
  ASSERT_EQ(sub.original_id.size(), 2u);
  // original_id sorted ascending by construction.
  EXPECT_EQ(sub.original_id[0], 1u);
  EXPECT_EQ(sub.original_id[1], 3u);
  // Edge 3 -> 1 survives under new labels (1 -> 0).
  EXPECT_TRUE(sub.graph.has_edge(1, 0));
  EXPECT_EQ(sub.graph.edge_count(), 1u);
}

TEST(Subgraph, DuplicateSelectionCollapsed) {
  const auto g = sample_graph();
  const std::vector<NodeId> keep = {2, 2, 2};
  const auto sub = induced_subgraph(g, keep);
  EXPECT_EQ(sub.graph.node_count(), 1u);
  EXPECT_EQ(sub.graph.edge_count(), 0u);
}

TEST(Subgraph, EmptySelection) {
  const auto g = sample_graph();
  const auto sub = induced_subgraph(g, std::vector<NodeId>{});
  EXPECT_EQ(sub.graph.node_count(), 0u);
  EXPECT_EQ(sub.graph.edge_count(), 0u);
}

TEST(Subgraph, InvalidNodeRejected) {
  const auto g = sample_graph();
  const std::vector<NodeId> keep = {0, 99};
  EXPECT_THROW(induced_subgraph(g, keep), std::invalid_argument);
}

TEST(Subgraph, MaskVariantMatchesListVariant) {
  const auto g = sample_graph();
  std::vector<bool> mask = {true, false, true, true};
  const auto from_mask = induced_subgraph(g, mask);
  const std::vector<NodeId> list = {0, 2, 3};
  const auto from_list = induced_subgraph(g, list);
  EXPECT_EQ(from_mask.graph.node_count(), from_list.graph.node_count());
  EXPECT_EQ(from_mask.graph.edge_count(), from_list.graph.edge_count());
  EXPECT_EQ(from_mask.original_id, from_list.original_id);
}

TEST(Subgraph, MaskSizeMustMatch) {
  const auto g = sample_graph();
  std::vector<bool> mask = {true, false};
  EXPECT_THROW(induced_subgraph(g, mask), std::invalid_argument);
}

TEST(Subgraph, FullMaskIsIdentity) {
  const auto g = sample_graph();
  std::vector<bool> mask(g.node_count(), true);
  const auto sub = induced_subgraph(g, mask);
  EXPECT_EQ(sub.graph.node_count(), g.node_count());
  EXPECT_EQ(sub.graph.edge_count(), g.edge_count());
  for (const Edge& e : g.edges()) EXPECT_TRUE(sub.graph.has_edge(e.from, e.to));
}

TEST(Subgraph, PreservesSelfLoops) {
  GraphBuilder b;
  b.add_edge(0, 0);
  b.add_edge(0, 1);
  const auto g = b.build(/*keep_self_loops=*/true);
  const std::vector<NodeId> keep = {0};
  const auto sub = induced_subgraph(g, keep);
  EXPECT_EQ(sub.graph.edge_count(), 1u);
  EXPECT_TRUE(sub.graph.has_edge(0, 0));
}

}  // namespace
}  // namespace gplus::graph
