#include <gtest/gtest.h>

#include "algo/bowtie.h"
#include "graph/builder.h"
#include "stats/descriptive.h"
#include "stats/rng.h"

namespace gplus {
namespace {

using graph::DiGraph;
using graph::GraphBuilder;
using graph::NodeId;

TEST(BowTie, ClassicShape) {
  // IN (0,1) -> core cycle (2,3,4) -> OUT (5,6); 7 disconnected.
  GraphBuilder b;
  b.add_edge(0, 2);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  b.add_edge(4, 2);
  b.add_edge(4, 5);
  b.add_edge(5, 6);
  b.ensure_node(7);
  const auto bt = algo::bow_tie_decomposition(b.build());
  EXPECT_EQ(bt.core, 3u);
  EXPECT_EQ(bt.in, 2u);
  EXPECT_EQ(bt.out, 2u);
  EXPECT_EQ(bt.other, 1u);
  EXPECT_EQ(bt.region[0], algo::BowTieRegion::kIn);
  EXPECT_EQ(bt.region[2], algo::BowTieRegion::kCore);
  EXPECT_EQ(bt.region[6], algo::BowTieRegion::kOut);
  EXPECT_EQ(bt.region[7], algo::BowTieRegion::kOther);
  EXPECT_DOUBLE_EQ(bt.core_fraction(8), 3.0 / 8.0);
}

TEST(BowTie, TendrilIsOther) {
  // Core (0,1); IN node 2; a tendril 3 hanging off the IN node (3 cannot
  // reach the core and the core cannot reach it).
  GraphBuilder b;
  b.add_reciprocal_edge(0, 1);
  b.add_edge(2, 0);
  b.add_edge(2, 3);
  const auto bt = algo::bow_tie_decomposition(b.build());
  EXPECT_EQ(bt.region[2], algo::BowTieRegion::kIn);
  EXPECT_EQ(bt.region[3], algo::BowTieRegion::kOther);
}

TEST(BowTie, FullyConnectedIsAllCore) {
  GraphBuilder b;
  for (NodeId u = 0; u < 6; ++u) b.add_edge(u, (u + 1) % 6);
  const auto bt = algo::bow_tie_decomposition(b.build());
  EXPECT_EQ(bt.core, 6u);
  EXPECT_EQ(bt.in + bt.out + bt.other, 0u);
}

TEST(BowTie, EmptyGraph) {
  const auto bt = algo::bow_tie_decomposition(DiGraph{});
  EXPECT_EQ(bt.core, 0u);
  EXPECT_DOUBLE_EQ(bt.core_fraction(0), 0.0);
}

TEST(BowTie, RegionsPartitionTheGraph) {
  GraphBuilder b;
  stats::Rng rng(5);
  for (int i = 0; i < 3000; ++i) {
    b.add_edge(static_cast<NodeId>(rng.next_below(800)),
               static_cast<NodeId>(rng.next_below(800)));
  }
  const auto g = b.build();
  const auto bt = algo::bow_tie_decomposition(g);
  EXPECT_EQ(bt.core + bt.in + bt.out + bt.other, g.node_count());
  EXPECT_GT(bt.core, 0u);
}

TEST(Gini, PerfectEqualityIsZero) {
  const std::vector<double> equal(50, 3.0);
  EXPECT_NEAR(stats::gini_coefficient(equal), 0.0, 1e-12);
}

TEST(Gini, ExtremeConcentrationApproachesOne) {
  std::vector<double> v(100, 0.0);
  v[7] = 1000.0;
  EXPECT_NEAR(stats::gini_coefficient(v), 0.99, 1e-9);
}

TEST(Gini, KnownSmallExample) {
  // {0, 1}: G = 1/2 exactly.
  const std::vector<double> v = {0.0, 1.0};
  EXPECT_NEAR(stats::gini_coefficient(v), 0.5, 1e-12);
}

TEST(Gini, ScaleInvariant) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 10.0};
  std::vector<double> b;
  for (double x : a) b.push_back(x * 37.5);
  EXPECT_NEAR(stats::gini_coefficient(a), stats::gini_coefficient(b), 1e-12);
}

TEST(Gini, Validation) {
  EXPECT_THROW(stats::gini_coefficient({}), std::invalid_argument);
  const std::vector<double> neg = {1.0, -2.0};
  EXPECT_THROW(stats::gini_coefficient(neg), std::invalid_argument);
  const std::vector<double> zeros = {0.0, 0.0};
  EXPECT_THROW(stats::gini_coefficient(zeros), std::invalid_argument);
}

}  // namespace
}  // namespace gplus
