#include <gtest/gtest.h>

#include "algo/kcore.h"
#include "algo/pagerank.h"
#include "graph/builder.h"
#include "stats/rng.h"

namespace gplus::algo {
namespace {

using graph::DiGraph;
using graph::GraphBuilder;
using graph::NodeId;

TEST(KCore, EmptyGraph) {
  const auto cores = k_core_decomposition(DiGraph{});
  EXPECT_TRUE(cores.coreness.empty());
  EXPECT_EQ(cores.degeneracy, 0u);
}

TEST(KCore, PathHasCorenessOne) {
  GraphBuilder b;
  for (NodeId u = 0; u + 1 < 10; ++u) b.add_edge(u, u + 1);
  const auto cores = k_core_decomposition(b.build());
  for (auto c : cores.coreness) EXPECT_EQ(c, 1u);
  EXPECT_EQ(cores.degeneracy, 1u);
}

TEST(KCore, CliqueWithTail) {
  // Directed 5-clique (coreness 4 undirected) plus a pendant chain.
  GraphBuilder b;
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = 0; v < 5; ++v) {
      if (u != v) b.add_edge(u, v);
    }
  }
  b.add_edge(5, 0);
  b.add_edge(6, 5);
  const auto cores = k_core_decomposition(b.build());
  for (NodeId u = 0; u < 5; ++u) EXPECT_EQ(cores.coreness[u], 4u) << u;
  EXPECT_EQ(cores.coreness[5], 1u);
  EXPECT_EQ(cores.coreness[6], 1u);
  EXPECT_EQ(cores.degeneracy, 4u);
  EXPECT_EQ(cores.core_size(4), 5u);
  EXPECT_EQ(cores.core_size(1), 7u);
  EXPECT_EQ(cores.core_size(5), 0u);
}

TEST(KCore, ReciprocalEdgesCountOnce) {
  // Mutual pair: undirected degree 1 each, not 2.
  GraphBuilder b;
  b.add_reciprocal_edge(0, 1);
  const auto cores = k_core_decomposition(b.build());
  EXPECT_EQ(cores.coreness[0], 1u);
  EXPECT_EQ(cores.coreness[1], 1u);
}

TEST(KCore, CorenessAtMostDegree) {
  GraphBuilder b;
  stats::Rng rng(5);
  for (int i = 0; i < 4000; ++i) {
    b.add_edge(static_cast<NodeId>(rng.next_below(600)),
               static_cast<NodeId>(rng.next_below(600)));
  }
  const auto g = b.build();
  const auto cores = k_core_decomposition(g);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    EXPECT_LE(cores.coreness[u], g.in_degree(u) + g.out_degree(u));
  }
  // core_size is monotone decreasing in k.
  for (std::uint32_t k = 1; k <= cores.degeneracy; ++k) {
    EXPECT_GE(cores.core_size(k - 1), cores.core_size(k));
  }
}

TEST(KCore, KCoreSubgraphHasMinDegreeK) {
  // Property: inside the k-core (k = degeneracy), every node has at least
  // k undirected neighbors that are also in the core.
  GraphBuilder b;
  stats::Rng rng(6);
  for (int i = 0; i < 3000; ++i) {
    b.add_edge(static_cast<NodeId>(rng.next_below(300)),
               static_cast<NodeId>(rng.next_below(300)));
  }
  const auto g = b.build();
  const auto cores = k_core_decomposition(g);
  const std::uint32_t k = cores.degeneracy;
  ASSERT_GT(k, 0u);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    if (cores.coreness[u] < k) continue;
    std::uint32_t inside = 0;
    for (NodeId v : g.out_neighbors(u)) inside += v != u && cores.coreness[v] >= k;
    for (NodeId v : g.in_neighbors(u)) {
      inside += v != u && cores.coreness[v] >= k && !g.has_edge(u, v);
    }
    EXPECT_GE(inside, k) << "node " << u;
  }
}

TEST(PageRank, UniformOnSymmetricRing) {
  GraphBuilder b;
  constexpr NodeId kN = 12;
  for (NodeId u = 0; u < kN; ++u) b.add_edge(u, (u + 1) % kN);
  const auto pr = pagerank(b.build());
  EXPECT_TRUE(pr.converged);
  for (double s : pr.score) EXPECT_NEAR(s, 1.0 / kN, 1e-9);
}

TEST(PageRank, ScoresSumToOne) {
  GraphBuilder b;
  stats::Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    b.add_edge(static_cast<NodeId>(rng.next_below(400)),
               static_cast<NodeId>(rng.next_below(400)));
  }
  b.ensure_node(450);  // dangling + isolated nodes included
  const auto pr = pagerank(b.build());
  double total = 0.0;
  for (double s : pr.score) {
    EXPECT_GE(s, 0.0);
    total += s;
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(PageRank, HubOutranksLeaves) {
  GraphBuilder b;
  for (NodeId v = 1; v <= 50; ++v) b.add_edge(v, 0);
  b.add_edge(0, 1);
  const auto pr = pagerank(b.build());
  for (NodeId v = 2; v <= 50; ++v) EXPECT_GT(pr.score[0], pr.score[v]);
  const auto top = top_by_pagerank(pr, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 0u);
  EXPECT_EQ(top[1], 1u);  // receives the hub's whole endorsement
}

TEST(PageRank, DanglingMassRedistributed) {
  // 0 -> 1, 1 dangles: without dangling handling, mass would leak.
  GraphBuilder b;
  b.add_edge(0, 1);
  const auto pr = pagerank(b.build());
  EXPECT_TRUE(pr.converged);
  EXPECT_NEAR(pr.score[0] + pr.score[1], 1.0, 1e-9);
  EXPECT_GT(pr.score[1], pr.score[0]);
}

TEST(PageRank, RejectsBadOptions) {
  GraphBuilder b;
  b.add_edge(0, 1);
  const auto g = b.build();
  PageRankOptions bad;
  bad.damping = 1.0;
  EXPECT_THROW(pagerank(g, bad), std::invalid_argument);
  PageRankOptions zero_iter;
  zero_iter.max_iterations = 0;
  EXPECT_THROW(pagerank(g, zero_iter), std::invalid_argument);
}

TEST(PageRank, TopByPagerankHandlesShortLists) {
  PageRankResult pr;
  pr.score = {0.2, 0.5, 0.3};
  const auto top = top_by_pagerank(pr, 10);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1u);
  EXPECT_EQ(top[1], 2u);
  EXPECT_EQ(top[2], 0u);
  EXPECT_TRUE(top_by_pagerank(PageRankResult{}, 5).empty());
}

}  // namespace
}  // namespace gplus::algo
