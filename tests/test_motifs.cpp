// Directed triad census: oracle fuzz, golden fixtures, sampling bounds,
// determinism.
//
// The oracle classifies each 3-node subgraph by explicit isomorphism
// against hand-written representative edge lists — an independent path
// from the engine's canonical mask table, so a table bug cannot cancel
// itself out.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "algo/intersect.h"
#include "algo/motifs.h"
#include "algo/rewire.h"
#include "core/dataset.h"
#include "core/parallel.h"
#include "graph/digraph.h"
#include "stats/rng.h"

namespace gplus {
namespace {

using algo::SampledTriadCensus;
using algo::TriadCensus;
using algo::TriadClass;
using algo::kTriadClassCount;
using graph::DiGraph;
using graph::Edge;
using graph::NodeId;

struct Arc {
  int from;
  int to;
};

// Hand-written representative of every class (statnet/Pajek pictures,
// nodes A=0, B=1, C=2), in M-A-N order. Written from the definitions,
// independent of src/algo/motifs.cpp's bit masks.
const std::array<std::vector<Arc>, kTriadClassCount> kClassArcs = {{
    {},                                                    // 003
    {{0, 1}},                                              // 012
    {{0, 1}, {1, 0}},                                      // 102
    {{1, 0}, {1, 2}},                                      // 021D  A←B→C
    {{0, 1}, {2, 1}},                                      // 021U  A→B←C
    {{0, 1}, {1, 2}},                                      // 021C  A→B→C
    {{0, 1}, {1, 0}, {2, 1}},                              // 111D  A↔B←C
    {{0, 1}, {1, 0}, {1, 2}},                              // 111U  A↔B→C
    {{0, 1}, {2, 1}, {0, 2}},                              // 030T
    {{1, 0}, {2, 1}, {0, 2}},                              // 030C
    {{0, 1}, {1, 0}, {1, 2}, {2, 1}},                      // 201
    {{1, 0}, {1, 2}, {0, 2}, {2, 0}},                      // 120D
    {{0, 1}, {2, 1}, {0, 2}, {2, 0}},                      // 120U
    {{0, 1}, {1, 2}, {0, 2}, {2, 0}},                      // 120C
    {{0, 1}, {1, 2}, {2, 1}, {0, 2}, {2, 0}},              // 210
    {{0, 1}, {1, 0}, {1, 2}, {2, 1}, {0, 2}, {2, 0}},      // 300
}};

constexpr int kPerms[6][3] = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
                              {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};

// 3x3 adjacency matrix of one representative.
std::array<std::array<bool, 3>, 3> arcs_matrix(const std::vector<Arc>& arcs) {
  std::array<std::array<bool, 3>, 3> m{};
  for (const Arc& a : arcs) m[a.from][a.to] = true;
  return m;
}

// Classifies the subgraph on (u, v, w) by brute-force isomorphism.
std::size_t oracle_class(const DiGraph& g, NodeId u, NodeId v, NodeId w) {
  const NodeId nodes[3] = {u, v, w};
  std::array<std::array<bool, 3>, 3> sub{};
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      if (i != j) sub[i][j] = g.has_edge(nodes[i], nodes[j]);
    }
  }
  for (std::size_t k = 0; k < kTriadClassCount; ++k) {
    const auto rep = arcs_matrix(kClassArcs[k]);
    for (const auto& p : kPerms) {
      bool match = true;
      for (int i = 0; i < 3 && match; ++i) {
        for (int j = 0; j < 3 && match; ++j) {
          if (i != j && sub[i][j] != rep[p[i]][p[j]]) match = false;
        }
      }
      if (match) return k;
    }
  }
  ADD_FAILURE() << "subgraph matched no class";
  return 0;
}

// O(n^3) reference census.
TriadCensus oracle_census(const DiGraph& g) {
  TriadCensus census;
  const auto n = static_cast<NodeId>(g.node_count());
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      for (NodeId w = v + 1; w < n; ++w) {
        ++census.counts[oracle_class(g, u, v, w)];
      }
    }
  }
  return census;
}

// Random digraph with tunable density and reciprocity bias.
DiGraph random_digraph(NodeId n, double density, double reciprocity,
                       std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<Edge> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const bool forward = rng.next_bool(density);
      if (forward) edges.push_back({u, v});
      const double back_p = forward ? reciprocity : density;
      if (rng.next_bool(back_p)) edges.push_back({v, u});
    }
  }
  return DiGraph::from_edges(n, edges);
}

DiGraph single_triad_graph(std::size_t cls) {
  std::vector<Edge> edges;
  for (const Arc& a : kClassArcs[cls]) {
    edges.push_back({static_cast<NodeId>(a.from), static_cast<NodeId>(a.to)});
  }
  return DiGraph::from_edges(3, edges);
}

TEST(TriadClassTable, NamesAndClosedSplit) {
  EXPECT_EQ(algo::triad_class_name(TriadClass::k003), "003");
  EXPECT_EQ(algo::triad_class_name(TriadClass::k021D), "021D");
  EXPECT_EQ(algo::triad_class_name(TriadClass::k300), "300");
  std::size_t closed = 0;
  for (std::size_t k = 0; k < kTriadClassCount; ++k) {
    if (algo::triad_class_closed(static_cast<TriadClass>(k))) ++closed;
  }
  EXPECT_EQ(closed, 7u);  // 030T 030C 120D 120U 120C 210 300
}

TEST(TriadClassTable, MaskOfEveryRepresentativeMatches) {
  // Build the arc mask of each hand-written representative and check the
  // engine's table maps it to the right class; bit layout per motifs.h.
  constexpr int kPairBit[3][3] = {{-1, 0, 2}, {1, -1, 4}, {3, 5, -1}};
  for (std::size_t k = 0; k < kTriadClassCount; ++k) {
    unsigned mask = 0;
    for (const Arc& a : kClassArcs[k]) mask |= 1U << kPairBit[a.from][a.to];
    EXPECT_EQ(algo::triad_class_of_mask(mask), static_cast<TriadClass>(k))
        << "class " << algo::triad_class_name(static_cast<TriadClass>(k));
  }
}

TEST(TriadCensusGolden, EmptyGraph) {
  const auto g = DiGraph::from_edges(5, {});
  const TriadCensus census = algo::triad_census(g);
  EXPECT_EQ(census[TriadClass::k003], 10u);  // C(5,3)
  EXPECT_EQ(census.total(), 10u);
  EXPECT_EQ(census.closed(), 0u);
  EXPECT_EQ(census.wedge_closure(), 0.0);
}

TEST(TriadCensusGolden, TinyAndDegenerateGraphs) {
  EXPECT_EQ(algo::triad_census(DiGraph()).total(), 0u);
  EXPECT_EQ(algo::triad_census(DiGraph::from_edges(2, {{Edge{0, 1}}})).total(),
            0u);
  // Self-loops are ignored by the census (no triad contains one).
  const std::vector<Edge> loops = {{0, 0}, {0, 1}, {1, 1}};
  const auto g = DiGraph::from_edges(3, loops, /*keep_self_loops=*/true);
  const TriadCensus census = algo::triad_census(g);
  EXPECT_EQ(census[TriadClass::k012], 1u);
  EXPECT_EQ(census.total(), 1u);
}

TEST(TriadCensusGolden, AllSixteenSingleTriadGraphs) {
  for (std::size_t k = 0; k < kTriadClassCount; ++k) {
    const TriadCensus census = algo::triad_census(single_triad_graph(k));
    for (std::size_t j = 0; j < kTriadClassCount; ++j) {
      EXPECT_EQ(census.counts[j], j == k ? 1u : 0u)
          << "graph " << algo::triad_class_name(static_cast<TriadClass>(k))
          << " slot " << algo::triad_class_name(static_cast<TriadClass>(j));
    }
  }
}

TEST(TriadCensusGolden, OutStarInStarCycleClique) {
  // Out-star: center 0 → 1..5. All wedges at the center are 021D.
  std::vector<Edge> star;
  for (NodeId v = 1; v <= 5; ++v) star.push_back({0, v});
  TriadCensus census = algo::triad_census(DiGraph::from_edges(6, star));
  EXPECT_EQ(census[TriadClass::k021D], 10u);  // C(5,2)
  EXPECT_EQ(census[TriadClass::k012], 0u);    // every third touches center
  EXPECT_EQ(census[TriadClass::k003], 10u);   // C(6,3) - 10

  // In-star flips every wedge to 021U.
  std::vector<Edge> in_star;
  for (NodeId v = 1; v <= 5; ++v) in_star.push_back({v, 0});
  census = algo::triad_census(DiGraph::from_edges(6, in_star));
  EXPECT_EQ(census[TriadClass::k021U], 10u);

  // Directed 3-cycle.
  census = algo::triad_census(
      DiGraph::from_edges(3, {{Edge{0, 1}, Edge{1, 2}, Edge{2, 0}}}));
  EXPECT_EQ(census[TriadClass::k030C], 1u);
  EXPECT_EQ(census.closed(), 1u);

  // Complete mutual K4: every triple is 300.
  std::vector<Edge> clique;
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = 0; v < 4; ++v) {
      if (u != v) clique.push_back({u, v});
    }
  }
  census = algo::triad_census(DiGraph::from_edges(4, clique));
  EXPECT_EQ(census[TriadClass::k300], 4u);  // C(4,3)
  EXPECT_DOUBLE_EQ(census.wedge_closure(), 1.0);
}

TEST(TriadCensusOracle, FuzzAcrossDensityAndReciprocity) {
  const NodeId sizes[] = {8, 16, 33, 64};
  const double densities[] = {0.05, 0.2, 0.5};
  const double reciprocities[] = {0.0, 0.5, 0.9};
  std::uint64_t seed = 1;
  for (const NodeId n : sizes) {
    for (const double d : densities) {
      for (const double r : reciprocities) {
        const DiGraph g = random_digraph(n, d, r, seed);
        const TriadCensus expected = oracle_census(g);
        const TriadCensus actual = algo::triad_census(g);
        EXPECT_EQ(actual, expected)
            << "n=" << n << " density=" << d << " reciprocity=" << r
            << " seed=" << seed;
        ++seed;
      }
    }
  }
}

TEST(TriadCensusDeterminism, ThreadCountInvariant) {
  const auto ds = core::make_standard_dataset(2000, 11);
  core::set_thread_count(1);
  const TriadCensus lane1 = algo::triad_census(ds.graph());
  core::set_thread_count(5);
  const TriadCensus lane5 = algo::triad_census(ds.graph());
  core::set_thread_count(0);
  EXPECT_EQ(lane1, lane5);
}

TEST(TriadCensusDeterminism, IntersectKernelInvariant) {
  const DiGraph g = random_digraph(200, 0.08, 0.5, 77);
  const TriadCensus baseline = algo::triad_census(g);
  for (std::size_t k = 0; k < algo::kIntersectKernelCount; ++k) {
    const auto kernel = static_cast<algo::IntersectKernel>(k);
    algo::set_default_intersect_kernel(kernel);
    const TriadCensus census = algo::triad_census(g);
    algo::set_default_intersect_kernel(algo::IntersectKernel::kAuto);
    EXPECT_EQ(census, baseline)
        << "kernel " << algo::intersect_kernel_name(kernel);
  }
}

class TriadSamplerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new core::Dataset(core::make_standard_dataset(3000, 9));
    exact_ = new TriadCensus(algo::triad_census(dataset_->graph()));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete exact_;
    dataset_ = nullptr;
    exact_ = nullptr;
  }
  static const core::Dataset& dataset() { return *dataset_; }
  static const TriadCensus& exact() { return *exact_; }

 private:
  static core::Dataset* dataset_;
  static TriadCensus* exact_;
};

core::Dataset* TriadSamplerTest::dataset_ = nullptr;
TriadCensus* TriadSamplerTest::exact_ = nullptr;

TEST_F(TriadSamplerTest, PinnedErrorBoundsPerSeed) {
  const double exact_closure = exact().wedge_closure();
  ASSERT_GT(exact_closure, 0.0);
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    algo::TriadSampleConfig config;
    config.samples = 60'000;
    config.seed = seed;
    const SampledTriadCensus est =
        algo::sample_triad_census(dataset().graph(), config);
    ASSERT_EQ(est.sampled, config.samples);
    // Closure estimate: within one point of the exact value, every seed.
    EXPECT_NEAR(est.closed_fraction, exact_closure, 0.01) << "seed " << seed;
    // Per-class estimates: within 10% relative on every class holding at
    // least 2% of the wedge mass (rarer classes get noisier).
    const double wedges = static_cast<double>(est.total_wedges);
    for (std::size_t k = 0; k < kTriadClassCount; ++k) {
      const auto cls = static_cast<TriadClass>(k);
      const double exact_count = static_cast<double>(exact().counts[k]);
      const double mass =
          exact_count * (algo::triad_class_closed(cls) ? 3.0 : 1.0) / wedges;
      if (cls == TriadClass::k003 || cls == TriadClass::k012 ||
          cls == TriadClass::k102 || mass < 0.02) {
        continue;
      }
      EXPECT_NEAR(est.estimated_counts[k], exact_count, exact_count * 0.10)
          << "seed " << seed << " class "
          << algo::triad_class_name(cls);
    }
  }
}

TEST_F(TriadSamplerTest, WedgePopulationMatchesCensus) {
  algo::TriadSampleConfig config;
  config.samples = 1'000;
  const SampledTriadCensus est =
      algo::sample_triad_census(dataset().graph(), config);
  // Σ C(d,2) must equal the census's wedge population: 3·closed + open.
  EXPECT_EQ(est.total_wedges, 3 * exact().closed() + exact().open_wedges());
}

TEST_F(TriadSamplerTest, BitIdenticalAcrossThreadCounts) {
  algo::TriadSampleConfig config;
  config.samples = 20'000;
  config.seed = 4;
  core::set_thread_count(1);
  const SampledTriadCensus lane1 =
      algo::sample_triad_census(dataset().graph(), config);
  core::set_thread_count(6);
  const SampledTriadCensus lane6 =
      algo::sample_triad_census(dataset().graph(), config);
  core::set_thread_count(0);
  EXPECT_EQ(lane1.closed_fraction, lane6.closed_fraction);
  for (std::size_t k = 0; k < kTriadClassCount; ++k) {
    EXPECT_EQ(lane1.estimated_counts[k], lane6.estimated_counts[k]);
    EXPECT_EQ(lane1.wedge_share[k], lane6.wedge_share[k]);
  }
}

TEST(TriadSamplerEdgeCases, EmptyAndWedgelessGraphs) {
  algo::TriadSampleConfig config;
  config.samples = 100;
  const SampledTriadCensus empty =
      algo::sample_triad_census(DiGraph::from_edges(4, {}), config);
  EXPECT_EQ(empty.total_wedges, 0u);
  EXPECT_EQ(empty.sampled, 0u);
  // A single mutual pair has degree-1 endpoints only: no wedges.
  const SampledTriadCensus pair = algo::sample_triad_census(
      DiGraph::from_edges(4, {{Edge{0, 1}, Edge{1, 0}}}), config);
  EXPECT_EQ(pair.total_wedges, 0u);
}

TEST(MotifCalibration, BitIdenticalAcrossThreadCounts) {
  const DiGraph g = random_digraph(300, 0.03, 0.2, 31);
  algo::RewireObjective objective;
  objective.target_clustering = 0.15;
  objective.target_reciprocity = 0.5;
  algo::CalibrateConfig config;
  config.seed = 5;
  config.max_rounds = 4;
  config.clustering_sample = 0;  // exact measurement
  config.swaps_per_round_per_edge = 0.1;

  core::set_thread_count(1);
  const algo::CalibrationResult lane1 =
      algo::calibrate_to_profile(g, objective, config);
  core::set_thread_count(4);
  const algo::CalibrationResult lane4 =
      algo::calibrate_to_profile(g, objective, config);
  core::set_thread_count(0);

  EXPECT_EQ(lane1.graph.edges(), lane4.graph.edges());
  EXPECT_EQ(lane1.final_error, lane4.final_error);
  EXPECT_EQ(lane1.round_errors, lane4.round_errors);
  EXPECT_EQ(lane1.swaps_applied, lane4.swaps_applied);
}

}  // namespace
}  // namespace gplus
