#include "synth/graph_gen.h"

#include <gtest/gtest.h>

#include "algo/reciprocity.h"
#include "algo/scc.h"
#include "geo/world.h"
#include "stats/rng.h"

namespace gplus::synth {
namespace {

// Shared medium network for the statistical assertions (generation costs a
// couple of seconds; do it once per process).
class GraphGenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    population_ = new PopulationModel();
    world_ = new geo::World();
    net_ = new GeneratedNetwork(
        generate_network(google_plus_preset(40'000, 42), *population_, *world_));
  }
  static void TearDownTestSuite() {
    delete net_;
    delete world_;
    delete population_;
    net_ = nullptr;
    world_ = nullptr;
    population_ = nullptr;
  }

  static PopulationModel* population_;
  static geo::World* world_;
  static GeneratedNetwork* net_;
};

PopulationModel* GraphGenTest::population_ = nullptr;
geo::World* GraphGenTest::world_ = nullptr;
GeneratedNetwork* GraphGenTest::net_ = nullptr;

TEST(SampleTruncatedPareto, BoundsAndTail) {
  stats::Rng rng(1);
  for (int i = 0; i < 10'000; ++i) {
    const auto v = sample_truncated_pareto(2.0, 1.5, 100, rng);
    EXPECT_GE(v, 2u);
    EXPECT_LE(v, 100u);
  }
  // Uncapped draws exceed any fixed cap eventually.
  bool saw_large = false;
  for (int i = 0; i < 200'000 && !saw_large; ++i) {
    saw_large = sample_truncated_pareto(1.0, 1.0, 0, rng) > 10'000;
  }
  EXPECT_TRUE(saw_large);
}

TEST(SampleTruncatedPareto, RejectsBadArguments) {
  stats::Rng rng(1);
  EXPECT_THROW(sample_truncated_pareto(0.0, 1.0, 0, rng), std::invalid_argument);
  EXPECT_THROW(sample_truncated_pareto(1.0, 0.0, 0, rng), std::invalid_argument);
}

TEST_F(GraphGenTest, ShapesAreConsistent) {
  const std::size_t n = net_->node_count();
  EXPECT_EQ(n, 40'000u);
  EXPECT_EQ(net_->graph.node_count(), n);
  EXPECT_EQ(net_->country.size(), n);
  EXPECT_EQ(net_->city.size(), n);
  EXPECT_EQ(net_->location.size(), n);
  EXPECT_EQ(net_->celebrity.size(), n);
  EXPECT_EQ(net_->fitness.size(), n);
}

TEST_F(GraphGenTest, NoSelfLoops) {
  for (graph::NodeId u = 0; u < net_->graph.node_count(); ++u) {
    EXPECT_FALSE(net_->graph.has_edge(u, u));
  }
}

TEST_F(GraphGenTest, MeanDegreeNearTable4) {
  // Paper Table 4: 16.4; the band allows for scale and dedup effects.
  EXPECT_GT(net_->graph.mean_degree(), 12.0);
  EXPECT_LT(net_->graph.mean_degree(), 21.0);
}

TEST_F(GraphGenTest, GlobalReciprocityNearPaper) {
  const double r = algo::global_reciprocity(net_->graph);
  // Paper: 32%.
  EXPECT_GT(r, 0.25);
  EXPECT_LT(r, 0.45);
}

TEST_F(GraphGenTest, MostUsersHighRelationReciprocity) {
  const auto rr = algo::relation_reciprocities(net_->graph);
  std::size_t high = 0;
  for (double r : rr) high += r > 0.6;
  // Paper Fig 4a: more than 60% of users above 0.6. Allow slack at 40k scale.
  EXPECT_GT(static_cast<double>(high) / rr.size(), 0.5);
}

TEST_F(GraphGenTest, GiantSccAroundSeventyPercent) {
  const auto sccs = algo::strongly_connected_components(net_->graph);
  EXPECT_GT(sccs.giant_fraction(), 0.6);
  EXPECT_LT(sccs.giant_fraction(), 0.9);
}

TEST_F(GraphGenTest, CelebritiesExistAndDominateInDegree) {
  std::size_t celeb_count = 0;
  std::uint64_t best_ordinary = 0, best_celebrity = 0;
  for (graph::NodeId u = 0; u < net_->graph.node_count(); ++u) {
    const auto in = net_->graph.in_degree(u);
    if (net_->celebrity[u]) {
      ++celeb_count;
      best_celebrity = std::max<std::uint64_t>(best_celebrity, in);
    } else {
      best_ordinary = std::max<std::uint64_t>(best_ordinary, in);
    }
  }
  EXPECT_NEAR(static_cast<double>(celeb_count),
              40'000 * GraphGenConfig{}.celebrity_fraction, 3.0);
  EXPECT_GT(best_celebrity, best_ordinary);
}

TEST_F(GraphGenTest, CountriesFollowPopulationShares) {
  std::vector<std::size_t> counts(geo::country_count(), 0);
  for (auto c : net_->country) ++counts[c];
  const auto us = *geo::find_country("US");
  EXPECT_NEAR(static_cast<double>(counts[us]) / net_->node_count(), 0.3138,
              0.02);
}

TEST_F(GraphGenTest, DormantUsersHaveNoOutEdges) {
  // ~25% of accounts never add anyone.
  std::size_t sinks = 0;
  for (graph::NodeId u = 0; u < net_->graph.node_count(); ++u) {
    sinks += net_->graph.out_degree(u) == 0;
  }
  const double frac = static_cast<double>(sinks) / net_->node_count();
  EXPECT_GT(frac, 0.15);
  EXPECT_LT(frac, 0.35);
}

TEST_F(GraphGenTest, EdgesPreferSameCountry) {
  std::uint64_t same = 0, total = 0;
  for (graph::NodeId u = 0; u < net_->graph.node_count(); ++u) {
    for (graph::NodeId v : net_->graph.out_neighbors(u)) {
      ++total;
      same += net_->country[u] == net_->country[v];
    }
  }
  const double frac = static_cast<double>(same) / static_cast<double>(total);
  // Fig 10: most countries are inward-looking; global self-link mass ~0.7.
  EXPECT_GT(frac, 0.55);
  EXPECT_LT(frac, 0.9);
}

TEST(GraphGen, DeterministicForSameSeed) {
  const PopulationModel population;
  const geo::World world;
  const auto a = generate_network(google_plus_preset(3000, 9), population, world);
  const auto b = generate_network(google_plus_preset(3000, 9), population, world);
  EXPECT_EQ(a.graph.edge_count(), b.graph.edge_count());
  EXPECT_EQ(a.country, b.country);
  EXPECT_EQ(a.celebrity, b.celebrity);
  for (graph::NodeId u = 0; u < 3000; ++u) {
    ASSERT_EQ(a.graph.out_degree(u), b.graph.out_degree(u)) << u;
  }
}

TEST(GraphGen, SeedsChangeTheGraph) {
  const PopulationModel population;
  const geo::World world;
  const auto a = generate_network(google_plus_preset(3000, 1), population, world);
  const auto b = generate_network(google_plus_preset(3000, 2), population, world);
  // Different seeds should differ in edge structure almost surely.
  bool differs = a.graph.edge_count() != b.graph.edge_count();
  for (graph::NodeId u = 0; !differs && u < 3000; ++u) {
    differs = a.graph.out_degree(u) != b.graph.out_degree(u);
  }
  EXPECT_TRUE(differs);
}

TEST(GraphGen, OutDegreeCapEnforced) {
  GraphGenConfig config = google_plus_preset(8000, 3);
  config.out_degree_cap = 50;
  config.celebrity_fraction = 0.0;  // nobody is exempt
  const PopulationModel population;
  const geo::World world;
  const auto net = generate_network(config, population, world);
  for (graph::NodeId u = 0; u < net.graph.node_count(); ++u) {
    EXPECT_LE(net.graph.out_degree(u), 50u);
  }
}

TEST(GraphGen, CelebritiesExemptFromCap) {
  GraphGenConfig config = google_plus_preset(8000, 4);
  config.out_degree_cap = 30;
  config.celebrity_fraction = 0.01;
  const PopulationModel population;
  const geo::World world;
  const auto net = generate_network(config, population, world);
  bool celebrity_over_cap = false;
  for (graph::NodeId u = 0; u < net.graph.node_count(); ++u) {
    if (!net.celebrity[u]) {
      EXPECT_LE(net.graph.out_degree(u), 30u);
    } else {
      celebrity_over_cap |= net.graph.out_degree(u) > 30u;
    }
  }
  EXPECT_TRUE(celebrity_over_cap);
}

TEST(GraphGen, GeoMixingZeroKeepsEdgesDomestic) {
  GraphGenConfig config = google_plus_preset(5000, 5);
  config.geo_mixing = 0.0;
  const PopulationModel population;
  const geo::World world;
  const auto net = generate_network(config, population, world);
  for (graph::NodeId u = 0; u < net.graph.node_count(); ++u) {
    for (graph::NodeId v : net.graph.out_neighbors(u)) {
      EXPECT_EQ(net.country[u], net.country[v]);
    }
  }
}

TEST(GraphGen, TwitterPresetLessReciprocalThanGooglePlus) {
  const PopulationModel population;
  const geo::World world;
  const auto gplus =
      generate_network(google_plus_preset(20'000, 6), population, world);
  const auto twitter =
      generate_network(twitter_like_preset(20'000, 6), population, world);
  EXPECT_LT(algo::global_reciprocity(twitter.graph) + 0.05,
            algo::global_reciprocity(gplus.graph));
}

TEST(GraphGen, FacebookPresetIsFullyReciprocal) {
  const PopulationModel population;
  const geo::World world;
  const auto fb =
      generate_network(facebook_like_preset(10'000, 7), population, world);
  EXPECT_GT(algo::global_reciprocity(fb.graph), 0.95);
}

TEST(GraphGen, RejectsDegenerateConfigs) {
  const PopulationModel population;
  const geo::World world;
  GraphGenConfig tiny;
  tiny.node_count = 1;
  EXPECT_THROW(generate_network(tiny, population, world), std::invalid_argument);
  GraphGenConfig bad = google_plus_preset(100, 1);
  bad.celebrity_fraction = 1.5;
  EXPECT_THROW(generate_network(bad, population, world), std::invalid_argument);
}

TEST(GraphGen, SmallNetworksStillConnectSomewhat) {
  const PopulationModel population;
  const geo::World world;
  const auto net = generate_network(google_plus_preset(500, 8), population, world);
  EXPECT_GT(net.graph.edge_count(), 500u);
}

}  // namespace
}  // namespace gplus::synth
