#include "synth/profile_gen.h"

#include <gtest/gtest.h>

#include <vector>

namespace gplus::synth {
namespace {

// One shared batch of generated profiles for the statistical assertions.
class ProfileGenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    population_ = new PopulationModel();
    generator_ = new ProfileGenerator(ProfileGenConfig{}, *population_);
    profiles_ = new std::vector<Profile>();
    stats::Rng rng(77);
    profiles_->reserve(kUsers);
    for (std::size_t i = 0; i < kUsers; ++i) {
      const geo::CountryId c = population_->sample_country(rng);
      profiles_->push_back(generator_->generate(c, false, {0, 0}, rng));
    }
  }
  static void TearDownTestSuite() {
    delete profiles_;
    delete generator_;
    delete population_;
    profiles_ = nullptr;
    generator_ = nullptr;
    population_ = nullptr;
  }

  static double shared_fraction(Attribute a) {
    std::size_t n = 0;
    for (const auto& p : *profiles_) n += p.shared.test(a);
    return static_cast<double>(n) / static_cast<double>(profiles_->size());
  }

  static constexpr std::size_t kUsers = 120'000;
  static PopulationModel* population_;
  static ProfileGenerator* generator_;
  static std::vector<Profile>* profiles_;
};

PopulationModel* ProfileGenTest::population_ = nullptr;
ProfileGenerator* ProfileGenTest::generator_ = nullptr;
std::vector<Profile>* ProfileGenTest::profiles_ = nullptr;

TEST_F(ProfileGenTest, NameAlwaysShared) {
  EXPECT_DOUBLE_EQ(shared_fraction(Attribute::kName), 1.0);
}

TEST_F(ProfileGenTest, Table2MarginalsWithinTolerance) {
  // The openness tilt must preserve the global base rates (Table 2).
  struct Row {
    Attribute a;
    double expected;
    double tol;
  };
  const Row rows[] = {
      {Attribute::kGender, 0.9767, 0.02},
      {Attribute::kEducation, 0.2711, 0.03},
      {Attribute::kPlacesLived, 0.2675, 0.03},
      {Attribute::kEmployment, 0.2147, 0.03},
      {Attribute::kPhrase, 0.1479, 0.02},
      {Attribute::kOccupation, 0.1327, 0.02},
      {Attribute::kIntroduction, 0.0780, 0.015},
      {Attribute::kRelationship, 0.0431, 0.01},
      {Attribute::kLookingFor, 0.0274, 0.01},
  };
  for (const Row& row : rows) {
    EXPECT_NEAR(shared_fraction(row.a), row.expected, row.tol)
        << attribute_name(row.a);
  }
}

TEST_F(ProfileGenTest, TelUserRateNearPaperValue) {
  std::size_t tel = 0;
  for (const auto& p : *profiles_) tel += p.is_tel_user();
  const double rate = static_cast<double>(tel) / profiles_->size();
  // Paper: 0.26% of users share a phone number.
  EXPECT_NEAR(rate, 0.0026, 0.0015);
  EXPECT_GT(tel, 50u);  // enough tel-users for the cohort tests below
}

TEST_F(ProfileGenTest, GenderMarginalsMatchTable3) {
  std::array<std::size_t, kGenderCount> counts{};
  for (const auto& p : *profiles_) ++counts[static_cast<std::size_t>(p.gender)];
  const auto n = static_cast<double>(profiles_->size());
  EXPECT_NEAR(counts[0] / n, 0.6765, 0.01);
  EXPECT_NEAR(counts[1] / n, 0.3146, 0.01);
  EXPECT_NEAR(counts[2] / n, 0.0089, 0.005);
}

TEST_F(ProfileGenTest, RelationshipMarginalsMatchTable3) {
  std::array<std::size_t, kRelationshipCount> counts{};
  for (const auto& p : *profiles_) {
    ++counts[static_cast<std::size_t>(p.relationship)];
  }
  const auto n = static_cast<double>(profiles_->size());
  EXPECT_NEAR(counts[static_cast<std::size_t>(Relationship::kSingle)] / n,
              0.4282, 0.01);
  EXPECT_NEAR(counts[static_cast<std::size_t>(Relationship::kMarried)] / n,
              0.2659, 0.01);
  EXPECT_NEAR(counts[static_cast<std::size_t>(Relationship::kCivilUnion)] / n,
              0.0039, 0.003);
}

TEST_F(ProfileGenTest, TelUsersSkewMale) {
  std::size_t tel_total = 0, tel_male = 0, male = 0;
  for (const auto& p : *profiles_) {
    male += p.gender == Gender::kMale;
    if (!p.is_tel_user()) continue;
    ++tel_total;
    tel_male += p.gender == Gender::kMale;
  }
  ASSERT_GT(tel_total, 0u);
  const double male_share = static_cast<double>(male) / profiles_->size();
  const double tel_male_share = static_cast<double>(tel_male) / tel_total;
  // Paper: 86% of tel-users are male vs 68% overall.
  EXPECT_GT(tel_male_share, male_share + 0.08);
}

TEST_F(ProfileGenTest, TelUsersSkewSingle) {
  std::size_t tel_total = 0, tel_single = 0;
  for (const auto& p : *profiles_) {
    if (!p.is_tel_user()) continue;
    ++tel_total;
    tel_single += p.relationship == Relationship::kSingle;
  }
  ASSERT_GT(tel_total, 0u);
  // Paper: 57% of tel-users single vs 43% overall.
  EXPECT_GT(static_cast<double>(tel_single) / tel_total, 0.47);
}

TEST_F(ProfileGenTest, TelUsersShareMoreFields) {
  const std::uint32_t exclude =
      AttributeMask::bit(Attribute::kWorkContact) |
      AttributeMask::bit(Attribute::kHomeContact);
  double tel_sum = 0.0, all_sum = 0.0;
  std::size_t tel_n = 0;
  for (const auto& p : *profiles_) {
    const int fields = p.shared.count(exclude);
    all_sum += fields;
    if (p.is_tel_user()) {
      tel_sum += fields;
      ++tel_n;
    }
  }
  ASSERT_GT(tel_n, 0u);
  const double tel_mean = tel_sum / static_cast<double>(tel_n);
  const double all_mean = all_sum / static_cast<double>(profiles_->size());
  // Fig 2: the tel-user CCDF dominates; the mean gap is large.
  EXPECT_GT(tel_mean, all_mean + 1.5);
}

TEST_F(ProfileGenTest, OpenCountriesShareMoreFields) {
  const auto id_country = *geo::find_country("ID");
  const auto de = *geo::find_country("DE");
  double id_sum = 0.0, de_sum = 0.0;
  std::size_t id_n = 0, de_n = 0;
  for (const auto& p : *profiles_) {
    if (p.country == id_country) {
      id_sum += p.shared.count();
      ++id_n;
    } else if (p.country == de) {
      de_sum += p.shared.count();
      ++de_n;
    }
  }
  ASSERT_GT(id_n, 100u);
  ASSERT_GT(de_n, 100u);
  // Fig 8: Indonesia shares more than Germany.
  EXPECT_GT(id_sum / id_n, de_sum / de_n + 0.3);
}

TEST_F(ProfileGenTest, IndiaOverrepresentedAmongTelUsers) {
  const auto in_country = *geo::find_country("IN");
  std::size_t in_users = 0, tel_users = 0, in_tel = 0;
  for (const auto& p : *profiles_) {
    const bool in = p.country == in_country;
    in_users += in;
    if (p.is_tel_user()) {
      ++tel_users;
      in_tel += in;
    }
  }
  ASSERT_GT(tel_users, 0u);
  const double in_share = static_cast<double>(in_users) / profiles_->size();
  const double in_tel_share = static_cast<double>(in_tel) / tel_users;
  // Paper Table 3: India doubles its share among tel-users.
  EXPECT_GT(in_tel_share, in_share * 1.3);
}

TEST(ProfileGenerator, CelebrityProfilesAreOpen) {
  const PopulationModel population;
  const ProfileGenerator generator(ProfileGenConfig{}, population);
  stats::Rng rng(5);
  const auto us = *geo::find_country("US");
  double celeb_fields = 0.0, ordinary_fields = 0.0;
  constexpr int kDraws = 3000;
  for (int i = 0; i < kDraws; ++i) {
    celeb_fields += generator.generate(us, true, {0, 0}, rng).shared.count();
    ordinary_fields += generator.generate(us, false, {0, 0}, rng).shared.count();
  }
  EXPECT_GT(celeb_fields / kDraws, ordinary_fields / kDraws + 2.0);
}

TEST(ProfileGenerator, DeterministicForSameSeedStream) {
  const PopulationModel population;
  const ProfileGenerator generator(ProfileGenConfig{}, population);
  stats::Rng a(9), b(9);
  for (int i = 0; i < 100; ++i) {
    const auto pa = generator.generate(0, false, {1, 2}, a);
    const auto pb = generator.generate(0, false, {1, 2}, b);
    EXPECT_EQ(pa.shared, pb.shared);
    EXPECT_EQ(pa.gender, pb.gender);
    EXPECT_EQ(pa.relationship, pb.relationship);
    EXPECT_EQ(pa.occupation, pb.occupation);
  }
}

TEST(ProfileGenerator, TiltIsMonotoneInOpenness) {
  const PopulationModel population;
  const ProfileGenerator generator(ProfileGenConfig{}, population);
  EXPECT_LT(generator.disclosure_tilt(0.2), generator.disclosure_tilt(0.8));
  EXPECT_LT(generator.tel_tilt(0.2), generator.tel_tilt(0.8));
  // Tel tilt is sharper than the generic disclosure tilt.
  EXPECT_GT(generator.tel_tilt(0.9) / generator.tel_tilt(0.5),
            generator.disclosure_tilt(0.9) / generator.disclosure_tilt(0.5));
}

TEST(ProfileGenerator, BaseRateTablesMatchPaper) {
  EXPECT_DOUBLE_EQ(attribute_base_rate(Attribute::kName), 1.0);
  EXPECT_DOUBLE_EQ(attribute_base_rate(Attribute::kGender), 0.9767);
  EXPECT_DOUBLE_EQ(attribute_base_rate(Attribute::kPlacesLived), 0.2675);
  EXPECT_DOUBLE_EQ(gender_base_share(Gender::kMale), 0.6765);
  EXPECT_DOUBLE_EQ(relationship_base_share(Relationship::kSingle), 0.4282);
  EXPECT_GT(tel_gender_multiplier(Gender::kMale), 1.0);
  EXPECT_LT(tel_gender_multiplier(Gender::kFemale), 0.5);
  EXPECT_GT(tel_relationship_multiplier(Relationship::kOpenRelationship), 1.5);
  EXPECT_LT(tel_relationship_multiplier(Relationship::kInRelationship), 0.7);
}

}  // namespace
}  // namespace gplus::synth
