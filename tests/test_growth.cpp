#include "evolve/growth.h"

#include <gtest/gtest.h>

namespace gplus::evolve {
namespace {

// One shared simulation: construction is the expensive part.
class GrowthTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GrowthConfig config;
    config.final_node_count = 20'000;
    sim_ = new GrowthSimulation(config);
  }
  static void TearDownTestSuite() {
    delete sim_;
    sim_ = nullptr;
  }
  static GrowthSimulation* sim_;
};

GrowthSimulation* GrowthTest::sim_ = nullptr;

TEST_F(GrowthTest, RegistrationCurveIsMonotoneAndComplete) {
  EXPECT_EQ(sim_->node_count_at(0), 0u);
  for (int d = 1; d <= sim_->days(); ++d) {
    EXPECT_GE(sim_->node_count_at(d), sim_->node_count_at(d - 1));
  }
  EXPECT_EQ(sim_->node_count_at(sim_->days()), 20'000u);
}

TEST_F(GrowthTest, JoinDaysAlignWithCurve) {
  const auto& joins = sim_->join_days();
  ASSERT_EQ(joins.size(), 20'000u);
  for (std::size_t u = 1; u < joins.size(); ++u) {
    EXPECT_LE(joins[u - 1], joins[u]);  // ids assigned in join order
  }
  for (int d = 1; d <= sim_->days(); ++d) {
    // node_count_at(d) users have join day <= d.
    const auto count = sim_->node_count_at(d);
    if (count > 0) EXPECT_LE(joins[count - 1], d);
    if (count < joins.size()) EXPECT_GT(joins[count], d);
  }
}

TEST_F(GrowthTest, OpenSignupCreatesAVisibleTransition) {
  const auto curve = adoption_curve(*sim_);
  // The detected transition lands at the open-signup day (±2 for
  // rounding of the two curve pieces).
  EXPECT_NEAR(curve.transition_day, sim_->config().invite_only_days + 1, 2.0);
  // Invite-phase growth is tiny compared to the open-phase peak.
  EXPECT_GT(curve.daily_new[static_cast<std::size_t>(curve.peak_day)],
            10 * curve.daily_new[static_cast<std::size_t>(
                     sim_->config().invite_only_days / 2)]);
  EXPECT_GT(curve.peak_day, sim_->config().invite_only_days);
}

TEST_F(GrowthTest, EdgesOnlyBetweenJoinedUsers) {
  for (int day : {30, 90, 120, 180}) {
    const auto g = sim_->snapshot(day);
    EXPECT_EQ(g.node_count(), sim_->node_count_at(day));
    EXPECT_EQ(g.edge_count(), sim_->edge_count_at(day));
  }
}

TEST_F(GrowthTest, SnapshotsAreCumulative) {
  const auto early = sim_->snapshot(60);
  const auto late = sim_->snapshot(180);
  EXPECT_LE(early.edge_count(), late.edge_count());
  // Every early edge survives into the late snapshot.
  for (const auto& e : early.edges()) {
    EXPECT_TRUE(late.has_edge(e.from, e.to));
  }
}

TEST_F(GrowthTest, DensificationLawHolds) {
  stats::Rng rng(1);
  const std::vector<int> days = {40, 70, 95, 110, 130, 150, 180};
  const auto series = measure_growth(*sim_, days, 60, rng);
  ASSERT_EQ(series.size(), days.size());
  const auto fit = densification_fit(series);
  // Leskovec et al.: densification exponent strictly above 1 (and below 2).
  EXPECT_GT(fit.slope, 1.0);
  EXPECT_LT(fit.slope, 2.0);
  EXPECT_GT(fit.r_squared, 0.9);
  // Mean degree grows over time.
  EXPECT_GT(series.back().mean_degree, series.front().mean_degree);
}

TEST_F(GrowthTest, EffectiveDiameterDoesNotGrow) {
  stats::Rng rng(2);
  const std::vector<int> days = {60, 180};
  const auto series = measure_growth(*sim_, days, 80, rng);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_GT(series[0].effective_diameter, 0.0);
  // Non-growing effective diameter ([28]): while the network grows ~5x,
  // the 90th-percentile distance stays put (tolerance one hop for
  // sampling noise) instead of growing like log n would suggest.
  EXPECT_LE(series[1].effective_diameter, series[0].effective_diameter + 1.0);
}

TEST_F(GrowthTest, GiantComponentEmerges) {
  stats::Rng rng(3);
  const auto series = measure_growth(*sim_, {180}, 40, rng);
  EXPECT_GT(series[0].giant_wcc_fraction, 0.8);
}

TEST(Growth, DeterministicForSameSeed) {
  GrowthConfig config;
  config.final_node_count = 2'000;
  const GrowthSimulation a(config);
  const GrowthSimulation b(config);
  EXPECT_EQ(a.edge_count_at(config.days), b.edge_count_at(config.days));
  EXPECT_EQ(a.join_days(), b.join_days());
}

TEST(Growth, RejectsBadConfigs) {
  GrowthConfig bad;
  bad.final_node_count = 10;  // too small
  EXPECT_THROW(GrowthSimulation{bad}, std::invalid_argument);
  GrowthConfig bad_days;
  bad_days.days = 1;
  EXPECT_THROW(GrowthSimulation{bad_days}, std::invalid_argument);
  GrowthConfig bad_invite;
  bad_invite.invite_only_days = 200;
  EXPECT_THROW(GrowthSimulation{bad_invite}, std::invalid_argument);
  GrowthConfig bad_share;
  bad_share.invite_phase_share = 0.0;
  EXPECT_THROW(GrowthSimulation{bad_share}, std::invalid_argument);
}

TEST(Growth, SnapshotDayValidation) {
  GrowthConfig config;
  config.final_node_count = 1'000;
  const GrowthSimulation sim(config);
  EXPECT_THROW(sim.snapshot(-1), std::invalid_argument);
  EXPECT_THROW(sim.snapshot(config.days + 1), std::invalid_argument);
  EXPECT_NO_THROW(sim.snapshot(0));
}

TEST(Growth, CapIsRespected) {
  GrowthConfig config;
  config.final_node_count = 3'000;
  config.out_degree_cap = 40;
  const GrowthSimulation sim(config);
  const auto g = sim.snapshot(config.days);
  for (graph::NodeId u = 0; u < g.node_count(); ++u) {
    EXPECT_LE(g.out_degree(u), 40u);
  }
}

TEST(Growth, DensificationFitRejectsDegenerateSeries) {
  std::vector<GrowthMetrics> empty;
  EXPECT_THROW(densification_fit(empty), std::invalid_argument);
}

}  // namespace
}  // namespace gplus::evolve
