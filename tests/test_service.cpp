#include "service/service.h"

#include <gtest/gtest.h>

#include <tuple>

#include "graph/builder.h"

namespace gplus::service {
namespace {

using graph::GraphBuilder;
using graph::NodeId;

// Fixture: star service where node 0 is followed by nodes 1..N.
class ServiceTest : public ::testing::Test {
 protected:
  void build(NodeId followers, ServiceConfig config) {
    GraphBuilder b;
    for (NodeId v = 1; v <= followers; ++v) b.add_edge(v, 0);
    b.add_edge(0, 1);  // node 0 follows node 1
    graph_ = b.build();
    profiles_.assign(graph_.node_count(), synth::Profile{});
    service_.emplace(&graph_, profiles_, config);
  }

  graph::DiGraph graph_;
  std::vector<synth::Profile> profiles_;
  std::optional<SocialService> service_;
};

TEST_F(ServiceTest, ProfilePageShowsTrueTotals) {
  build(12, ServiceConfig{});
  const auto page = service_->fetch_profile(0);
  EXPECT_EQ(page.id, 0u);
  EXPECT_EQ(page.have_in_circles_total, 12u);
  EXPECT_EQ(page.in_their_circles_total, 1u);
  EXPECT_TRUE(page.lists_public);
}

TEST_F(ServiceTest, PrivacyFiltersRestrictedFields) {
  build(3, ServiceConfig{});
  profiles_[0].gender = synth::Gender::kFemale;
  profiles_[0].relationship = synth::Relationship::kMarried;
  profiles_[0].occupation = synth::Occupation::kJournalist;
  profiles_[0].country = 0;

  // Nothing shared: all optionals empty.
  auto page = service_->fetch_profile(0);
  EXPECT_FALSE(page.gender.has_value());
  EXPECT_FALSE(page.relationship.has_value());
  EXPECT_FALSE(page.occupation.has_value());
  EXPECT_FALSE(page.country.has_value());

  profiles_[0].shared.set(synth::Attribute::kGender);
  profiles_[0].shared.set(synth::Attribute::kOccupation);
  page = service_->fetch_profile(0);
  ASSERT_TRUE(page.gender.has_value());
  EXPECT_EQ(*page.gender, synth::Gender::kFemale);
  EXPECT_FALSE(page.relationship.has_value());
  ASSERT_TRUE(page.occupation.has_value());
  EXPECT_EQ(*page.occupation, synth::Occupation::kJournalist);
  // Country needs the Places-lived field.
  EXPECT_FALSE(page.country.has_value());
  profiles_[0].shared.set(synth::Attribute::kPlacesLived);
  page = service_->fetch_profile(0);
  ASSERT_TRUE(page.country.has_value());
  EXPECT_EQ(*page.country, 0u);
}

TEST_F(ServiceTest, ListPagination) {
  ServiceConfig config;
  config.page_size = 5;
  build(12, config);

  auto page0 = service_->fetch_list(0, ListKind::kHaveInCircles, 0);
  EXPECT_EQ(page0.users.size(), 5u);
  EXPECT_TRUE(page0.has_more);
  EXPECT_FALSE(page0.capped);

  auto page2 = service_->fetch_list(0, ListKind::kHaveInCircles, 10);
  EXPECT_EQ(page2.users.size(), 2u);
  EXPECT_FALSE(page2.has_more);

  auto past = service_->fetch_list(0, ListKind::kHaveInCircles, 100);
  EXPECT_TRUE(past.users.empty());
  EXPECT_FALSE(past.has_more);
}

TEST_F(ServiceTest, CircleCapTruncatesList) {
  ServiceConfig config;
  config.circle_list_cap = 8;
  config.page_size = 100;
  build(12, config);

  const auto page = service_->fetch_list(0, ListKind::kHaveInCircles, 0);
  EXPECT_EQ(page.users.size(), 8u);
  EXPECT_TRUE(page.capped);
  EXPECT_FALSE(page.has_more);
  // The profile page still displays the true total.
  EXPECT_EQ(service_->fetch_profile(0).have_in_circles_total, 12u);
}

TEST_F(ServiceTest, FetchFullListCountsOneRequestPerPage) {
  ServiceConfig config;
  config.page_size = 5;
  build(12, config);
  service_->reset_request_count();
  const auto list = service_->fetch_full_list(0, ListKind::kHaveInCircles);
  EXPECT_EQ(list.size(), 12u);
  EXPECT_EQ(service_->request_count(), 3u);  // pages of 5, 5, 2
}

TEST_F(ServiceTest, OutListMirrorsOutNeighbors) {
  build(4, ServiceConfig{});
  const auto list = service_->fetch_full_list(0, ListKind::kInTheirCircles);
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0], 1u);
}

TEST_F(ServiceTest, HiddenListsReturnNothingButProfileRenders) {
  ServiceConfig config;
  config.hidden_list_fraction = 1.0;
  build(6, config);
  EXPECT_FALSE(service_->lists_public(0));
  const auto page = service_->fetch_list(0, ListKind::kHaveInCircles, 0);
  EXPECT_TRUE(page.users.empty());
  EXPECT_FALSE(page.has_more);
  const auto profile = service_->fetch_profile(0);
  EXPECT_FALSE(profile.lists_public);
  EXPECT_EQ(profile.have_in_circles_total, 6u);
}

TEST_F(ServiceTest, HiddenFractionIsDeterministicAndProportional) {
  ServiceConfig config;
  config.hidden_list_fraction = 0.3;
  build(2000, config);
  std::size_t hidden = 0;
  for (NodeId u = 0; u < graph_.node_count(); ++u) {
    hidden += !service_->lists_public(u);
    EXPECT_EQ(service_->lists_public(u), service_->lists_public(u));
  }
  EXPECT_NEAR(static_cast<double>(hidden) / graph_.node_count(), 0.3, 0.05);
}

TEST_F(ServiceTest, RequestCounting) {
  build(3, ServiceConfig{});
  service_->reset_request_count();
  (void)service_->fetch_profile(0);
  (void)service_->fetch_list(0, ListKind::kHaveInCircles, 0);
  (void)service_->fetch_list(0, ListKind::kInTheirCircles, 0);
  EXPECT_EQ(service_->request_count(), 3u);
}

TEST_F(ServiceTest, InvalidNodeRejected) {
  build(2, ServiceConfig{});
  EXPECT_THROW(service_->fetch_profile(99), std::invalid_argument);
  EXPECT_THROW(service_->fetch_list(99, ListKind::kHaveInCircles, 0),
               std::invalid_argument);
}

TEST(Service, ConstructorValidatesArguments) {
  graph::GraphBuilder b;
  b.add_edge(0, 1);
  const auto g = b.build();
  std::vector<synth::Profile> wrong_size(1);
  EXPECT_THROW(SocialService(&g, wrong_size, ServiceConfig{}),
               std::invalid_argument);
  std::vector<synth::Profile> right_size(2);
  ServiceConfig zero_page;
  zero_page.page_size = 0;
  EXPECT_THROW(SocialService(&g, right_size, zero_page), std::invalid_argument);
  EXPECT_THROW(SocialService(nullptr, right_size, ServiceConfig{}),
               std::invalid_argument);
}


// Property sweep: pagination must reassemble the exact list for any page
// size and any cap.
class ServicePagination
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(ServicePagination, FullListIsExactPrefixOfNeighbors) {
  const auto [page_size, cap] = GetParam();
  GraphBuilder b;
  constexpr NodeId kFollowers = 137;
  for (NodeId v = 1; v <= kFollowers; ++v) b.add_edge(v, 0);
  const auto g = b.build();
  std::vector<synth::Profile> profiles(g.node_count());
  ServiceConfig config;
  config.page_size = page_size;
  config.circle_list_cap = cap;
  SocialService svc(&g, profiles, config);

  const auto list = svc.fetch_full_list(0, ListKind::kHaveInCircles);
  const auto expected_size =
      std::min<std::size_t>(kFollowers, cap);
  ASSERT_EQ(list.size(), expected_size);
  const auto truth = g.in_neighbors(0);
  for (std::size_t i = 0; i < list.size(); ++i) {
    ASSERT_EQ(list[i], truth[i]) << "page_size " << page_size << " cap " << cap;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PageAndCap, ServicePagination,
    ::testing::Combine(::testing::Values(1u, 7u, 64u, 1000u),
                       ::testing::Values(5u, 137u, 10'000u)));

}  // namespace
}  // namespace gplus::service
