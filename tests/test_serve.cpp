// Query-engine, LRU-cache and server tests: request semantics checked
// against direct DiGraph/Dataset answers, pagination against the circle
// cap, bounded shortest paths against reference BFS, and the bounded
// queue's explicit overload rejection.
#include <gtest/gtest.h>

#include <cstring>

#include "algo/bfs.h"
#include "algo/topk.h"
#include "core/dataset.h"
#include "graph/digraph.h"
#include "serve/cache.h"
#include "serve/server.h"
#include "serve/workload.h"

namespace gplus::serve {
namespace {

std::uint32_t get_u32(const std::vector<std::uint8_t>& p, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[at + i]} << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::vector<std::uint8_t>& p, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[at + i]} << (8 * i);
  return v;
}

class ServeEngineTest : public ::testing::Test {
 protected:
  static const core::Dataset& dataset() {
    static const core::Dataset instance = core::make_standard_dataset(2000, 7);
    return instance;
  }
  static const SnapshotBuffer& snapshot() {
    static const SnapshotBuffer instance = build_snapshot(dataset());
    return instance;
  }
  static const SnapshotView& view() {
    static const SnapshotView instance{snapshot().bytes()};
    return instance;
  }
  static const RequestEngine& engine() {
    static const RequestEngine instance{&view()};
    return instance;
  }
};

TEST_F(ServeEngineTest, ProfileMatchesDataset) {
  Response r;
  for (graph::NodeId u : {0U, 17U, 1999U}) {
    engine().execute({RequestType::kGetProfile, u}, r);
    ASSERT_EQ(r.status, ServeStatus::kOk);
    ASSERT_EQ(r.payload.size(), 32u);
    EXPECT_EQ(get_u32(r.payload, 0), u);
    EXPECT_EQ(get_u32(r.payload, 4), dataset().profiles[u].shared.bits());
    EXPECT_EQ(r.payload[8], static_cast<std::uint8_t>(dataset().profiles[u].gender));
    EXPECT_EQ(get_u64(r.payload, 16), dataset().graph().in_degree(u));
    EXPECT_EQ(get_u64(r.payload, 24), dataset().graph().out_degree(u));
  }
}

TEST_F(ServeEngineTest, DegreeAndReciprocityMatchGraph) {
  Response r;
  const auto& g = dataset().graph();
  for (graph::NodeId u = 0; u < 200; ++u) {
    engine().execute({RequestType::kDegree, u}, r);
    ASSERT_EQ(r.status, ServeStatus::kOk);
    EXPECT_EQ(get_u64(r.payload, 0), g.in_degree(u));
    EXPECT_EQ(get_u64(r.payload, 8), g.out_degree(u));

    engine().execute({RequestType::kReciprocity, u}, r);
    ASSERT_EQ(r.status, ServeStatus::kOk);
    std::uint64_t reciprocal = 0;
    for (const graph::NodeId v : g.out_neighbors(u)) {
      if (g.has_edge(v, u)) ++reciprocal;
    }
    EXPECT_EQ(get_u64(r.payload, 0), g.out_degree(u));
    EXPECT_EQ(get_u64(r.payload, 8), reciprocal);
  }
}

TEST_F(ServeEngineTest, CirclePagesConcatenateToAdjacency) {
  const auto& g = dataset().graph();
  // Pick the highest-out-degree node so pagination is exercised.
  graph::NodeId u = 0;
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    if (g.out_degree(v) > g.out_degree(u)) u = v;
  }
  Response r;
  std::vector<graph::NodeId> collected;
  std::uint32_t offset = 0;
  while (true) {
    Request q{RequestType::kGetOutCircle, u};
    q.offset = offset;
    q.limit = 7;
    engine().execute(q, r);
    ASSERT_EQ(r.status, ServeStatus::kOk);
    EXPECT_EQ(get_u64(r.payload, 0), g.out_degree(u));
    const std::uint32_t count = get_u32(r.payload, 8);
    for (std::uint32_t i = 0; i < count; ++i) {
      collected.push_back(get_u32(r.payload, 16 + 4 * i));
    }
    offset += count;
    if (r.payload[12] == 0) break;  // has_more
    ASSERT_LT(offset, 100'000u);
  }
  const auto want = g.out_neighbors(u);
  ASSERT_EQ(collected.size(), want.size());
  EXPECT_TRUE(std::equal(want.begin(), want.end(), collected.begin()));
}

TEST_F(ServeEngineTest, CircleCapMirrorsServiceLimit) {
  EngineConfig config;
  config.circle_cap = 5;
  config.max_page = 3;
  const RequestEngine capped(&view(), config);
  const auto& g = dataset().graph();
  graph::NodeId u = 0;
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    if (g.in_degree(v) > g.in_degree(u)) u = v;
  }
  ASSERT_GT(g.in_degree(u), 5u);

  Response r;
  Request q{RequestType::kGetInCircle, u};
  q.limit = 3;
  capped.execute(q, r);
  ASSERT_EQ(r.status, ServeStatus::kOk);
  EXPECT_EQ(get_u64(r.payload, 0), g.in_degree(u));  // displayed total uncapped
  EXPECT_EQ(get_u32(r.payload, 8), 3u);
  EXPECT_EQ(r.payload[12], 1);  // has_more below the cap
  EXPECT_EQ(r.payload[13], 1);  // capped

  q.offset = 3;
  capped.execute(q, r);
  EXPECT_EQ(get_u32(r.payload, 8), 2u);  // only 5 visible
  EXPECT_EQ(r.payload[12], 0);

  q.offset = 5;  // past the visible window: empty page, still capped
  capped.execute(q, r);
  EXPECT_EQ(get_u32(r.payload, 8), 0u);
  EXPECT_EQ(r.payload[13], 1);

  q.offset = 0;
  q.limit = 4;  // over max_page
  capped.execute(q, r);
  EXPECT_EQ(r.status, ServeStatus::kInvalidRequest);
}

TEST_F(ServeEngineTest, ShortestPathMatchesReferenceBfs) {
  const auto& g = dataset().graph();
  const auto distances = algo::bfs_distances(g, 0);
  Response r;
  std::size_t checked = 0;
  for (graph::NodeId v = 0; v < g.node_count() && checked < 200; v += 13) {
    engine().execute({RequestType::kShortestPath, 0, v}, r);
    ASSERT_EQ(r.status, ServeStatus::kOk);
    const std::uint32_t got = get_u32(r.payload, 0);
    const std::uint32_t want = distances[v];
    if (want == algo::kUnreachable ||
        want > engine().config().path_max_hops) {
      EXPECT_EQ(got, kPathUnreachable) << v;
    } else {
      EXPECT_EQ(got, want) << v;
    }
    ++checked;
  }
}

TEST_F(ServeEngineTest, ShortestPathHonorsBounds) {
  EngineConfig config;
  config.path_max_hops = 1;
  const RequestEngine bounded(&view(), config);
  const auto& g = dataset().graph();
  graph::NodeId u = 0;
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    if (g.out_degree(v) > 0) { u = v; break; }
  }
  const graph::NodeId direct = g.out_neighbors(u)[0];
  Response r;
  bounded.execute({RequestType::kShortestPath, u, direct}, r);
  EXPECT_EQ(get_u32(r.payload, 0), 1u);
  bounded.execute({RequestType::kShortestPath, u, u}, r);
  EXPECT_EQ(get_u32(r.payload, 0), 0u);

  EngineConfig tiny;
  tiny.path_node_budget = 3;
  const RequestEngine starved(&view(), tiny);
  std::uint64_t unreachable = 0;
  for (graph::NodeId v = 100; v < 140; ++v) {
    starved.execute({RequestType::kShortestPath, u, v}, r);
    EXPECT_LE(get_u64(r.payload, 4), 4u);  // budget + the two roots
    if (get_u32(r.payload, 0) == kPathUnreachable) ++unreachable;
  }
  EXPECT_GT(unreachable, 0u);  // a 3-node budget cannot reach far targets
}

TEST_F(ServeEngineTest, TopKMatchesReferenceRanking) {
  Response r;
  Request q{RequestType::kTopK};
  q.limit = 10;
  engine().execute(q, r);
  ASSERT_EQ(r.status, ServeStatus::kOk);
  const auto want = algo::top_by_in_degree(dataset().graph(), 10);
  ASSERT_EQ(get_u32(r.payload, 0), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(get_u32(r.payload, 4 + 12 * i), want[i].node) << i;
    EXPECT_EQ(get_u64(r.payload, 8 + 12 * i), want[i].score) << i;
  }
  q.limit = engine().config().topk_cap + 1;
  engine().execute(q, r);
  EXPECT_EQ(r.status, ServeStatus::kInvalidRequest);
}

TEST_F(ServeEngineTest, InvalidNodesAreExplicitErrors) {
  Response r;
  const auto n = static_cast<graph::NodeId>(view().node_count());
  for (const RequestType type :
       {RequestType::kGetProfile, RequestType::kGetOutCircle,
        RequestType::kGetInCircle, RequestType::kReciprocity,
        RequestType::kDegree}) {
    engine().execute({type, n}, r);
    EXPECT_EQ(r.status, ServeStatus::kInvalidNode);
    EXPECT_TRUE(r.payload.empty());
  }
  engine().execute({RequestType::kShortestPath, 0, n}, r);
  EXPECT_EQ(r.status, ServeStatus::kInvalidNode);
}

TEST(ShardedLruCacheTest, HitMissEvictionCounters) {
  ShardedLruCache cache(4, 1);
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(cache.lookup(1, out));
  cache.insert(1, {1});
  cache.insert(2, {2});
  cache.insert(3, {3});
  cache.insert(4, {4});
  EXPECT_TRUE(cache.lookup(1, out));
  EXPECT_EQ(out, std::vector<std::uint8_t>{1});
  // 1 is now most-recent; inserting 5 evicts 2 (least recent).
  cache.insert(5, {5});
  EXPECT_FALSE(cache.lookup(2, out));
  EXPECT_TRUE(cache.lookup(1, out));
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 4u);

  cache.clear();
  // clear() resets entries AND statistics: a cleared cache is
  // indistinguishable from a fresh one (the hot-swap comparability rule).
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().stale_hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(ShardedLruCacheTest, StaleHitsCountedSeparately) {
  ShardedLruCache cache(8, 1);
  std::vector<std::uint8_t> out;
  cache.insert(7, {42});
  EXPECT_TRUE(cache.lookup(7, out));                  // fresh hit
  EXPECT_TRUE(cache.lookup(7, out, /*stale=*/true));  // degraded-mode hit
  EXPECT_FALSE(cache.lookup(8, out, /*stale=*/true)); // miss is a miss
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.stale_hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  // Both hit flavors count toward the hit rate.
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 2.0 / 3.0);
}

TEST(ShardedLruCacheTest, ZeroCapacityDisables) {
  ShardedLruCache cache(0, 8);
  std::vector<std::uint8_t> out;
  cache.insert(1, {1});
  EXPECT_FALSE(cache.lookup(1, out));
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ShardedLruCacheTest, ShardsPartitionKeys) {
  ShardedLruCache cache(64, 4);
  EXPECT_EQ(cache.shard_count(), 4u);
  std::vector<std::uint8_t> out;
  for (std::uint64_t k = 0; k < 64; ++k) {
    cache.insert(k << 48, {static_cast<std::uint8_t>(k)});  // spread shards
  }
  EXPECT_LE(cache.stats().entries, 64u);
  EXPECT_GT(cache.stats().entries, 0u);
}

class QueryServerTest : public ServeEngineTest {};

TEST_F(QueryServerTest, BoundedQueueRejectsExplicitly) {
  ServerConfig config;
  config.queue_capacity = 4;
  QueryServer server(&view(), config);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(server.submit({RequestType::kDegree, 0}), ServeStatus::kOk);
  }
  EXPECT_EQ(server.pending(), 4u);
  // Past capacity: rejected, counted, nothing queued or dropped silently.
  EXPECT_EQ(server.submit({RequestType::kDegree, 1}), ServeStatus::kRejected);
  EXPECT_EQ(server.submit({RequestType::kDegree, 2}), ServeStatus::kRejected);
  EXPECT_EQ(server.pending(), 4u);

  std::vector<Response> responses;
  server.drain(responses);
  EXPECT_EQ(responses.size(), 4u);
  EXPECT_EQ(server.pending(), 0u);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, 4u);
  EXPECT_EQ(stats.rejected, 2u);
  EXPECT_EQ(stats.served, 4u);
  // Queue freed: the next submit is admitted again.
  EXPECT_EQ(server.submit({RequestType::kDegree, 1}), ServeStatus::kOk);
}

TEST_F(QueryServerTest, DrainAnswersInSubmissionOrder) {
  QueryServer server(&view());
  const auto& g = dataset().graph();
  for (graph::NodeId u = 0; u < 50; ++u) {
    ASSERT_EQ(server.submit({RequestType::kDegree, u}), ServeStatus::kOk);
  }
  std::vector<Response> responses;
  std::vector<std::uint64_t> latency;
  server.drain(responses, &latency);
  ASSERT_EQ(responses.size(), 50u);
  ASSERT_EQ(latency.size(), 50u);
  for (graph::NodeId u = 0; u < 50; ++u) {
    EXPECT_EQ(get_u64(responses[u].payload, 0), g.in_degree(u)) << u;
  }
}

TEST_F(QueryServerTest, CacheServesRepeatedProfiles) {
  QueryServer server(&view());
  std::vector<Response> responses;
  for (int round = 0; round < 3; ++round) {
    for (graph::NodeId u = 0; u < 10; ++u) {
      ASSERT_EQ(server.submit({RequestType::kGetProfile, u}), ServeStatus::kOk);
    }
    server.drain(responses);
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.cache.misses, 10u);  // first round only
  EXPECT_EQ(stats.cache.hits, 20u);    // rounds 2 and 3
  EXPECT_EQ(stats.per_type[static_cast<std::size_t>(RequestType::kGetProfile)],
            30u);
  // Hits and misses must carry identical payloads.
  QueryServer cold(&view());
  ASSERT_EQ(cold.submit({RequestType::kGetProfile, 3}), ServeStatus::kOk);
  std::vector<Response> fresh;
  cold.drain(fresh);
  ASSERT_EQ(server.submit({RequestType::kGetProfile, 3}), ServeStatus::kOk);
  server.drain(responses);
  EXPECT_EQ(responses[0].payload, fresh[0].payload);
}

TEST_F(QueryServerTest, ErrorsAreNotCached) {
  QueryServer server(&view());
  const auto n = static_cast<graph::NodeId>(view().node_count());
  std::vector<Response> responses;
  for (int round = 0; round < 2; ++round) {
    ASSERT_EQ(server.submit({RequestType::kGetProfile, n}), ServeStatus::kOk);
    server.drain(responses);
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].status, ServeStatus::kInvalidNode);
  }
  EXPECT_EQ(server.stats().cache.hits, 0u);
  EXPECT_EQ(server.stats().cache.entries, 0u);
}

TEST(ServeNames, StatusAndTypeNamesAreStable) {
  EXPECT_EQ(request_type_name(RequestType::kGetProfile), "get-profile");
  EXPECT_EQ(request_type_name(RequestType::kShortestPath), "shortest-path");
  EXPECT_EQ(serve_status_name(ServeStatus::kOk), "ok");
  EXPECT_EQ(serve_status_name(ServeStatus::kRejected), "rejected");
  EXPECT_EQ(WorkloadMix::by_name("path").weights
                [static_cast<std::size_t>(RequestType::kShortestPath)],
            0.50);
  EXPECT_THROW(WorkloadMix::by_name("bogus"), std::invalid_argument);
}

}  // namespace
}  // namespace gplus::serve
