#include "core/geo_routing.h"

#include <gtest/gtest.h>

namespace gplus::core {
namespace {

using graph::NodeId;

class GeoRoutingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ds_ = new Dataset(make_standard_dataset(25'000, 19));
  }
  static void TearDownTestSuite() {
    delete ds_;
    ds_ = nullptr;
  }
  static NodeId located_node(std::size_t skip) {
    std::size_t seen = 0;
    for (NodeId u = 0; u < ds_->user_count(); ++u) {
      if (ds_->located(u) && ds_->graph().out_degree(u) > 0) {
        if (seen++ == skip) return u;
      }
    }
    return 0;
  }
  static Dataset* ds_;
};

Dataset* GeoRoutingTest::ds_ = nullptr;

TEST_F(GeoRoutingTest, RoutingToSelfIsImmediate) {
  const NodeId u = located_node(0);
  const auto route = greedy_geo_route(*ds_, u, u);
  EXPECT_TRUE(route.delivered);
  EXPECT_EQ(route.hops, 0u);
}

TEST_F(GeoRoutingTest, DirectContactIsOneHop) {
  const NodeId u = located_node(0);
  const auto outs = ds_->graph().out_neighbors(u);
  ASSERT_FALSE(outs.empty());
  const auto route = greedy_geo_route(*ds_, u, outs[0]);
  EXPECT_TRUE(route.delivered);
  EXPECT_EQ(route.hops, 1u);
}

TEST_F(GeoRoutingTest, NetworkIsSubstantiallyNavigable) {
  // Liben-Nowell's headline: a large share of greedy routes succeed
  // because link probability decays with distance. Our router can only
  // see the 27% of contacts who share a location (the paper's own
  // constraint), so a strict-greedy success rate in the tens of percent
  // already demonstrates navigability — a random forwarding rule would
  // essentially never hit a specific user's town.
  stats::Rng rng(1);
  const auto stats = measure_geo_routing(*ds_, 800, rng);
  EXPECT_GT(stats.attempts, 700u);
  EXPECT_GT(stats.success_rate, 0.25);
  EXPECT_GT(stats.mean_hops_delivered, 1.0);
  EXPECT_LT(stats.mean_hops_delivered, 50.0);
}

TEST_F(GeoRoutingTest, StalledRoutesReportRemainingDistance) {
  stats::Rng rng(2);
  GeoRouteOptions strict;
  strict.local_delivery_miles = 0.0;  // only exact arrival counts
  strict.max_hops = 10;               // force some failures
  const auto stats = measure_geo_routing(*ds_, 400, rng, strict);
  EXPECT_LT(stats.success_rate, 1.0);
  if (stats.delivered < stats.attempts) {
    EXPECT_GT(stats.median_stall_miles, 0.0);
  }
}

TEST_F(GeoRoutingTest, LocalDeliveryRadiusHelps) {
  stats::Rng rng1(3), rng2(3);
  GeoRouteOptions strict;
  strict.local_delivery_miles = 0.0;
  GeoRouteOptions relaxed;
  relaxed.local_delivery_miles = 50.0;
  const auto hard = measure_geo_routing(*ds_, 500, rng1, strict);
  const auto easy = measure_geo_routing(*ds_, 500, rng2, relaxed);
  EXPECT_GE(easy.success_rate, hard.success_rate);
}

TEST_F(GeoRoutingTest, RejectsBadArguments) {
  EXPECT_THROW(greedy_geo_route(*ds_, 0, static_cast<NodeId>(ds_->user_count())),
               std::invalid_argument);
  GeoRouteOptions zero_hops;
  zero_hops.max_hops = 0;
  EXPECT_THROW(greedy_geo_route(*ds_, 0, 1, zero_hops), std::invalid_argument);
  stats::Rng rng(4);
  EXPECT_THROW(measure_geo_routing(*ds_, 0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace gplus::core
