// Golden-trace test: a fixed-seed crawl + serve workload emits a span log
// stamped on the virtual-cost clock, so the dump is a pure function of
// (seed, workload) — byte-identical across runs AND thread counts. The
// text is checked against a committed golden file; regenerate it with
//   ./test_golden_trace --regen   (or GPLUS_REGEN_GOLDEN=1)
// after an intentional instrumentation change.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/parallel.h"
#include "crawler/crawler.h"
#include "graph/builder.h"
#include "obs/trace.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "service/service.h"

namespace gplus {
namespace {

bool g_regen = false;

std::filesystem::path golden_path() {
  return std::filesystem::path(GPLUS_GOLDEN_DIR) / "trace_crawl_serve.txt";
}

// The fault-injection fixture shape: a 300-user mutual community plus a
// celebrity everyone follows — every fault kind fires at modest rates.
graph::DiGraph fixture_graph() {
  graph::GraphBuilder b;
  for (graph::NodeId u = 0; u < 300; ++u) {
    b.add_reciprocal_edge(u, (u + 1) % 300);
    b.add_reciprocal_edge(u, (u + 13) % 300);
    b.add_edge(u, 300);
  }
  return b.build();
}

// One fixed-seed pass through both instrumented subsystems: a faulty,
// checkpointing crawl, then three submit/drain rounds against the query
// server. Returns the span log text; the global trace is left clean.
std::string run_traced_workload() {
  auto& trace = obs::TraceLog::global();
  trace.clear();
  trace.set_enabled(true);

  {  // Crawl leg: retries and backoff under faults, checkpoints included.
    const graph::DiGraph graph = fixture_graph();
    std::vector<synth::Profile> profiles(graph.node_count());
    service::ServiceConfig sconfig;
    sconfig.faults.transient_rate = 0.10;
    sconfig.faults.rate_limit_rate = 0.05;
    sconfig.faults.truncation_rate = 0.05;
    sconfig.faults.slow_rate = 0.10;
    service::SocialService svc(&graph, profiles, sconfig);

    const auto ckpt =
        std::filesystem::temp_directory_path() /
        ("gplus_golden_trace_" + std::to_string(::getpid()) + ".ckpt");
    std::filesystem::remove(ckpt);
    crawler::CrawlConfig config;
    config.seed_node = 0;
    config.checkpoint.path = ckpt.string();
    config.checkpoint.every_profiles = 100;
    crawler::run_bfs_crawl(svc, config);
    std::filesystem::remove(ckpt);
  }

  {  // Serve leg: a deterministic request mix over a seeded snapshot.
    const core::Dataset dataset = core::make_standard_dataset(1'000, 42);
    const serve::SnapshotBuffer snapshot = serve::build_snapshot(dataset);
    const serve::SnapshotView view(snapshot.bytes());
    serve::QueryServer server(&view);
    std::vector<serve::Response> responses;
    for (std::size_t round = 0; round < 3; ++round) {
      for (std::size_t i = 0; i < 48; ++i) {
        serve::Request q;
        q.type = static_cast<serve::RequestType>(i % serve::kRequestTypeCount);
        q.user = static_cast<graph::NodeId>((i * 37 + round) % 1'000);
        q.target = static_cast<graph::NodeId>((i * 61) % 1'000);
        q.limit = 16;
        server.submit(q);
      }
      server.drain(responses);
    }
  }

  trace.set_enabled(false);
  const std::string text = trace.to_text();
  trace.clear();
  return text;
}

TEST(GoldenTraceTest, ByteIdenticalAcrossRunsAndThreadCounts) {
  core::set_thread_count(4);
  const std::string four_lanes = run_traced_workload();
  core::set_thread_count(1);
  const std::string one_lane = run_traced_workload();
  core::set_thread_count(0);

  ASSERT_FALSE(four_lanes.empty());
  EXPECT_EQ(four_lanes, one_lane);
  // The workload exercised both subsystems' instrumentation.
  EXPECT_NE(four_lanes.find("span crawl.run"), std::string::npos);
  EXPECT_NE(four_lanes.find("span crawl.checkpoint"), std::string::npos);
  EXPECT_NE(four_lanes.find("span serve.drain"), std::string::npos);
}

TEST(GoldenTraceTest, MatchesCommittedGoldenFile) {
  const std::string text = run_traced_workload();
  const std::filesystem::path path = golden_path();
  if (g_regen) {
    std::ofstream out(path, std::ios::binary);
    out << text;
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    std::cout << "regenerated " << path << " (" << text.size() << " bytes)\n";
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — regenerate with --regen";
  std::stringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(text, golden.str())
      << "span log drifted from " << path
      << " — if the instrumentation change is intentional, rerun with "
         "--regen and commit the file";
}

}  // namespace
}  // namespace gplus

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--regen") == 0) gplus::g_regen = true;
  }
  if (std::getenv("GPLUS_REGEN_GOLDEN") != nullptr) gplus::g_regen = true;
  return RUN_ALL_TESTS();
}
