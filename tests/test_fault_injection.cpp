// Fault-injection coverage (§2 operating reality): the seeded fault
// schedule is deterministic, retried crawls converge to the exact
// fault-free graph, and the backoff arithmetic is reproducible.
#include <gtest/gtest.h>

#include <cmath>

#include "crawler/crawler.h"
#include "crawler/fleet.h"
#include "crawler/retry.h"
#include "crawler/samplers.h"
#include "graph/builder.h"
#include "obs/metrics.h"
#include "service/service.h"

namespace gplus::crawler {
namespace {

using graph::GraphBuilder;
using graph::NodeId;

// A connected mutual community of 300 users plus a celebrity everyone
// follows — large enough that every fault kind fires at modest rates.
struct Fixture {
  graph::DiGraph graph;
  std::vector<synth::Profile> profiles;

  Fixture() {
    GraphBuilder b;
    for (NodeId u = 0; u < 300; ++u) {
      b.add_reciprocal_edge(u, (u + 1) % 300);
      b.add_reciprocal_edge(u, (u + 13) % 300);
      b.add_edge(u, 300);
    }
    graph = b.build();
    profiles.assign(graph.node_count(), synth::Profile{});
  }

  service::SocialService service(service::ServiceConfig config = {}) {
    return service::SocialService(&graph, profiles, config);
  }
};

service::FaultConfig modest_faults() {
  service::FaultConfig f;
  f.transient_rate = 0.10;
  f.rate_limit_rate = 0.05;
  f.truncation_rate = 0.05;
  f.slow_rate = 0.10;
  return f;
}

// Bit-identical graph comparison: same node universe in the same
// discovery order, same adjacency.
void expect_identical_crawl(const CrawlResult& a, const CrawlResult& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  EXPECT_EQ(a.original_id, b.original_id);
  EXPECT_EQ(a.crawled, b.crawled);
  ASSERT_EQ(a.graph.node_count(), b.graph.node_count());
  ASSERT_EQ(a.graph.edge_count(), b.graph.edge_count());
  for (NodeId u = 0; u < a.graph.node_count(); ++u) {
    const auto an = a.graph.out_neighbors(u);
    const auto bn = b.graph.out_neighbors(u);
    ASSERT_EQ(an.size(), bn.size()) << "node " << u;
    EXPECT_TRUE(std::equal(an.begin(), an.end(), bn.begin())) << "node " << u;
  }
}

TEST(FaultSchedule, DeterministicAcrossServiceInstances) {
  Fixture fx;
  service::ServiceConfig config;
  config.faults = modest_faults();
  auto a = fx.service(config);
  auto b = fx.service(config);
  for (NodeId id = 0; id < 50; ++id) {
    for (std::uint32_t attempt = 0; attempt < 4; ++attempt) {
      const auto pa = a.try_fetch_profile(id, attempt);
      const auto pb = b.try_fetch_profile(id, attempt);
      EXPECT_EQ(pa.status.error, pb.status.error);
      EXPECT_EQ(pa.status.retry_after_ms, pb.status.retry_after_ms);
      EXPECT_EQ(pa.status.latency_factor, pb.status.latency_factor);
      const auto la =
          a.try_fetch_list(id, service::ListKind::kInTheirCircles, 0, attempt);
      const auto lb =
          b.try_fetch_list(id, service::ListKind::kInTheirCircles, 0, attempt);
      EXPECT_EQ(la.status.error, lb.status.error);
      EXPECT_EQ(la.page.users, lb.page.users);
    }
  }
  EXPECT_EQ(a.fault_counters().total_failures(),
            b.fault_counters().total_failures());
  EXPECT_GT(a.fault_counters().total_failures(), 0u);
}

TEST(FaultSchedule, DifferentSeedsGiveDifferentSchedules) {
  Fixture fx;
  service::ServiceConfig ca, cb;
  ca.faults = modest_faults();
  cb.faults = modest_faults();
  cb.faults.seed = ca.faults.seed + 1;
  auto a = fx.service(ca);
  auto b = fx.service(cb);
  std::size_t differences = 0;
  for (NodeId id = 0; id < 100; ++id) {
    const auto pa = a.try_fetch_profile(id, 0);
    const auto pb = b.try_fetch_profile(id, 0);
    differences += pa.status.error != pb.status.error;
  }
  EXPECT_GT(differences, 0u);
}

TEST(FaultSchedule, AttemptsPastTheGuaranteeAlwaysSucceed) {
  Fixture fx;
  service::ServiceConfig config;
  config.faults = modest_faults();
  config.faults.transient_rate = 0.45;
  config.faults.rate_limit_rate = 0.30;
  config.faults.truncation_rate = 0.20;
  auto svc = fx.service(config);
  for (NodeId id = 0; id < 100; ++id) {
    const std::uint32_t attempt = config.faults.max_faults_per_request;
    EXPECT_TRUE(svc.try_fetch_profile(id, attempt).status.ok());
    EXPECT_TRUE(svc.try_fetch_list(id, service::ListKind::kHaveInCircles, 0,
                                   attempt)
                    .status.ok());
  }
}

TEST(FaultSchedule, TruncatedPageIsStrictPrefixOfCleanPage) {
  Fixture fx;
  service::ServiceConfig config;
  config.page_size = 100;
  config.faults.truncation_rate = 0.6;
  auto faulty = fx.service(config);
  service::ServiceConfig clean_config;
  clean_config.page_size = 100;
  auto clean = fx.service(clean_config);
  std::size_t truncations = 0;
  for (NodeId id = 0; id < 300; ++id) {
    const auto f =
        faulty.try_fetch_list(id, service::ListKind::kHaveInCircles, 0, 0);
    const auto c = clean.fetch_list(id, service::ListKind::kHaveInCircles, 0);
    if (f.status.error == service::FetchError::kTruncated) {
      ++truncations;
      ASSERT_LT(f.page.users.size(), c.users.size());
      EXPECT_TRUE(std::equal(f.page.users.begin(), f.page.users.end(),
                             c.users.begin()));
    } else {
      EXPECT_EQ(f.page.users, c.users);
    }
  }
  EXPECT_GT(truncations, 0u);
  EXPECT_EQ(faulty.fault_counters().truncated, truncations);
}

TEST(FaultSchedule, RateLimitCarriesRetryAfterHint) {
  Fixture fx;
  service::ServiceConfig config;
  config.faults.rate_limit_rate = 0.5;
  config.faults.retry_after_ms = 1'234;
  auto svc = fx.service(config);
  std::size_t limited = 0;
  for (NodeId id = 0; id < 200; ++id) {
    const auto p = svc.try_fetch_profile(id, 0);
    if (p.status.error == service::FetchError::kRateLimited) {
      ++limited;
      EXPECT_EQ(p.status.retry_after_ms, 1'234u);
    }
  }
  EXPECT_GT(limited, 0u);
}

TEST(FaultSchedule, LegacyFetchConvergesUnderFaults) {
  Fixture fx;
  service::ServiceConfig faulty_config;
  faulty_config.faults = modest_faults();
  auto faulty = fx.service(faulty_config);
  auto clean = fx.service();
  for (NodeId id = 0; id <= 300; ++id) {
    EXPECT_EQ(faulty.fetch_full_list(id, service::ListKind::kHaveInCircles),
              clean.fetch_full_list(id, service::ListKind::kHaveInCircles));
  }
  // The flaky wire cost more attempts for the same data.
  EXPECT_GT(faulty.request_count(), clean.request_count());
}

TEST(Backoff, DeterministicCappedAndJittered) {
  RetryPolicy policy;
  policy.base_backoff_ms = 100.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ms = 1'000.0;
  policy.jitter = 0.5;
  const std::uint64_t key = request_key(42, 1, 0);
  service::FetchStatus transient;
  transient.error = service::FetchError::kTransient;
  for (std::uint32_t attempt = 0; attempt < 12; ++attempt) {
    const double d = backoff_delay_ms(policy, transient, key, attempt);
    // Reproducible: the delay is a pure function of (policy, key, attempt).
    EXPECT_DOUBLE_EQ(d, backoff_delay_ms(policy, transient, key, attempt));
    // Within the jitter envelope of the capped exponential.
    const double base = std::min(100.0 * std::pow(2.0, attempt), 1'000.0);
    EXPECT_LE(d, base);
    EXPECT_GE(d, base * 0.5);
  }
  // Different request keys jitter differently.
  EXPECT_NE(backoff_delay_ms(policy, transient, key, 3),
            backoff_delay_ms(policy, transient, request_key(43, 1, 0), 3));
}

TEST(Backoff, HonorsRetryAfterFloor) {
  RetryPolicy policy;
  policy.base_backoff_ms = 10.0;
  service::FetchStatus limited;
  limited.error = service::FetchError::kRateLimited;
  limited.retry_after_ms = 5'000;
  EXPECT_GE(backoff_delay_ms(policy, limited, request_key(1, 0, 0), 0), 5'000.0);
}

TEST(Backoff, RetryHelpersAccountEveryAttempt) {
  Fixture fx;
  service::ServiceConfig config;
  config.faults = modest_faults();
  auto svc = fx.service(config);
  RetryPolicy policy;
  RetryStats stats;
  for (NodeId id = 0; id < 100; ++id) {
    const auto fetch = fetch_profile_with_retry(svc, policy, id, stats);
    EXPECT_TRUE(fetch.status.ok());
  }
  EXPECT_EQ(stats.attempts, svc.request_count());
  EXPECT_EQ(stats.retries, stats.attempts - 100);
  EXPECT_EQ(stats.transient + stats.rate_limited, stats.retries);
  EXPECT_GT(stats.retries, 0u);
  EXPECT_GT(stats.backoff_ms, 0.0);
  EXPECT_EQ(stats.abandoned, 0u);
}

TEST(Backoff, ExhaustedRetriesAbandonTheRequest) {
  Fixture fx;
  service::ServiceConfig config;
  config.faults.transient_rate = 0.6;
  config.faults.rate_limit_rate = 0.3;
  auto svc = fx.service(config);
  RetryPolicy policy;
  policy.max_retries = 0;  // a single attempt per request
  RetryStats stats;
  for (NodeId id = 0; id < 100; ++id) {
    fetch_profile_with_retry(svc, policy, id, stats);
  }
  EXPECT_GT(stats.abandoned, 0u);
  EXPECT_EQ(stats.retries, 0u);
}

TEST(FaultyCrawl, ConvergesToFaultFreeGraph) {
  Fixture fx;
  auto clean = fx.service();
  CrawlConfig config;
  config.seed_node = 0;
  const auto reference = run_bfs_crawl(clean, config);

  service::ServiceConfig faulty_config;
  faulty_config.faults = modest_faults();
  auto faulty = fx.service(faulty_config);
  const auto crawl = run_bfs_crawl(faulty, config);

  expect_identical_crawl(reference, crawl);
  EXPECT_GT(crawl.stats.retry.retries, 0u);
  EXPECT_GT(crawl.stats.requests, reference.stats.requests);
  EXPECT_EQ(crawl.stats.retry.abandoned, 0u);
  EXPECT_EQ(crawl.stats.degraded_users, 0u);
  // Backoff + slow responses stretch the simulated wall-clock.
  EXPECT_GT(crawl.stats.simulated_hours, reference.stats.simulated_hours);
}

TEST(FaultyCrawl, FaultyCrawlIsItselfDeterministic) {
  Fixture fx;
  service::ServiceConfig config;
  config.faults = modest_faults();
  CrawlConfig cconfig;
  cconfig.seed_node = 3;
  auto a = fx.service(config);
  auto b = fx.service(config);
  const auto ra = run_bfs_crawl(a, cconfig);
  const auto rb = run_bfs_crawl(b, cconfig);
  expect_identical_crawl(ra, rb);
  EXPECT_EQ(ra.stats.requests, rb.stats.requests);
  EXPECT_EQ(ra.stats.retry.retries, rb.stats.retry.retries);
  EXPECT_DOUBLE_EQ(ra.stats.retry.backoff_ms, rb.stats.retry.backoff_ms);
  EXPECT_DOUBLE_EQ(ra.stats.simulated_hours, rb.stats.simulated_hours);
}

TEST(FaultyCrawl, ExhaustedRetryBudgetDegradesAndIsAccounted) {
  Fixture fx;
  service::ServiceConfig config;
  // Heavy enough that a two-attempt budget abandons many fetches, light
  // enough that the crawl still spreads from the seed.
  config.faults.transient_rate = 0.30;
  config.faults.rate_limit_rate = 0.10;
  config.faults.truncation_rate = 0.10;
  auto svc = fx.service(config);
  CrawlConfig cconfig;
  cconfig.seed_node = 0;
  cconfig.retry.max_retries = 1;  // far below the fault schedule's tail
  const auto crawl = run_bfs_crawl(svc, cconfig);
  EXPECT_GT(crawl.stats.retry.abandoned, 0u);
  EXPECT_GT(crawl.stats.degraded_users, 0u);

  const auto est = estimate_lost_edges(svc, crawl);
  EXPECT_GT(est.degraded_users, 0u);
  EXPECT_GT(est.fault_lost_fraction, 0.0);
  // Fault loss and cap loss never double-count a user.
  EXPECT_EQ(est.users_over_cap, 0u);

  // An uncrippled retry budget recovers everything.
  auto recovered_svc = fx.service(config);
  CrawlConfig patient = cconfig;
  patient.retry = RetryPolicy{};
  const auto recovered = run_bfs_crawl(recovered_svc, patient);
  EXPECT_EQ(recovered.stats.degraded_users, 0u);
  EXPECT_GT(recovered.graph.edge_count(), crawl.graph.edge_count());
}

TEST(FaultyFleet, ConvergesToFaultFreeGraphAndPaysInTime) {
  Fixture fx;
  auto clean = fx.service();
  FleetConfig config;
  config.seed_node = 0;
  const auto reference = run_crawl_fleet(clean, config);

  service::ServiceConfig faulty_config;
  faulty_config.faults = modest_faults();
  auto faulty = fx.service(faulty_config);
  const auto fleet = run_crawl_fleet(faulty, config);

  expect_identical_crawl(reference.crawl, fleet.crawl);
  EXPECT_EQ(fleet.profiles_crawled, reference.profiles_crawled);
  EXPECT_GT(fleet.requests, reference.requests);
  EXPECT_GT(fleet.makespan_days, reference.makespan_days);
  EXPECT_LE(fleet.mean_utilization, 1.0 + 1e-9);
  double waiting = 0.0;
  std::uint64_t rate_limited = 0;
  for (const auto& m : fleet.machines) {
    waiting += m.waiting_seconds;
    rate_limited += m.rate_limited;
  }
  EXPECT_GT(waiting, 0.0);
  EXPECT_GT(rate_limited, 0u);
  EXPECT_EQ(rate_limited, fleet.crawl.stats.retry.rate_limited);
}

TEST(FaultyFleet, FleetAndCrawlerCollectTheSameGraph) {
  Fixture fx;
  service::ServiceConfig config;
  config.faults = modest_faults();
  auto svc_fleet = fx.service(config);
  auto svc_crawl = fx.service(config);
  FleetConfig fconfig;
  fconfig.seed_node = 5;
  CrawlConfig cconfig;
  cconfig.seed_node = 5;
  const auto fleet = run_crawl_fleet(svc_fleet, fconfig);
  const auto crawl = run_bfs_crawl(svc_crawl, cconfig);
  expect_identical_crawl(fleet.crawl, crawl);
}

TEST(FaultySamplers, SamplersConvergeUnderFaults) {
  Fixture fx;
  auto clean = fx.service();
  service::ServiceConfig faulty_config;
  faulty_config.faults = modest_faults();
  auto faulty = fx.service(faulty_config);
  SamplerOptions options;
  options.seed_node = 0;
  options.target_users = 150;
  for (auto kind : {SamplerKind::kBfs, SamplerKind::kRandomWalk,
                    SamplerKind::kMetropolisHastings}) {
    const auto a = sample_users(clean, kind, options);
    const auto b = sample_users(faulty, kind, options);
    // The legacy fetch path retries internally: identical data, identical
    // walk, more wire traffic.
    EXPECT_EQ(a.users, b.users) << sampler_name(kind);
    EXPECT_GT(b.requests, a.requests) << sampler_name(kind);
  }
}

// --- Metrics registry mirroring -------------------------------------------

TEST(ObsRegistry, CrawlDeltaMatchesRetryStatsExactly) {
  // retry_loop mirrors every RetryStats increment into the global
  // registry, so the delta across one crawl must agree field for field.
  Fixture fx;
  service::ServiceConfig config;
  config.faults = modest_faults();
  auto svc = fx.service(config);
  CrawlConfig cconfig;
  cconfig.seed_node = 0;

  auto& registry = obs::MetricsRegistry::global();
  const auto before = registry.snapshot();
  const auto crawl = run_bfs_crawl(svc, cconfig);
  const auto d = obs::delta(registry.snapshot(), before);

  const RetryStats& retry = crawl.stats.retry;
  EXPECT_GT(retry.retries, 0u);
  EXPECT_EQ(d.value("crawler.fetch.attempts"),
            static_cast<std::int64_t>(retry.attempts));
  EXPECT_EQ(d.value("crawler.fetch.retries"),
            static_cast<std::int64_t>(retry.retries));
  EXPECT_EQ(d.value("crawler.fetch.abandoned"),
            static_cast<std::int64_t>(retry.abandoned));
  EXPECT_EQ(d.value("crawler.fetch.slow"),
            static_cast<std::int64_t>(retry.slow));
  EXPECT_EQ(d.value("crawler.fault.transient"),
            static_cast<std::int64_t>(retry.transient));
  EXPECT_EQ(d.value("crawler.fault.rate_limited"),
            static_cast<std::int64_t>(retry.rate_limited));
  EXPECT_EQ(d.value("crawler.fault.truncated"),
            static_cast<std::int64_t>(retry.truncated));

  // The registry accumulates llround-ed integer microseconds per delay;
  // each rounding stays within half a microsecond of the double sum.
  const double micros_ms =
      static_cast<double>(d.value("crawler.backoff.micros")) / 1000.0;
  EXPECT_NEAR(micros_ms, retry.backoff_ms,
              1e-3 * static_cast<double>(retry.retries + 1));
  // Every retried request recorded one delay sample in the histogram.
  EXPECT_EQ(d.value("crawler.backoff.delay_ms"),
            static_cast<std::int64_t>(retry.retries));
}

TEST(ObsRegistry, DegradedCrawlPublishesLostEdgeGauges) {
  Fixture fx;
  service::ServiceConfig config;
  config.faults.transient_rate = 0.30;
  config.faults.rate_limit_rate = 0.10;
  config.faults.truncation_rate = 0.10;
  auto svc = fx.service(config);
  CrawlConfig cconfig;
  cconfig.seed_node = 0;
  cconfig.retry.max_retries = 1;  // abandon into degraded expansions
  const auto crawl = run_bfs_crawl(svc, cconfig);
  ASSERT_GT(crawl.stats.degraded_users, 0u);

  auto& registry = obs::MetricsRegistry::global();
  const auto est = estimate_lost_edges(svc, crawl);
  const auto snap = registry.snapshot();

  EXPECT_EQ(snap.value("crawler.lost.degraded_users"),
            static_cast<std::int64_t>(est.degraded_users));
  EXPECT_EQ(snap.value("crawler.lost.users_over_cap"),
            static_cast<std::int64_t>(est.users_over_cap));
  EXPECT_EQ(snap.value("crawler.lost.displayed_total"),
            static_cast<std::int64_t>(est.displayed_total));
  EXPECT_EQ(snap.value("crawler.lost.collected_total"),
            static_cast<std::int64_t>(est.collected_total));
  EXPECT_EQ(snap.value("crawler.lost.fraction_ppm"),
            std::llround(est.lost_fraction * 1e6));
  EXPECT_EQ(snap.value("crawler.lost.fault_fraction_ppm"),
            std::llround(est.fault_lost_fraction * 1e6));
  EXPECT_GT(snap.value("crawler.lost.fault_fraction_ppm"), 0);
}

TEST(ObsRegistry, FleetCrawlMirrorsIntoTheSameCounters) {
  Fixture fx;
  service::ServiceConfig config;
  config.faults = modest_faults();
  auto svc = fx.service(config);
  FleetConfig fconfig;
  fconfig.seed_node = 0;

  auto& registry = obs::MetricsRegistry::global();
  const auto before = registry.snapshot();
  const auto fleet = run_crawl_fleet(svc, fconfig);
  const auto d = obs::delta(registry.snapshot(), before);

  EXPECT_EQ(d.value("crawler.fetch.attempts"),
            static_cast<std::int64_t>(fleet.crawl.stats.retry.attempts));
  EXPECT_EQ(d.value("crawler.fault.rate_limited"),
            static_cast<std::int64_t>(fleet.crawl.stats.retry.rate_limited));
  EXPECT_EQ(d.value("crawler.checkpoint.writes"),
            static_cast<std::int64_t>(fleet.crawl.stats.checkpoints_written));
}

TEST(FaultConfig, RejectsInvalidRates) {
  Fixture fx;
  service::ServiceConfig config;
  config.faults.transient_rate = 0.7;
  config.faults.rate_limit_rate = 0.4;  // sums past 1.0
  EXPECT_THROW(fx.service(config), std::invalid_argument);
  config = {};
  config.faults.transient_rate = -0.1;
  EXPECT_THROW(fx.service(config), std::invalid_argument);
  config = {};
  config.faults.slow_factor = 0.5;
  EXPECT_THROW(fx.service(config), std::invalid_argument);
}

}  // namespace
}  // namespace gplus::crawler
