#include "stats/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace gplus::stats {
namespace {

TEST(SplitMix64, ProducesKnownSequenceProperties) {
  std::uint64_t state = 0;
  const auto a = splitmix64_next(state);
  const auto b = splitmix64_next(state);
  EXPECT_NE(a, b);
  // Restarting from the same state reproduces the sequence.
  std::uint64_t state2 = 0;
  EXPECT_EQ(splitmix64_next(state2), a);
  EXPECT_EQ(splitmix64_next(state2), b);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(42);
  constexpr std::uint64_t kBound = 10;
  constexpr int kDraws = 100'000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBound)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBound, kDraws / kBound * 0.1);
  }
}

TEST(Rng, NextRangeInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.next_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextRangeSinglePoint) {
  Rng rng(5);
  EXPECT_EQ(rng.next_range(4, 4), 4);
}

TEST(Rng, NextRangeRejectsEmpty) {
  Rng rng(5);
  EXPECT_THROW(rng.next_range(2, 1), std::invalid_argument);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextDoubleMeanNearHalf) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.005);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
    EXPECT_FALSE(rng.next_bool(-1.0));
    EXPECT_TRUE(rng.next_bool(2.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) hits += rng.next_bool(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(23);
  double sum = 0.0;
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) sum += rng.next_exponential(2.0);
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(23);
  EXPECT_THROW(rng.next_exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.next_exponential(-1.0), std::invalid_argument);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(29);
  constexpr int kDraws = 200'000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double v = rng.next_normal(3.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kDraws;
  const double var = sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.03);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.03);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += parent.next_u64() == child.next_u64();
  EXPECT_LT(equal, 3);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> values(100);
  std::iota(values.begin(), values.end(), 0);
  auto shuffled = values;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, values);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(Rng, ShuffleHandlesSmallInputs) {
  Rng rng(37);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{5};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{5});
}

TEST(ZipfSampler, RejectsBadArguments) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(5, 0.0), std::invalid_argument);
}

TEST(ZipfSampler, SingleRankAlwaysOne) {
  ZipfSampler zipf(1, 1.0);
  Rng rng(41);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.sample(rng), 1u);
}

TEST(ZipfSampler, RanksWithinRangeAndMonotoneFrequency) {
  ZipfSampler zipf(50, 1.2);
  Rng rng(43);
  std::vector<int> counts(51, 0);
  for (int i = 0; i < 100'000; ++i) {
    const auto r = zipf.sample(rng);
    ASSERT_GE(r, 1u);
    ASSERT_LE(r, 50u);
    ++counts[r];
  }
  // Rank 1 strictly more popular than rank 5, which beats rank 25.
  EXPECT_GT(counts[1], counts[5]);
  EXPECT_GT(counts[5], counts[25]);
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UnitIntervalAndDeterminism) {
  Rng a(GetParam()), b(GetParam());
  for (int i = 0; i < 500; ++i) {
    const double v = a.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    EXPECT_EQ(v, b.next_double());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 0xFFFFFFFFULL,
                                           ~0ULL));

}  // namespace
}  // namespace gplus::stats
