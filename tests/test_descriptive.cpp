#include "stats/descriptive.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/rng.h"

namespace gplus::stats {
namespace {

TEST(Summarize, EmptyInputYieldsZeros) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Summarize, SingleValue) {
  const std::vector<double> v = {4.5};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 4.5);
  EXPECT_DOUBLE_EQ(s.variance, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 4.5);
  EXPECT_DOUBLE_EQ(s.max, 4.5);
}

TEST(Summarize, KnownSample) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.variance, 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Quantile, InterpolatesLinearly) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(median(v), 2.5);
}

TEST(Quantile, UnsortedInputHandled) {
  const std::vector<double> v = {9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(median(v), 5.0);
}

TEST(Quantile, RejectsBadArguments) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  const std::vector<double> v = {1.0};
  EXPECT_THROW(quantile(v, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile(v, 1.1), std::invalid_argument);
}

TEST(PearsonCorrelation, PerfectLinearRelations) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y_pos = {2.0, 4.0, 6.0, 8.0};
  const std::vector<double> y_neg = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson_correlation(x, y_pos), 1.0, 1e-12);
  EXPECT_NEAR(pearson_correlation(x, y_neg), -1.0, 1e-12);
}

TEST(PearsonCorrelation, ConstantSeriesGivesZero) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> y = {5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(pearson_correlation(x, y), 0.0);
}

TEST(PearsonCorrelation, RejectsMismatchedLengths) {
  const std::vector<double> x = {1.0, 2.0};
  const std::vector<double> y = {1.0};
  EXPECT_THROW(pearson_correlation(x, y), std::invalid_argument);
}

TEST(RunningStats, MatchesBatchSummary) {
  Rng rng(99);
  std::vector<double> values;
  RunningStats acc;
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.next_normal(10.0, 3.0);
    values.push_back(v);
    acc.add(v);
  }
  const Summary batch = summarize(values);
  EXPECT_EQ(acc.count(), batch.count);
  EXPECT_NEAR(acc.mean(), batch.mean, 1e-9);
  EXPECT_NEAR(acc.variance(), batch.variance, 1e-6);
  EXPECT_DOUBLE_EQ(acc.min(), batch.min);
  EXPECT_DOUBLE_EQ(acc.max(), batch.max);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(7);
  RunningStats whole, left, right;
  for (int i = 0; i < 5'000; ++i) {
    const double v = rng.next_double() * 100.0;
    whole.add(v);
    (i % 2 == 0 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a;
  RunningStats b;
  b.add(3.0);
  b.add(5.0);
  a.merge(b);  // empty.merge(non-empty)
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  RunningStats c;
  a.merge(c);  // non-empty.merge(empty)
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
}

TEST(RunningStats, EmptyAccessorsAreZero) {
  const RunningStats acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.min(), 0.0);
  EXPECT_EQ(acc.max(), 0.0);
}


TEST(KsTwoSample, IdenticalSamplesAreZero) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(ks_two_sample(a, a), 0.0);
}

TEST(KsTwoSample, DisjointSupportsAreOne) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {10.0, 11.0};
  EXPECT_DOUBLE_EQ(ks_two_sample(a, b), 1.0);
}

TEST(KsTwoSample, KnownHalfOverlap) {
  // a = {1, 2}, b = {2, 3}: max gap at x = 1 -> |0.5 - 0| = 0.5.
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {2.0, 3.0};
  EXPECT_DOUBLE_EQ(ks_two_sample(a, b), 0.5);
}

TEST(KsTwoSample, SameDistributionSmallStatistic) {
  Rng rng(77);
  std::vector<double> a, b;
  for (int i = 0; i < 20'000; ++i) {
    a.push_back(rng.next_normal(5.0, 2.0));
    b.push_back(rng.next_normal(5.0, 2.0));
  }
  EXPECT_LT(ks_two_sample(a, b), 0.03);
  // Shift one sample: the statistic reacts.
  for (auto& x : b) x += 1.0;
  EXPECT_GT(ks_two_sample(a, b), 0.15);
}

TEST(KsTwoSample, RejectsEmptySamples) {
  const std::vector<double> a = {1.0};
  EXPECT_THROW(ks_two_sample({}, a), std::invalid_argument);
  EXPECT_THROW(ks_two_sample(a, {}), std::invalid_argument);
}


TEST(BootstrapMeanCi, CoversTheTrueMean) {
  Rng gen(21);
  std::vector<double> sample;
  for (int i = 0; i < 2'000; ++i) sample.push_back(gen.next_normal(10.0, 3.0));
  Rng rng(22);
  const auto ci = bootstrap_mean_ci(sample, 500, rng);
  EXPECT_LT(ci.lower, ci.mean);
  EXPECT_GT(ci.upper, ci.mean);
  // True mean 10 inside the interval; width ~ 4 * sigma/sqrt(n) ~ 0.27.
  EXPECT_LT(ci.lower, 10.0);
  EXPECT_GT(ci.upper, 10.0);
  EXPECT_LT(ci.upper - ci.lower, 0.6);
}

TEST(BootstrapMeanCi, TightensWithSampleSize) {
  Rng gen(23);
  std::vector<double> small, large;
  for (int i = 0; i < 100; ++i) small.push_back(gen.next_normal(0.0, 1.0));
  for (int i = 0; i < 10'000; ++i) large.push_back(gen.next_normal(0.0, 1.0));
  Rng rng(24);
  const auto wide = bootstrap_mean_ci(small, 300, rng);
  const auto tight = bootstrap_mean_ci(large, 300, rng);
  EXPECT_GT(wide.upper - wide.lower, 3.0 * (tight.upper - tight.lower));
}

TEST(BootstrapMeanCi, Validation) {
  Rng rng(25);
  EXPECT_THROW(bootstrap_mean_ci({}, 100, rng), std::invalid_argument);
  const std::vector<double> v = {1.0, 2.0};
  EXPECT_THROW(bootstrap_mean_ci(v, 5, rng), std::invalid_argument);
}

}  // namespace
}  // namespace gplus::stats
