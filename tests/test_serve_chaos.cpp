// Resilience-layer tests: virtual-cost deadlines, priority-aware load
// shedding, snapshot hot-swap with canary rollback, degraded stale-cache
// serving, and the seeded chaos storm with its terminal-status invariant.
// The CTest ".threads1" variant re-runs every case under GPLUS_THREADS=1,
// and the thread-equivalence cases additionally flip the lane count
// in-process — the satellite extension of the equivalence gauntlet.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "core/dataset.h"
#include "core/parallel.h"
#include "obs/metrics.h"
#include "serve/resilience.h"
#include "serve/snapshot.h"

namespace gplus::serve {
namespace {

const core::Dataset& dataset_a() {
  static const core::Dataset instance = core::make_standard_dataset(3000, 7);
  return instance;
}

const core::Dataset& dataset_b() {
  static const core::Dataset instance = core::make_standard_dataset(3000, 8);
  return instance;
}

const SnapshotBuffer& snapshot_a() {
  static const SnapshotBuffer instance = build_snapshot(dataset_a());
  return instance;
}

const SnapshotBuffer& snapshot_b() {
  static const SnapshotBuffer instance = build_snapshot(dataset_b());
  return instance;
}

const SnapshotView& view_a() {
  static const SnapshotView instance{snapshot_a().bytes()};
  return instance;
}

std::uint32_t payload_u32(const Response& r, std::size_t at) {
  std::uint32_t v = 0;
  std::memcpy(&v, r.payload.data() + at, 4);
  return v;
}

// --- Deadlines ------------------------------------------------------------

TEST(DeadlineTest, CheapRequestsAlwaysBeatAnyPositiveBudget) {
  const RequestEngine engine(&view_a());
  Response r;
  for (const RequestType type :
       {RequestType::kGetProfile, RequestType::kReciprocity,
        RequestType::kDegree}) {
    Request q;
    q.type = type;
    q.user = 1;
    q.cost_budget = 1;  // the tightest possible deadline
    engine.execute(q, r);
    EXPECT_EQ(r.status, ServeStatus::kOk) << request_type_name(type);
    EXPECT_FALSE(r.partial());
    EXPECT_EQ(r.cost, 1u);
  }
}

TEST(DeadlineTest, ShortestPathAbortsPartialUnderTightBudget) {
  const RequestEngine engine(&view_a());
  Request q;
  q.type = RequestType::kShortestPath;
  q.user = 0;
  q.target = static_cast<graph::NodeId>(view_a().node_count() - 1);

  Response full;
  engine.execute(q, full);
  ASSERT_EQ(full.status, ServeStatus::kOk);
  ASSERT_GT(full.cost, 4u) << "need an expensive probe for this test";

  q.cost_budget = 4;
  Response partial;
  engine.execute(q, partial);
  EXPECT_EQ(partial.status, ServeStatus::kDeadlineExceeded);
  EXPECT_TRUE(partial.partial());
  EXPECT_EQ(partial.payload.size(), 12u);  // best-so-far + expanded
  EXPECT_LE(partial.cost, full.cost);

  // A budget at least the full cost changes nothing.
  q.cost_budget = static_cast<std::uint32_t>(full.cost);
  Response again;
  engine.execute(q, again);
  EXPECT_EQ(again.status, ServeStatus::kOk);
  EXPECT_EQ(again.payload, full.payload);
  EXPECT_EQ(again.cost, full.cost);
}

TEST(DeadlineTest, CirclePagePatchesCountOnAbort) {
  // Find a user with a reasonably large circle.
  graph::NodeId fat = 0;
  for (graph::NodeId u = 0; u < view_a().node_count(); ++u) {
    if (view_a().out_degree(u) > view_a().out_degree(fat)) fat = u;
  }
  ASSERT_GT(view_a().out_degree(fat), 8u);

  Request q;
  q.type = RequestType::kGetOutCircle;
  q.user = fat;
  q.limit = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(view_a().out_degree(fat), 1000));
  const RequestEngine engine(&view_a());

  q.cost_budget = 5;  // 1 dispatch + 4 entries
  Response r;
  engine.execute(q, r);
  EXPECT_EQ(r.status, ServeStatus::kDeadlineExceeded);
  EXPECT_TRUE(r.partial());
  EXPECT_EQ(payload_u32(r, 8), 4u);                  // patched count
  EXPECT_EQ(r.payload[12], 1u);                      // has_more
  EXPECT_EQ(r.payload.size(), 16u + 4u * 4u);        // header + 4 ids
  // The partial prefix matches the untimed page.
  Response full;
  Request unbounded = q;
  unbounded.cost_budget = 0;
  engine.execute(unbounded, full);
  ASSERT_EQ(full.status, ServeStatus::kOk);
  EXPECT_TRUE(std::equal(r.payload.begin() + 16, r.payload.end(),
                         full.payload.begin() + 16));
}

TEST(DeadlineTest, DeterministicOutcomePerBudget) {
  // The virtual clock never reads wall time: same (request, budget) →
  // same status, payload and cost, every time.
  const RequestEngine engine(&view_a());
  Request q;
  q.type = RequestType::kShortestPath;
  q.user = 3;
  q.target = 2900;
  for (const std::uint32_t budget : {0u, 2u, 16u, 64u, 1u << 20}) {
    q.cost_budget = budget;
    Response first;
    Response second;
    engine.execute(q, first);
    engine.execute(q, second);
    EXPECT_EQ(first.status, second.status) << budget;
    EXPECT_EQ(first.payload, second.payload) << budget;
    EXPECT_EQ(first.cost, second.cost) << budget;
  }
}

// --- Load shedding --------------------------------------------------------

Request degree_request(graph::NodeId user, Priority priority) {
  Request q;
  q.type = RequestType::kDegree;
  q.user = user;
  q.priority = priority;
  return q;
}

TEST(SheddingTest, HighPriorityShedsLowestFirst) {
  ServerConfig config;
  config.queue_capacity = 3;
  QueryServer server(&view_a(), config);

  ASSERT_EQ(server.submit(degree_request(0, Priority::kLow)), ServeStatus::kOk);
  ASSERT_EQ(server.submit(degree_request(1, Priority::kNormal)), ServeStatus::kOk);
  ASSERT_EQ(server.submit(degree_request(2, Priority::kLow)), ServeStatus::kOk);
  // Queue full. A normal arrival sheds the most recent kLow (user 2).
  EXPECT_EQ(server.submit(degree_request(3, Priority::kNormal)), ServeStatus::kOk);
  // Full again with live {low0, normal1, normal3}. High sheds the one
  // remaining live low (user 0).
  EXPECT_EQ(server.submit(degree_request(4, Priority::kHigh)), ServeStatus::kOk);
  // Full with {normal1, normal3, high4}: a normal arrival finds nothing
  // strictly below itself... except the normals. Strictly below kNormal
  // is only kLow — none left — so it is rejected.
  EXPECT_EQ(server.submit(degree_request(5, Priority::kNormal)),
            ServeStatus::kRejected);
  // A low arrival is rejected outright (nothing below kLow).
  EXPECT_EQ(server.submit(degree_request(6, Priority::kLow)),
            ServeStatus::kRejected);

  std::vector<Response> responses;
  server.drain(responses);
  // 5 admissions → 5 terminal responses: 2 shed, 3 served.
  ASSERT_EQ(responses.size(), 5u);
  EXPECT_EQ(responses[0].status, ServeStatus::kShed);    // low, shed by 4
  EXPECT_EQ(responses[1].status, ServeStatus::kOk);      // normal
  EXPECT_EQ(responses[2].status, ServeStatus::kShed);    // low, shed by 3
  EXPECT_EQ(responses[3].status, ServeStatus::kOk);      // normal
  EXPECT_EQ(responses[4].status, ServeStatus::kOk);      // high

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, 5u);
  EXPECT_EQ(stats.rejected, 2u);
  EXPECT_EQ(stats.shed, 2u);
  EXPECT_EQ(stats.shed_by_class[static_cast<std::size_t>(Priority::kLow)], 2u);
  EXPECT_EQ(stats.rejected_by_class[static_cast<std::size_t>(Priority::kNormal)], 1u);
  EXPECT_EQ(stats.rejected_by_class[static_cast<std::size_t>(Priority::kLow)], 1u);
  EXPECT_EQ(stats.admitted_by_class[static_cast<std::size_t>(Priority::kHigh)], 1u);
}

TEST(SheddingTest, WaitShedVictimIsSecondLowNotFirst) {
  ServerConfig config;
  config.queue_capacity = 2;
  QueryServer server(&view_a(), config);
  ASSERT_EQ(server.submit(degree_request(0, Priority::kLow)), ServeStatus::kOk);
  ASSERT_EQ(server.submit(degree_request(1, Priority::kLow)), ServeStatus::kOk);
  EXPECT_EQ(server.submit(degree_request(2, Priority::kHigh)), ServeStatus::kOk);
  std::vector<Response> responses;
  server.drain(responses);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[0].status, ServeStatus::kOk);    // oldest low survives
  EXPECT_EQ(responses[1].status, ServeStatus::kShed);  // most recent low shed
  EXPECT_EQ(responses[2].status, ServeStatus::kOk);
}

TEST(SheddingTest, QueuePressureCapsEffectiveCapacity) {
  ServerConfig config;
  config.queue_capacity = 100;
  QueryServer server(&view_a(), config);
  server.set_queue_pressure(2);
  ASSERT_EQ(server.submit(degree_request(0, Priority::kNormal)), ServeStatus::kOk);
  ASSERT_EQ(server.submit(degree_request(1, Priority::kNormal)), ServeStatus::kOk);
  EXPECT_EQ(server.submit(degree_request(2, Priority::kNormal)),
            ServeStatus::kRejected);
  server.set_queue_pressure(0);
  EXPECT_EQ(server.submit(degree_request(3, Priority::kNormal)), ServeStatus::kOk);
}

// --- Degraded mode --------------------------------------------------------

TEST(DegradedModeTest, ServesStaleCacheThenUnavailable) {
  ServerConfig config;
  QueryServer server(&view_a(), config);
  std::vector<Response> responses;

  Request profile;
  profile.type = RequestType::kGetProfile;
  profile.user = 5;
  ASSERT_EQ(server.submit(profile), ServeStatus::kOk);
  server.drain(responses);
  ASSERT_EQ(responses[0].status, ServeStatus::kOk);
  const std::vector<std::uint8_t> fresh_payload = responses[0].payload;

  server.rebind(nullptr);  // snapshot gone
  EXPECT_TRUE(server.degraded());
  EXPECT_EQ(server.engine(), nullptr);

  // Cached answer → kStaleCache with the cached payload.
  ASSERT_EQ(server.submit(profile), ServeStatus::kOk);
  // Uncached cacheable → kUnavailable. Non-cacheable → kUnavailable.
  Request other_profile = profile;
  other_profile.user = 6;
  ASSERT_EQ(server.submit(other_profile), ServeStatus::kOk);
  ASSERT_EQ(server.submit(degree_request(5, Priority::kNormal)), ServeStatus::kOk);
  server.drain(responses);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[0].status, ServeStatus::kStaleCache);
  EXPECT_EQ(responses[0].payload, fresh_payload);
  EXPECT_EQ(responses[1].status, ServeStatus::kUnavailable);
  EXPECT_EQ(responses[2].status, ServeStatus::kUnavailable);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.stale_served, 1u);
  EXPECT_EQ(stats.unavailable, 2u);
  EXPECT_EQ(stats.cache.stale_hits, 1u);

  // Rebinding brings full service back.
  server.rebind(&view_a());
  EXPECT_FALSE(server.degraded());
  ASSERT_EQ(server.submit(other_profile), ServeStatus::kOk);
  server.drain(responses);
  EXPECT_EQ(responses[0].status, ServeStatus::kOk);
}

// --- SnapshotManager ------------------------------------------------------

TEST(SnapshotManagerTest, InstallKillRollbackLifecycle) {
  SnapshotManager manager;
  EXPECT_TRUE(manager.degraded());
  EXPECT_EQ(manager.epoch(), 0u);
  EXPECT_FALSE(manager.rollback());

  const std::uint64_t e1 = manager.install(SnapshotBuffer(snapshot_a()));
  EXPECT_EQ(e1, 1u);
  EXPECT_FALSE(manager.degraded());
  ASSERT_NE(manager.active(), nullptr);
  EXPECT_EQ(manager.active()->node_count(), dataset_a().graph().node_count());

  const std::uint64_t e2 = manager.install(SnapshotBuffer(snapshot_b()));
  EXPECT_EQ(e2, 2u);
  EXPECT_EQ(manager.generation_count(), 2u);  // active + rollback target

  ASSERT_TRUE(manager.rollback());
  EXPECT_EQ(manager.epoch(), e1);
  EXPECT_FALSE(manager.can_rollback());  // the rolled-away gen is gone
  EXPECT_EQ(manager.generation_count(), 1u);

  manager.kill_active();
  EXPECT_TRUE(manager.degraded());
  EXPECT_EQ(manager.epoch(), 0u);
  ASSERT_TRUE(manager.rollback());  // kill keeps the rollback target
  EXPECT_EQ(manager.epoch(), e1);
}

TEST(SnapshotManagerTest, PinKeepsGenerationAliveAcrossSwaps) {
  SnapshotManager manager;
  manager.install(SnapshotBuffer(snapshot_a()));
  SnapshotManager::Pin pin = manager.pin_active();
  ASSERT_TRUE(pin);
  const std::size_t pinned_nodes = pin.view()->node_count();

  // Two installs push the pinned generation out of active AND rollback
  // slots; the pin must keep its bytes readable.
  manager.install(SnapshotBuffer(snapshot_b()));
  manager.install(SnapshotBuffer(snapshot_b()));
  EXPECT_EQ(manager.generation_count(), 3u);  // active + previous + pinned
  EXPECT_EQ(pin.view()->node_count(), pinned_nodes);
  EXPECT_EQ(pin.view()->out_degree(0), view_a().out_degree(0));

  pin.release();
  manager.reap();
  EXPECT_EQ(manager.generation_count(), 2u);
}

TEST(SnapshotManagerTest, ValidateCatchesCorruptCandidates) {
  EXPECT_EQ(SnapshotManager::validate(snapshot_a()), "");
  // Flip one profile byte and reseal nothing: deep validation names it.
  std::vector<std::uint64_t> words((snapshot_a().size() + 7) / 8, 0);
  std::memcpy(words.data(), snapshot_a().bytes().data(), snapshot_a().size());
  std::uint64_t profiles_off = 0;
  std::memcpy(&profiles_off,
              reinterpret_cast<const std::uint8_t*>(snapshot_a().bytes().data()) + 72,
              8);
  reinterpret_cast<std::uint8_t*>(words.data())[profiles_off + 2] ^= 0x10;
  SnapshotBuffer corrupt(std::move(words), snapshot_a().size());
  const std::string defect = SnapshotManager::validate(corrupt);
  EXPECT_NE(defect.find("profiles"), std::string::npos) << defect;
}

// --- ChaosSchedule --------------------------------------------------------

TEST(ChaosScheduleTest, PureAndSeedSensitive) {
  ChaosConfig config;
  config.seed = 1234;
  config.fault_rate = 0.2;
  config.slow_rate = 0.3;
  config.pressure_rate = 0.5;
  config.pressure_capacity = 7;
  const ChaosSchedule schedule(config);

  std::size_t faults = 0;
  std::size_t slows = 0;
  std::size_t pressured = 0;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    const auto events = schedule.request_events(i);
    const auto replay = schedule.request_events(i);
    EXPECT_EQ(events.fault, replay.fault);
    EXPECT_EQ(events.slow, replay.slow);
    faults += events.fault ? 1 : 0;
    slows += events.slow ? 1 : 0;
    const std::size_t p = schedule.pressure(i);
    EXPECT_EQ(p, schedule.pressure(i));
    EXPECT_TRUE(p == 0 || p == 7);
    pressured += p != 0 ? 1 : 0;
  }
  // Loose law-of-large-numbers bands.
  EXPECT_GT(faults, 200u);
  EXPECT_LT(faults, 700u);
  EXPECT_GT(slows, 350u);
  EXPECT_LT(slows, 900u);
  EXPECT_GT(pressured, 700u);
  EXPECT_LT(pressured, 1300u);

  ChaosConfig reseeded = config;
  reseeded.seed = 4321;
  const ChaosSchedule other(reseeded);
  std::size_t differing = 0;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    if (other.request_events(i).fault != schedule.request_events(i).fault) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0u);
}

// --- Hot-swap protocol ----------------------------------------------------

TEST(HotSwapTest, InstallValidatesSwapsAndRollsBack) {
  ResilientServer resilient;
  EXPECT_TRUE(resilient.degraded());

  // Corrupt candidates never reach service.
  std::vector<std::uint64_t> words((snapshot_a().size() + 7) / 8, 0);
  std::memcpy(words.data(), snapshot_a().bytes().data(), snapshot_a().size());
  reinterpret_cast<std::uint8_t*>(words.data())[200] ^= 0xFF;
  const InstallReport bad =
      resilient.install(SnapshotBuffer(std::move(words), snapshot_a().size()));
  EXPECT_FALSE(bad.installed);
  EXPECT_FALSE(bad.rolled_back);
  EXPECT_NE(bad.error.find("validate:"), std::string::npos) << bad.error;
  EXPECT_TRUE(resilient.degraded());

  const InstallReport ok = resilient.install(SnapshotBuffer(snapshot_a()));
  EXPECT_TRUE(ok.installed);
  EXPECT_EQ(ok.error, "");
  EXPECT_FALSE(resilient.degraded());
  const std::uint64_t epoch_a = ok.epoch;

  // Canary failure (forced): swapped in, canaried, backed out — the old
  // generation keeps serving.
  const InstallReport doomed =
      resilient.install(SnapshotBuffer(snapshot_b()),
                        /*force_canary_failure=*/true);
  EXPECT_FALSE(doomed.installed);
  EXPECT_TRUE(doomed.rolled_back);
  EXPECT_EQ(doomed.epoch, epoch_a);
  EXPECT_NE(doomed.error.find("canary"), std::string::npos);
  ASSERT_NE(resilient.server().engine(), nullptr);
  EXPECT_EQ(resilient.server().engine()->snapshot().node_count(),
            dataset_a().graph().node_count());

  // And the real swap commits.
  const InstallReport swapped = resilient.install(SnapshotBuffer(snapshot_b()));
  EXPECT_TRUE(swapped.installed);
  EXPECT_GT(swapped.epoch, epoch_a);
}

TEST(HotSwapTest, FailedCanaryKeepsCacheCommittedSwapClearsIt) {
  ResilientServer resilient;
  ASSERT_TRUE(resilient.install(SnapshotBuffer(snapshot_a())).installed);

  Request profile;
  profile.type = RequestType::kGetProfile;
  profile.user = 9;
  std::vector<Response> responses;
  ASSERT_EQ(resilient.submit(profile), ServeStatus::kOk);
  resilient.drain(responses);
  ASSERT_EQ(resilient.submit(profile), ServeStatus::kOk);
  resilient.drain(responses);
  ASSERT_EQ(resilient.stats().cache.hits, 1u);

  // A rolled-back install must not wipe still-valid entries.
  ASSERT_TRUE(resilient.install(SnapshotBuffer(snapshot_b()), true).rolled_back);
  ASSERT_EQ(resilient.submit(profile), ServeStatus::kOk);
  resilient.drain(responses);
  EXPECT_EQ(resilient.stats().cache.hits, 2u);

  // A committed swap serves a different graph: the cache must start over.
  ASSERT_TRUE(resilient.install(SnapshotBuffer(snapshot_b())).installed);
  EXPECT_EQ(resilient.stats().cache.entries, 0u);
  EXPECT_EQ(resilient.stats().cache.hits, 0u);
}

TEST(HotSwapTest, KillKeepsStaleCacheAndRollbackRestores) {
  ResilientServer resilient;
  ASSERT_TRUE(resilient.install(SnapshotBuffer(snapshot_a())).installed);
  Request profile;
  profile.type = RequestType::kGetProfile;
  profile.user = 11;
  std::vector<Response> responses;
  ASSERT_EQ(resilient.submit(profile), ServeStatus::kOk);
  resilient.drain(responses);
  const std::vector<std::uint8_t> payload = responses[0].payload;

  resilient.kill_active();
  EXPECT_TRUE(resilient.degraded());
  ASSERT_EQ(resilient.submit(profile), ServeStatus::kOk);
  resilient.drain(responses);
  EXPECT_EQ(responses[0].status, ServeStatus::kStaleCache);
  EXPECT_EQ(responses[0].payload, payload);

  ASSERT_TRUE(resilient.rollback());
  EXPECT_FALSE(resilient.degraded());
  // Same epoch as the cache was filled under: entries survive the
  // round-trip through degraded mode.
  ASSERT_EQ(resilient.submit(profile), ServeStatus::kOk);
  resilient.drain(responses);
  EXPECT_EQ(responses[0].status, ServeStatus::kOk);
  EXPECT_EQ(responses[0].payload, payload);
  EXPECT_GE(resilient.stats().cache.hits, 1u);
}

// --- The storm ------------------------------------------------------------

StormConfig storm_config() {
  StormConfig config;
  config.seed = 77;
  config.clients = 48;
  config.rounds = 96;
  config.probes = 128;
  config.chaos.fault_rate = 0.02;
  config.chaos.slow_rate = 0.08;
  config.chaos.slow_budget = 12;
  config.chaos.pressure_rate = 0.2;
  config.chaos.pressure_capacity = 16;
  config.server.queue_capacity = 32;
  config.server.cache_capacity = 1 << 10;
  return config;
}

TEST(ChaosStormTest, EveryRequestOneTerminalStatusNoSilentDrops) {
  const StormReport report =
      run_chaos_storm(snapshot_a(), snapshot_b(), storm_config());
  for (const std::string& violation : report.violations) {
    ADD_FAILURE() << violation;
  }
  EXPECT_TRUE(report.forced_rollback_fired);
  EXPECT_EQ(report.responses, report.accepted);
  EXPECT_EQ(report.offered, report.accepted + report.rejected);
  EXPECT_EQ(report.post_probe_checksum, report.fresh_probe_checksum);
  // The storm actually exercised every resilience channel.
  EXPECT_GT(report.by_status[static_cast<std::size_t>(ServeStatus::kShed)], 0u);
  EXPECT_GT(report.by_status[static_cast<std::size_t>(ServeStatus::kFaultInjected)], 0u);
  EXPECT_GT(report.by_status[static_cast<std::size_t>(ServeStatus::kUnavailable)], 0u);
  EXPECT_GT(report.server.deadline_exceeded, 0u);
  EXPECT_GT(report.rejected, 0u);
  std::uint64_t status_sum = 0;
  for (const std::uint64_t count : report.by_status) status_sum += count;
  EXPECT_EQ(status_sum, report.responses);
}

TEST(ChaosStormTest, BitIdenticalAcrossThreadCounts) {
  // The equivalence-gauntlet extension: deadlines + shedding + hot-swap
  // produce identical statuses, payloads (checksummed) and counters at
  // 1 lane and at 4.
  core::set_thread_count(1);
  const StormReport serial =
      run_chaos_storm(snapshot_a(), snapshot_b(), storm_config());
  core::set_thread_count(4);
  const StormReport parallel =
      run_chaos_storm(snapshot_a(), snapshot_b(), storm_config());
  core::set_thread_count(0);

  EXPECT_TRUE(serial.violations.empty());
  EXPECT_TRUE(parallel.violations.empty());
  EXPECT_EQ(serial.checksum, parallel.checksum);
  EXPECT_EQ(serial.by_status, parallel.by_status);
  EXPECT_EQ(serial.offered, parallel.offered);
  EXPECT_EQ(serial.accepted, parallel.accepted);
  EXPECT_EQ(serial.rejected, parallel.rejected);
  EXPECT_EQ(serial.final_epoch, parallel.final_epoch);
  EXPECT_EQ(serial.post_probe_checksum, parallel.post_probe_checksum);
  EXPECT_EQ(serial.server.shed, parallel.server.shed);
  EXPECT_EQ(serial.server.deadline_exceeded, parallel.server.deadline_exceeded);
  EXPECT_EQ(serial.server.fault_injected, parallel.server.fault_injected);
  EXPECT_EQ(serial.server.stale_served, parallel.server.stale_served);
  EXPECT_EQ(serial.server.unavailable, parallel.server.unavailable);
  EXPECT_EQ(serial.server.cache.hits, parallel.server.cache.hits);
  EXPECT_EQ(serial.server.cache.stale_hits, parallel.server.cache.stale_hits);
  EXPECT_EQ(serial.server.cache.misses, parallel.server.cache.misses);
  EXPECT_EQ(serial.server.cache.evictions, parallel.server.cache.evictions);
  EXPECT_EQ(serial.server.cache.entries, parallel.server.cache.entries);
  EXPECT_EQ(serial.server.per_type, parallel.server.per_type);
  EXPECT_EQ(serial.server.admitted_by_class, parallel.server.admitted_by_class);
  EXPECT_EQ(serial.server.rejected_by_class, parallel.server.rejected_by_class);
  EXPECT_EQ(serial.server.shed_by_class, parallel.server.shed_by_class);
}

TEST(ChaosStormTest, RegistryDeltaReconcilesWithStormBookkeeping) {
  // The serve metrics are mirrored at the same coordinator-thread choke
  // points that feed StormReport, so the registry delta across one storm
  // must match the report exactly. The post-storm probe streams (worn +
  // fresh server, probes each) are the only extra traffic, and they can
  // only terminate ok/invalid — every overload channel reconciles 1:1.
  auto& registry = obs::MetricsRegistry::global();
  const auto before = registry.snapshot();
  const StormReport report =
      run_chaos_storm(snapshot_a(), snapshot_b(), storm_config());
  const auto d = obs::delta(registry.snapshot(), before);
  ASSERT_TRUE(report.violations.empty());

  const auto by_status = [&](ServeStatus s) {
    return static_cast<std::int64_t>(
        report.by_status[static_cast<std::size_t>(s)]);
  };
  const std::uint64_t probes_run =
      report.post_probe_checksum != 0 ? storm_config().probes : 0;

  EXPECT_EQ(d.value("serve.status.rejected"),
            static_cast<std::int64_t>(report.rejected));
  EXPECT_EQ(d.value("serve.status.shed"), by_status(ServeStatus::kShed));
  EXPECT_EQ(d.value("serve.status.deadline-exceeded"),
            by_status(ServeStatus::kDeadlineExceeded));
  EXPECT_EQ(d.value("serve.status.fault-injected"),
            by_status(ServeStatus::kFaultInjected));
  EXPECT_EQ(d.value("serve.status.stale-cache"),
            by_status(ServeStatus::kStaleCache));
  EXPECT_EQ(d.value("serve.status.unavailable"),
            by_status(ServeStatus::kUnavailable));
  EXPECT_EQ(d.value("serve.shed"), by_status(ServeStatus::kShed));
  EXPECT_EQ(d.value("serve.rejected"),
            static_cast<std::int64_t>(report.rejected));
  EXPECT_EQ(d.value("serve.accepted"),
            static_cast<std::int64_t>(report.accepted + 2 * probes_run));
  EXPECT_EQ(d.value("serve.served"),
            static_cast<std::int64_t>(report.responses + 2 * probes_run));

  // The storm's headline invariant, restated through the registry: every
  // offered request reached exactly one terminal status.
  std::int64_t terminal = 0;
  for (std::size_t s = 0; s < kServeStatusCount; ++s) {
    terminal += d.value(
        "serve.status." +
        std::string(serve_status_name(static_cast<ServeStatus>(s))));
  }
  EXPECT_EQ(terminal,
            static_cast<std::int64_t>(report.offered + 2 * probes_run));

  // The per-type cost histograms only ever record real engine executions:
  // their sample-count delta can never exceed the admitted traffic.
  std::int64_t cost_samples = 0;
  for (std::size_t t = 0; t < kRequestTypeCount; ++t) {
    cost_samples += d.value(
        "serve.cost." +
        std::string(request_type_name(static_cast<RequestType>(t))));
  }
  EXPECT_GT(cost_samples, 0);
  EXPECT_LE(cost_samples,
            static_cast<std::int64_t>(report.accepted + 2 * probes_run));
}

TEST(ChaosStormTest, GPSNAP01SnapshotStillServesThroughTheStorm) {
  // The acceptance guarantee: a legacy v1 snapshot opens and serves
  // unchanged — including through the full resilience stack (validate
  // simply has no digests to check).
  SnapshotOptions options;
  options.version = kSnapshotVersion1;
  const SnapshotBuffer v1_a = build_snapshot(dataset_a(), options);
  const SnapshotBuffer v1_b = build_snapshot(dataset_b(), options);
  ASSERT_EQ(SnapshotManager::validate(v1_a), "");

  const StormReport v1 = run_chaos_storm(v1_a, v1_b, storm_config());
  EXPECT_TRUE(v1.violations.empty());
  // Serving is version-independent: the v1 storm equals the v2 storm
  // byte for byte (the digest table is metadata, not served data).
  const StormReport v2 = run_chaos_storm(snapshot_a(), snapshot_b(), storm_config());
  EXPECT_EQ(v1.checksum, v2.checksum);
  EXPECT_EQ(v1.by_status, v2.by_status);
  EXPECT_EQ(v1.post_probe_checksum, v2.post_probe_checksum);
}

}  // namespace
}  // namespace gplus::serve
