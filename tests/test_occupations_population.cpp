#include <gtest/gtest.h>

#include <map>

#include "stats/rng.h"
#include "synth/occupations.h"
#include "synth/population.h"

namespace gplus::synth {
namespace {

TEST(Occupations, CalibratedRowsMatchTable5Flavor) {
  const auto us = *geo::find_country("US");
  const auto es = *geo::find_country("ES");
  const auto it_country = *geo::find_country("IT");
  const auto mx = *geo::find_country("MX");

  const auto us_w = celebrity_occupation_weights(us);
  // US row is IT + musician heavy.
  EXPECT_GT(us_w[static_cast<std::size_t>(Occupation::kInformationTech)], 2.0);
  EXPECT_GT(us_w[static_cast<std::size_t>(Occupation::kMusician)], 2.0);
  // No politicians in the US top list.
  EXPECT_LT(us_w[static_cast<std::size_t>(Occupation::kPolitician)], 0.5);

  // Spain is the only country with politicians among the top users.
  const auto es_w = celebrity_occupation_weights(es);
  EXPECT_GT(es_w[static_cast<std::size_t>(Occupation::kPolitician)], 2.0);

  // Italy is journalist-heavy.
  const auto it_w = celebrity_occupation_weights(it_country);
  EXPECT_GT(it_w[static_cast<std::size_t>(Occupation::kJournalist)], 3.0);

  // Mexico is dominated by musicians (5 of 10).
  const auto mx_w = celebrity_occupation_weights(mx);
  EXPECT_GT(mx_w[static_cast<std::size_t>(Occupation::kMusician)], 4.0);
}

TEST(Occupations, UncalibratedCountryFallsBackToGlobalMix) {
  const auto kr = *geo::find_country("KR");
  const auto fallback = celebrity_occupation_weights(kr);
  const auto no_country = celebrity_occupation_weights(geo::kNoCountry);
  for (std::size_t i = 0; i < kOccupationCount; ++i) {
    EXPECT_DOUBLE_EQ(fallback[i], no_country[i]);
  }
  // Global mix is IT-dominated (7 of the paper's top 20).
  EXPECT_GT(fallback[static_cast<std::size_t>(Occupation::kInformationTech)],
            fallback[static_cast<std::size_t>(Occupation::kMusician)]);
}

TEST(Occupations, SamplersProduceCalibratedFrequencies) {
  stats::Rng rng(1);
  const auto mx = *geo::find_country("MX");
  std::map<Occupation, int> counts;
  constexpr int kDraws = 20'000;
  for (int i = 0; i < kDraws; ++i) ++counts[sample_celebrity_occupation(mx, rng)];
  // Musicians carry 5 + smoothing of ~13 total weight ≈ 40%.
  EXPECT_NEAR(static_cast<double>(counts[Occupation::kMusician]) / kDraws, 0.40,
              0.05);
}

TEST(Occupations, OrdinarySamplerCoversEnum) {
  stats::Rng rng(2);
  std::map<Occupation, int> counts;
  for (int i = 0; i < 50'000; ++i) ++counts[sample_ordinary_occupation(rng)];
  // Smoothing keeps every occupation possible.
  EXPECT_EQ(counts.size(), kOccupationCount);
}

TEST(Population, SharesSumToOne) {
  const PopulationModel model;
  double total = 0.0;
  for (geo::CountryId c = 0; c < geo::country_count(); ++c) {
    total += model.params(c).user_share;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Population, CalibratedSharesMatchTable3) {
  const PopulationModel model;
  EXPECT_NEAR(model.params(*geo::find_country("US")).user_share, 0.3138, 1e-9);
  EXPECT_NEAR(model.params(*geo::find_country("IN")).user_share, 0.1671, 1e-9);
  EXPECT_NEAR(model.params(*geo::find_country("BR")).user_share, 0.0576, 1e-9);
}

TEST(Population, SampleCountryMatchesShares) {
  const PopulationModel model;
  stats::Rng rng(3);
  std::vector<int> counts(geo::country_count(), 0);
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) ++counts[model.sample_country(rng)];
  const auto us = *geo::find_country("US");
  EXPECT_NEAR(static_cast<double>(counts[us]) / kDraws, 0.3138, 0.01);
}

TEST(Population, OpennessOrderingFollowsFig8) {
  const PopulationModel model;
  const auto openness = [&](const char* code) {
    return model.params(*geo::find_country(code)).openness_mean;
  };
  // Fig 8: Indonesia and Mexico most open, Germany most conservative.
  EXPECT_GT(openness("ID"), openness("US"));
  EXPECT_GT(openness("MX"), openness("GB"));
  EXPECT_LT(openness("DE"), openness("IN"));
  for (geo::CountryId c = 0; c < geo::country_count(); ++c) {
    EXPECT_LT(openness("DE"), model.params(c).openness_mean + 1e-12);
  }
}

TEST(Population, TelMultipliersFollowTable3) {
  const PopulationModel model;
  const auto mult = [&](const char* code) {
    return model.params(*geo::find_country(code)).tel_multiplier;
  };
  EXPECT_LT(mult("US"), 0.5);   // US heavily under-represented among tel-users
  EXPECT_GT(mult("IN"), 1.5);   // India over-represented ~2x
  EXPECT_GT(mult("IN"), mult("BR"));
}

TEST(Population, MixingRowsAreDistributions) {
  const PopulationModel model;
  for (geo::CountryId c = 0; c < geo::country_count(); ++c) {
    const auto row = model.mixing_row(c);
    double total = 0.0;
    for (double w : row) {
      EXPECT_GE(w, 0.0);
      total += w;
    }
    EXPECT_NEAR(total, 1.0, 1e-9) << geo::country(c).code;
  }
}

TEST(Population, SelfLinkWeightsMatchFig10) {
  const PopulationModel model;
  const auto self = [&](const char* code) {
    const auto id = *geo::find_country(code);
    return model.mixing_row(id)[id];
  };
  EXPECT_NEAR(self("US"), 0.79, 1e-9);
  EXPECT_NEAR(self("GB"), 0.30, 1e-9);
  EXPECT_NEAR(self("BR"), 0.78, 1e-9);
  // Inward-looking countries beat outward-looking ones.
  EXPECT_GT(self("IN"), self("CA"));
  EXPECT_GT(self("ID"), self("DE"));
}

TEST(Population, CrossCountryMassFlowsToUs) {
  const PopulationModel model;
  const auto us = *geo::find_country("US");
  const auto gb = *geo::find_country("GB");
  const auto row = model.mixing_row(gb);
  // The US is GB's largest foreign destination (Fig 10: 0.36).
  for (geo::CountryId c = 0; c < geo::country_count(); ++c) {
    if (c == gb || c == us) continue;
    EXPECT_GT(row[us], row[c]);
  }
  EXPECT_GT(row[us], 0.2);
}

TEST(Population, SampleTargetCountryHonorsRow) {
  const PopulationModel model;
  stats::Rng rng(5);
  const auto br = *geo::find_country("BR");
  int self = 0;
  constexpr int kDraws = 50'000;
  for (int i = 0; i < kDraws; ++i) {
    self += model.sample_target_country(br, rng) == br;
  }
  EXPECT_NEAR(static_cast<double>(self) / kDraws, 0.78, 0.02);
}

TEST(Population, InvalidIdsRejected) {
  const PopulationModel model;
  EXPECT_THROW(model.params(geo::country_count()), std::invalid_argument);
  EXPECT_THROW(model.mixing_row(geo::kNoCountry), std::invalid_argument);
}

}  // namespace
}  // namespace gplus::synth
