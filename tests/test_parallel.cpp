#include "core/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "algo/bfs.h"
#include "graph/builder.h"

namespace gplus::core {
namespace {

// Restores the default lane count after every test so the process-global
// pool never leaks a test's thread-count override into later suites.
class ParallelTest : public ::testing::Test {
 protected:
  void TearDown() override { set_thread_count(0); }
};

TEST_F(ParallelTest, EmptyRangeNeverInvokesBody) {
  std::atomic<int> calls{0};
  parallel_for(0, 16, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  const int reduced = parallel_reduce(
      0, 16, 41, [&](std::size_t, std::size_t, int&) { ++calls; },
      [](int&, const int&) {});
  EXPECT_EQ(reduced, 41);  // identity comes back untouched
  EXPECT_EQ(calls.load(), 0);
}

TEST_F(ParallelTest, RangeSmallerThanGrainRunsOnce) {
  set_thread_count(4);
  std::atomic<int> calls{0};
  std::size_t seen_begin = 99, seen_end = 0;
  parallel_for(5, 100, [&](std::size_t begin, std::size_t end) {
    ++calls;
    seen_begin = begin;
    seen_end = end;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen_begin, 0u);
  EXPECT_EQ(seen_end, 5u);
}

TEST_F(ParallelTest, EveryIndexVisitedExactlyOnce) {
  set_thread_count(7);  // more lanes than this host has cores — still fine
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> visits(kN);
  parallel_for(kN, 64, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) visits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST_F(ParallelTest, ChunkGridIsThreadCountIndependent) {
  EXPECT_EQ(detail::chunk_count(0, 8), 0u);
  EXPECT_EQ(detail::chunk_count(1, 8), 1u);
  EXPECT_EQ(detail::chunk_count(8, 8), 1u);
  EXPECT_EQ(detail::chunk_count(9, 8), 2u);
  EXPECT_EQ(detail::chunk_count(100, 0), 100u);  // grain 0 clamps to 1
}

TEST_F(ParallelTest, ReduceSumsIntegersExactly) {
  set_thread_count(4);
  constexpr std::size_t kN = 100'001;
  const auto total = parallel_reduce(
      kN, 1000, std::uint64_t{0},
      [](std::size_t begin, std::size_t end, std::uint64_t& acc) {
        for (std::size_t i = begin; i < end; ++i) acc += i;
      },
      [](std::uint64_t& into, const std::uint64_t& from) { into += from; });
  EXPECT_EQ(total, std::uint64_t{kN} * (kN - 1) / 2);
}

TEST_F(ParallelTest, DoubleReduceIsBitIdenticalAcrossThreadCounts) {
  // The combine tree is fixed by (n, grain), so a floating-point sum must
  // not move by a single ulp when the lane count changes.
  constexpr std::size_t kN = 50'000;
  std::vector<double> values(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    values[i] = 1.0 / static_cast<double>(i + 1);
  }
  auto sum = [&] {
    return parallel_reduce(
        kN, 512, 0.0,
        [&](std::size_t begin, std::size_t end, double& acc) {
          for (std::size_t i = begin; i < end; ++i) acc += values[i];
        },
        [](double& into, const double& from) { into += from; });
  };
  set_thread_count(1);
  const double serial = sum();
  for (std::size_t threads : {2u, 3u, 7u}) {
    set_thread_count(threads);
    EXPECT_EQ(serial, sum()) << threads << " threads";
  }
}

TEST_F(ParallelTest, WorkerExceptionPropagatesToCaller) {
  set_thread_count(4);
  EXPECT_THROW(
      parallel_for(1000, 10,
                   [](std::size_t begin, std::size_t) {
                     if (begin == 500) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // The pool must survive a throwing region.
  std::atomic<std::size_t> visited{0};
  parallel_for(100, 10, [&](std::size_t begin, std::size_t end) {
    visited.fetch_add(end - begin);
  });
  EXPECT_EQ(visited.load(), 100u);
}

TEST_F(ParallelTest, NestedParallelCallsRunInline) {
  set_thread_count(4);
  constexpr std::size_t kOuter = 64;
  constexpr std::size_t kInner = 128;
  std::vector<std::atomic<std::size_t>> counts(kOuter);
  parallel_for(kOuter, 4, [&](std::size_t begin, std::size_t end) {
    for (std::size_t o = begin; o < end; ++o) {
      // A kernel calling another ported kernel reaches this path.
      const auto inner = parallel_reduce(
          kInner, 16, std::size_t{0},
          [](std::size_t b, std::size_t e, std::size_t& acc) { acc += e - b; },
          [](std::size_t& into, const std::size_t& from) { into += from; });
      counts[o].store(inner);
    }
  });
  for (std::size_t o = 0; o < kOuter; ++o) {
    EXPECT_EQ(counts[o].load(), kInner);
  }
}

TEST_F(ParallelTest, SetThreadCountIsObservable) {
  set_thread_count(5);
  EXPECT_EQ(thread_count(), 5u);
  set_thread_count(1);
  EXPECT_EQ(thread_count(), 1u);
  set_thread_count(0);  // back to GPLUS_THREADS / hardware default
  EXPECT_GE(thread_count(), 1u);
}

TEST_F(ParallelTest, SingleLaneNeverSpawnsWorkers) {
  set_thread_count(1);
  const std::size_t before = pool_threads_spawned();
  std::size_t total = 0;
  parallel_for(10'000, 100, [&](std::size_t begin, std::size_t end) {
    total += end - begin;  // single lane: no race
  });
  EXPECT_EQ(total, 10'000u);
  EXPECT_EQ(pool_threads_spawned(), before);
}

TEST_F(ParallelTest, ConcurrentBfsCallsDoNotExplodeThreadCount) {
  // Regression for the old bfs.cpp fan-out, which spawned
  // hardware_concurrency() fresh threads per call: eight concurrent
  // estimates would start 8 * hw threads. With the shared pool the worker
  // set is created once; concurrent submitters only wait their turn.
  graph::GraphBuilder b;
  stats::Rng gen(11);
  for (int i = 0; i < 4000; ++i) {
    b.add_edge(static_cast<graph::NodeId>(gen.next_below(500)),
               static_cast<graph::NodeId>(gen.next_below(500)));
  }
  const auto g = b.build();

  set_thread_count(3);
  // Warm the pool so its (one-time) worker spawn is not counted below.
  parallel_for(16, 1, [](std::size_t, std::size_t) {});
  const std::size_t spawned_before = pool_threads_spawned();

  constexpr std::size_t kCallers = 8;
  std::vector<algo::PathLengthEstimate> results(kCallers);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      algo::PathLengthOptions opt;
      opt.initial_sources = 40;
      opt.max_sources = 80;
      opt.threads = 0;  // shared pool
      stats::Rng rng(123);
      results[c] = algo::estimate_path_lengths(g, opt, rng);
    });
  }
  for (auto& caller : callers) caller.join();

  EXPECT_EQ(pool_threads_spawned(), spawned_before)
      << "BFS fan-out spawned ad-hoc threads instead of reusing the pool";
  // Same seed + deterministic fan-out: every caller got the same answer.
  for (std::size_t c = 1; c < kCallers; ++c) {
    ASSERT_EQ(results[c].pmf.size(), results[0].pmf.size());
    for (std::size_t h = 0; h < results[0].pmf.size(); ++h) {
      EXPECT_DOUBLE_EQ(results[c].pmf[h], results[0].pmf[h]);
    }
    EXPECT_EQ(results[c].sources_used, results[0].sources_used);
  }
}

TEST(ParallelEnv, StrictParserAcceptsSaneLaneCounts) {
  EXPECT_EQ(parse_thread_count_env("1"), 1u);
  EXPECT_EQ(parse_thread_count_env("8"), 8u);
  EXPECT_EQ(parse_thread_count_env("4096"), 4096u);
}

// A typo'd GPLUS_THREADS must fail fast with a one-line diagnostic, not
// silently fall back to hardware concurrency: the determinism contract is
// per lane count, so running at an unintended one invalidates a repro.
TEST(ParallelEnvDeathTest, InvalidLaneCountsFailFast) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto died = ::testing::ExitedWithCode(2);
  EXPECT_EXIT(parse_thread_count_env("0"), died, "invalid GPLUS_THREADS");
  EXPECT_EXIT(parse_thread_count_env("-4"), died, "invalid GPLUS_THREADS");
  EXPECT_EXIT(parse_thread_count_env("4097"), died, "invalid GPLUS_THREADS");
  EXPECT_EXIT(parse_thread_count_env("8cores"), died, "invalid GPLUS_THREADS");
  EXPECT_EXIT(parse_thread_count_env("fast"), died, "invalid GPLUS_THREADS");
  EXPECT_EXIT(parse_thread_count_env(""), died, "invalid GPLUS_THREADS");
  EXPECT_EXIT(parse_thread_count_env("99999999999999999999"), died,
              "invalid GPLUS_THREADS");
}

}  // namespace
}  // namespace gplus::core
