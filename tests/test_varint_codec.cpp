// Varint gap-codec battery: golden byte sequences pinning the wire
// format, a 10k-list seeded fuzz of encode→decode identity (empty,
// single, dense, max-ID shapes), skip_to/contains equivalence with the
// linear walk, and truncation/corruption safety (fail closed, no OOB).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "serve/varint.h"
#include "stats/rng.h"

namespace gplus::serve {
namespace {

std::vector<std::uint8_t> encode(const std::vector<graph::NodeId>& list) {
  std::vector<std::uint8_t> out;
  encode_adjacency_list(list, out);
  return out;
}

std::vector<graph::NodeId> decode_all(const std::vector<std::uint8_t>& bytes) {
  AdjacencyListDecoder dec(bytes.data(), bytes.data() + bytes.size());
  EXPECT_TRUE(dec.ok());
  std::vector<graph::NodeId> out;
  graph::NodeId v = 0;
  while (dec.next(v)) out.push_back(v);
  return out;
}

TEST(VarintCodec, PrimitiveGoldenBytes) {
  // LEB128, low groups first — the protobuf wire order. These bytes are
  // the format: changing them breaks every snapshot on disk.
  const std::pair<std::uint64_t, std::vector<std::uint8_t>> golden[] = {
      {0, {0x00}},
      {1, {0x01}},
      {127, {0x7F}},
      {128, {0x80, 0x01}},
      {300, {0xAC, 0x02}},
      {16383, {0xFF, 0x7F}},
      {16384, {0x80, 0x80, 0x01}},
      {0xFFFFFFFFULL, {0xFF, 0xFF, 0xFF, 0xFF, 0x0F}},
      {~std::uint64_t{0},
       {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}},
  };
  for (const auto& [value, want] : golden) {
    std::vector<std::uint8_t> out;
    put_varint(out, value);
    EXPECT_EQ(out, want) << value;
    EXPECT_EQ(varint_size(value), want.size()) << value;
    std::uint64_t back = 0;
    const auto* end = get_varint(out.data(), out.data() + out.size(), back);
    ASSERT_NE(end, nullptr) << value;
    EXPECT_EQ(end, out.data() + out.size()) << value;
    EXPECT_EQ(back, value);
  }
}

TEST(VarintCodec, AdjacencyListGoldenBytes) {
  // degree 3, restart 5 absolute, then gaps-minus-one 1 and 93.
  EXPECT_EQ(encode({5, 7, 101}),
            (std::vector<std::uint8_t>{0x03, 0x05, 0x01, 0x5D}));
  // Empty list: just the degree.
  EXPECT_EQ(encode({}), (std::vector<std::uint8_t>{0x00}));
  // Adjacent ids encode as gap 0 after the -1.
  EXPECT_EQ(encode({0, 1, 2}),
            (std::vector<std::uint8_t>{0x03, 0x00, 0x00, 0x00}));
}

TEST(VarintCodec, SkipTableGoldenLayout) {
  // 65 entries = two blocks: one u32 skip entry, then block 0 (64
  // entries) and block 1 (the 65th). With ids 0..64 block 0 encodes as
  // 0x00 then 63 gap bytes of 0x00; the skip entry must say block 1
  // starts 64 bytes after block 0 does, and block 1 restarts at 64.
  std::vector<graph::NodeId> list(65);
  for (std::uint32_t i = 0; i < 65; ++i) list[i] = i;
  const auto bytes = encode(list);
  ASSERT_EQ(bytes.size(), 1 + 4 + 64 + 1);  // degree, skip, block0, block1
  EXPECT_EQ(bytes[0], 65);                  // degree varint
  const std::uint32_t skip = static_cast<std::uint32_t>(bytes[1]) |
                             (static_cast<std::uint32_t>(bytes[2]) << 8) |
                             (static_cast<std::uint32_t>(bytes[3]) << 16) |
                             (static_cast<std::uint32_t>(bytes[4]) << 24);
  EXPECT_EQ(skip, 64u);
  EXPECT_EQ(bytes[5], 0x00);   // block 0 restart: absolute 0
  EXPECT_EQ(bytes[69], 0x40);  // block 1 restart: absolute 64
  EXPECT_EQ(decode_all(bytes), list);
}

std::vector<graph::NodeId> random_list(stats::Rng& rng) {
  // Shape mix: empty, singleton, short, dense runs, and sparse lists over
  // the full u32 id range including the max id.
  const std::uint64_t shape = rng.next_below(6);
  std::size_t count = 0;
  std::uint64_t span = 0;
  switch (shape) {
    case 0: return {};
    case 1: count = 1, span = ~std::uint32_t{0}; break;
    case 2: count = 1 + rng.next_below(64), span = 4096; break;        // dense
    case 3: count = 1 + rng.next_below(300), span = 1u << 20; break;
    case 4: count = 1 + rng.next_below(2000), span = ~std::uint32_t{0}; break;
    default: count = 64 + rng.next_below(3) - 1, span = 1u << 18; break;
  }
  std::vector<graph::NodeId> list;
  list.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    list.push_back(static_cast<graph::NodeId>(rng.next_below(span + 1)));
  }
  std::sort(list.begin(), list.end());
  list.erase(std::unique(list.begin(), list.end()), list.end());
  if (shape == 1) list.back() = ~std::uint32_t{0};  // pin the max id
  return list;
}

TEST(VarintCodec, FuzzEncodeDecodeIdentity) {
  stats::Rng rng(2026);
  for (int round = 0; round < 10'000; ++round) {
    const auto list = random_list(rng);
    const auto bytes = encode(list);
    ASSERT_EQ(decode_all(bytes), list) << "round " << round;
  }
}

TEST(VarintCodec, FuzzSkipToMatchesLinearWalk) {
  stats::Rng rng(7);
  for (int round = 0; round < 2'000; ++round) {
    const auto list = random_list(rng);
    const auto bytes = encode(list);
    // Every entry reachable by skip, including across block boundaries.
    const std::size_t step = 1 + rng.next_below(70);
    for (std::size_t at = 0; at <= list.size(); at += step) {
      AdjacencyListDecoder dec(bytes.data(), bytes.data() + bytes.size());
      ASSERT_TRUE(dec.skip_to(at)) << round << ":" << at;
      EXPECT_EQ(dec.position(), at);
      graph::NodeId v = 0;
      if (at == list.size()) {
        EXPECT_FALSE(dec.next(v));
      } else {
        ASSERT_TRUE(dec.next(v)) << round << ":" << at;
        EXPECT_EQ(v, list[at]) << round << ":" << at;
      }
    }
    AdjacencyListDecoder past(bytes.data(), bytes.data() + bytes.size());
    EXPECT_FALSE(past.skip_to(list.size() + 1));
  }
}

TEST(VarintCodec, FuzzContainsMatchesBinarySearch) {
  stats::Rng rng(99);
  for (int round = 0; round < 2'000; ++round) {
    const auto list = random_list(rng);
    const auto bytes = encode(list);
    AdjacencyListDecoder dec(bytes.data(), bytes.data() + bytes.size());
    for (int probe = 0; probe < 16; ++probe) {
      graph::NodeId v;
      if (!list.empty() && rng.next_bool(0.5)) {
        v = list[rng.next_below(list.size())];  // guaranteed hit
      } else {
        v = static_cast<graph::NodeId>(rng.next_below(~std::uint32_t{0}));
      }
      const bool want = std::binary_search(list.begin(), list.end(), v);
      EXPECT_EQ(dec.contains(v), want) << round << " probing " << v;
    }
  }
}

TEST(VarintCodec, TruncationFailsClosedAtEveryLength) {
  stats::Rng rng(5);
  for (int round = 0; round < 200; ++round) {
    const auto list = random_list(rng);
    const auto bytes = encode(list);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      AdjacencyListDecoder dec(bytes.data(), bytes.data() + cut);
      graph::NodeId v = 0;
      std::size_t decoded = 0;
      // May yield a prefix; must stop cleanly without reading past `cut`.
      while (decoded <= list.size() && dec.next(v)) {
        EXPECT_EQ(v, list[decoded]) << "prefix diverged";
        ++decoded;
      }
      EXPECT_LE(decoded, list.size());
    }
  }
}

TEST(VarintCodec, OverlongAndOversizedVarintsAreRejected) {
  // 11 continuation bytes: longer than any valid u64 varint.
  const std::uint8_t overlong[] = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
                                   0xFF, 0xFF, 0xFF, 0xFF, 0x01};
  std::uint64_t v = 0;
  EXPECT_EQ(get_varint(overlong, overlong + sizeof overlong, v), nullptr);
  // Ten bytes whose top byte sets bits above 2^64.
  const std::uint8_t oversized[] = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
                                    0xFF, 0xFF, 0xFF, 0xFF, 0x7F};
  EXPECT_EQ(get_varint(oversized, oversized + sizeof oversized, v), nullptr);
  // All-continuation truncated stream.
  const std::uint8_t endless[] = {0x80, 0x80, 0x80};
  EXPECT_EQ(get_varint(endless, endless + sizeof endless, v), nullptr);
}

TEST(VarintCodec, CorruptByteFuzzNeverReadsOutOfBounds) {
  // Flip every byte of encodings (one at a time) and walk next/skip_to/
  // contains to exhaustion: ASan/UBSan turn any OOB into a test failure.
  stats::Rng rng(31);
  for (int round = 0; round < 100; ++round) {
    const auto list = random_list(rng);
    const auto clean = encode(list);
    for (std::size_t at = 0; at < clean.size(); ++at) {
      auto bytes = clean;
      bytes[at] ^= 0xFF;
      AdjacencyListDecoder dec(bytes.data(), bytes.data() + bytes.size());
      graph::NodeId v = 0;
      std::size_t guard = 0;
      while (guard++ <= list.size() + 2 && dec.next(v)) {
      }
      AdjacencyListDecoder skipper(bytes.data(), bytes.data() + bytes.size());
      skipper.skip_to(skipper.degree() / 2);
      skipper.next(v);
      AdjacencyListDecoder prober(bytes.data(), bytes.data() + bytes.size());
      prober.contains(42);
    }
  }
}

}  // namespace
}  // namespace gplus::serve
