// Deterministic transport fault layer (serve/transport.h, DESIGN.md §15):
// seeded schedule purity, timeout -> retry -> hedge escalation, circuit
// breaker transitions, quorum-partial degradation pinned byte-for-byte
// against dark-shard degradation, duplicate/reorder absorption, and the
// transport-enabled cluster storm (registry reconciliation + 1-vs-N
// thread bit-identity). Runs under the .threads1 CTest variant too.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/dataset.h"
#include "core/parallel.h"
#include "obs/metrics.h"
#include "serve/cluster.h"
#include "serve/snapshot.h"
#include "serve/snapshot_build.h"
#include "serve/transport.h"

namespace gplus::serve {
namespace {

constexpr std::size_t kNodes = 2000;

const core::Dataset& dataset() {
  static const core::Dataset instance = core::make_standard_dataset(kNodes, 29);
  return instance;
}

const SnapshotView& full_view() {
  static const SnapshotBuffer snapshot = build_snapshot(dataset());
  static const SnapshotView instance{snapshot.bytes()};
  return instance;
}

const ShardedSnapshot& sharded4() {
  static const ShardedSnapshot instance = [] {
    ShardingOptions opts;
    opts.shard_count = 4;
    return split_snapshot(full_view(), opts);
  }();
  return instance;
}

std::vector<const SnapshotView*> open_shards(std::vector<SnapshotView>& store) {
  store.clear();
  store.reserve(sharded4().shards.size());
  for (const auto& shard : sharded4().shards) store.emplace_back(shard.bytes());
  std::vector<const SnapshotView*> ptrs;
  for (const auto& view : store) ptrs.push_back(&view);
  return ptrs;
}

// A deterministic mixed request stream covering every family.
std::vector<Request> mixed_requests(std::size_t count) {
  std::vector<Request> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Request q;
    q.type = static_cast<RequestType>(i % kRequestTypeCount);
    q.user = static_cast<graph::NodeId>((i * 37) % kNodes);
    q.target = static_cast<graph::NodeId>((i * 101 + 13) % kNodes);
    if (q.type == RequestType::kTopK) q.limit = 10;
    if (q.type == RequestType::kSuggest) q.limit = 8;
    if (q.type == RequestType::kGetOutCircle ||
        q.type == RequestType::kGetInCircle) {
      q.limit = 50;
    }
    out.push_back(q);
  }
  return out;
}

std::vector<Response> run_batches(ClusterServer& cluster,
                                  const std::vector<Request>& requests) {
  std::vector<Response> all;
  std::vector<Response> batch;
  std::size_t i = 0;
  while (i < requests.size()) {
    const std::size_t take =
        std::min(cluster.queue_capacity(), requests.size() - i);
    for (std::size_t j = 0; j < take; ++j) {
      EXPECT_NE(cluster.submit(requests[i + j]), ServeStatus::kRejected);
    }
    cluster.drain(batch);
    for (Response& r : batch) all.push_back(std::move(r));
    i += take;
  }
  return all;
}

bool same_responses(const std::vector<Response>& a,
                    const std::vector<Response>& b, bool compare_flags) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].status != b[i].status) return false;
    if (compare_flags && a[i].flags != b[i].flags) return false;
    if (a[i].payload != b[i].payload) return false;
  }
  return true;
}

TEST(FaultyTransport, ScheduleIsPureAndSeeded) {
  TransportConfig cfg;
  cfg.enabled = true;
  cfg.seed = 42;
  cfg.profile.drop_rate = 0.3;
  cfg.profile.delay_rate = 0.4;
  cfg.profile.duplicate_rate = 0.2;

  const std::vector<std::uint8_t> up{1, 1};
  FaultyTransport a(cfg, 1, 2);
  FaultyTransport b(cfg, 1, 2);
  a.freeze(up.data());
  b.freeze(up.data());
  bool any_fault = false;
  for (std::uint64_t seq = 0; seq < 200; ++seq) {
    const std::uint64_t key = FaultyTransport::rpc_key(seq, 3, 0);
    const RpcOutcome oa = a.probe_shard(key, 0);
    const RpcOutcome ob = b.probe_shard(key, 0);
    EXPECT_EQ(oa.ok, ob.ok) << seq;
    EXPECT_EQ(oa.attempts, ob.attempts) << seq;
    EXPECT_EQ(oa.dropped, ob.dropped) << seq;
    EXPECT_EQ(oa.ticks, ob.ticks) << seq;
    if (oa.dropped > 0 || oa.delayed > 0) any_fault = true;
    // Same probe, same answer — pure in (seed, key, frozen targets).
    const RpcOutcome again = a.probe_shard(key, 0);
    EXPECT_EQ(again.ok, oa.ok) << seq;
    EXPECT_EQ(again.ticks, oa.ticks) << seq;
  }
  EXPECT_TRUE(any_fault) << "profile with 0.3 drop rolled no faults in 200";

  // A different seed yields a different schedule somewhere.
  TransportConfig other = cfg;
  other.seed = 43;
  FaultyTransport c(other, 1, 2);
  c.freeze(up.data());
  bool diverged = false;
  for (std::uint64_t seq = 0; seq < 200 && !diverged; ++seq) {
    const std::uint64_t key = FaultyTransport::rpc_key(seq, 3, 0);
    const RpcOutcome oa = a.probe_shard(key, 0);
    const RpcOutcome oc = c.probe_shard(key, 0);
    diverged = oa.ticks != oc.ticks || oa.dropped != oc.dropped;
  }
  EXPECT_TRUE(diverged) << "seed 42 and 43 rolled identical schedules";
}

TEST(FaultyTransport, RejectsUnusableKnobs) {
  const std::vector<std::uint8_t> up{1};
  TransportConfig cfg;
  cfg.enabled = true;
  cfg.timeout_ticks = 0;
  EXPECT_THROW(FaultyTransport(cfg, 1, 1), std::invalid_argument);
  cfg.timeout_ticks = 24;
  cfg.profile.drop_rate = 1.5;
  EXPECT_THROW(FaultyTransport(cfg, 1, 1), std::invalid_argument);
  cfg.profile.drop_rate = 0.0;
  cfg.profile.delay_min = 10;
  cfg.profile.delay_max = 4;
  EXPECT_THROW(FaultyTransport(cfg, 1, 1), std::invalid_argument);
  // Disabled transports skip validation entirely (never consulted).
  cfg.enabled = false;
  EXPECT_NO_THROW(FaultyTransport(cfg, 1, 1));
}

TEST(TransportCluster, DisabledAndZeroRateAreByteIdentical) {
  std::vector<SnapshotView> store_a;
  std::vector<SnapshotView> store_b;
  const auto requests = mixed_requests(300);

  ClusterConfig plain;
  plain.replicas = 2;
  ClusterServer off(&sharded4().routing, open_shards(store_a), plain);
  const auto base = run_batches(off, requests);
  // Disabled transport: not a single transport counter moves.
  const TransportStats& off_stats = off.transport_stats();
  EXPECT_EQ(off_stats.rpcs, 0u);
  EXPECT_EQ(off_stats.attempts, 0u);
  EXPECT_EQ(off_stats.ticks, 0u);

  ClusterConfig wired = plain;
  wired.transport.enabled = true;
  wired.transport.seed = 7;  // zero-rate profile: a perfect network
  ClusterServer on(&sharded4().routing, open_shards(store_b), wired);
  const auto routed = run_batches(on, requests);

  EXPECT_TRUE(same_responses(base, routed, /*compare_flags=*/true))
      << "a zero-rate transport changed response bytes";
  const TransportStats& on_stats = on.transport_stats();
  EXPECT_GT(on_stats.rpcs, 0u);
  EXPECT_EQ(on_stats.delivered, on_stats.rpcs);
  EXPECT_EQ(on_stats.failed, 0u);
  EXPECT_EQ(on_stats.dropped, 0u);
}

TEST(TransportCluster, DropStormFailsClosedNeverHangs) {
  std::vector<SnapshotView> store;
  ClusterConfig config;
  config.replicas = 2;
  config.transport.enabled = true;
  config.transport.seed = 5;
  config.transport.profile.drop_rate = 1.0;
  config.transport.breaker_threshold = 4;
  ClusterServer cluster(&sharded4().routing, open_shards(store), config);

  const auto requests = mixed_requests(240);
  const auto responses = run_batches(cluster, requests);
  ASSERT_EQ(responses.size(), requests.size());

  std::size_t unavailable = 0;
  std::size_t quorum = 0;
  for (std::size_t i = 0; i < responses.size(); ++i) {
    const Response& r = responses[i];
    // Every request reached a terminal status; degraded answers are
    // explicitly flagged — never a hang, never a silent drop.
    if (r.status == ServeStatus::kUnavailable) {
      ++unavailable;
      EXPECT_NE(r.flags & kResponseQuorumPartial, 0) << i;
    }
    if ((r.flags & kResponseQuorumPartial) != 0) ++quorum;
  }
  EXPECT_GT(unavailable, 0u);
  EXPECT_GT(quorum, unavailable) << "no scatter answer degraded to quorum";

  const TransportStats& t = cluster.transport_stats();
  EXPECT_EQ(t.delivered, 0u);
  EXPECT_GT(t.failed, 0u);
  EXPECT_GT(t.timeouts, 0u);
  EXPECT_GT(t.breaker_open, 0u);
  EXPECT_GT(t.breaker_skips, 0u) << "open breakers never skipped a send";
}

TEST(FaultyTransport, TimeoutRetryHedgeEscalation) {
  const std::vector<std::uint8_t> up{1, 1};

  // Regime 1 — short fixed delay: the primary answers before the hedge
  // trigger; one attempt, no hedge, ticks = 1 + delay.
  TransportConfig fast;
  fast.enabled = true;
  fast.profile.delay_rate = 1.0;
  fast.profile.delay_min = 4;
  fast.profile.delay_max = 4;
  fast.timeout_ticks = 24;
  fast.hedge_ticks = 8;
  FaultyTransport quick(fast, 1, 2);
  const RpcOutcome o1 = quick.dispatch(FaultyTransport::rpc_key(0, 0, 0), 0,
                                       up.data());
  EXPECT_TRUE(o1.ok);
  EXPECT_EQ(o1.attempts, 1u);
  EXPECT_EQ(o1.hedges, 0u);
  EXPECT_EQ(o1.ticks, 5u);
  EXPECT_EQ(o1.replica(), 0u);

  // Regime 2 — slow primary: the hedge fires but the primary still wins
  // (fixed equal delays put the hedge hedge_ticks behind); one attempt,
  // one hedge, ticks = 1 + delay.
  TransportConfig slow = fast;
  slow.profile.delay_min = 12;
  slow.profile.delay_max = 12;
  FaultyTransport hedged(slow, 1, 2);
  const RpcOutcome o2 = hedged.dispatch(FaultyTransport::rpc_key(0, 0, 0), 0,
                                        up.data());
  EXPECT_TRUE(o2.ok);
  EXPECT_EQ(o2.attempts, 2u);
  EXPECT_EQ(o2.hedges, 1u);
  EXPECT_FALSE(o2.hedge_won);
  EXPECT_EQ(o2.ticks, 13u);

  // Regime 3 — sick primary replica: only_replica pins the loss to
  // replica 0, so every primary send drops and the hedge to replica 1
  // completes at hedge_ticks + 1. Organic failover via hedging.
  TransportConfig sick;
  sick.enabled = true;
  sick.profile.drop_rate = 1.0;
  sick.profile.only_replica = 0;
  sick.timeout_ticks = 24;
  sick.hedge_ticks = 8;
  FaultyTransport failover(sick, 1, 2);
  const RpcOutcome o3 = failover.dispatch(FaultyTransport::rpc_key(0, 0, 0), 0,
                                          up.data());
  EXPECT_TRUE(o3.ok);
  EXPECT_TRUE(o3.hedge_won);
  EXPECT_EQ(o3.replica(), 1u);
  EXPECT_EQ(o3.dropped, 1u);
  EXPECT_EQ(o3.ticks, 9u);

  // Regime 4 — delay beyond the timeout with hedging off: every attempt
  // burns the full timeout; 1 + max_retries attempts, then failure.
  TransportConfig dead;
  dead.enabled = true;
  dead.profile.delay_rate = 1.0;
  dead.profile.delay_min = 40;
  dead.profile.delay_max = 40;
  dead.timeout_ticks = 24;
  dead.max_retries = 2;
  dead.hedge_ticks = 0;
  dead.breaker_threshold = 0;
  FaultyTransport exhausted(dead, 1, 2);
  const RpcOutcome o4 = exhausted.dispatch(FaultyTransport::rpc_key(0, 0, 0),
                                           0, up.data());
  EXPECT_FALSE(o4.ok);
  EXPECT_EQ(o4.attempts, 3u);
  EXPECT_EQ(o4.retries, 2u);
  EXPECT_EQ(o4.timeouts, 3u);
  EXPECT_EQ(o4.ticks, 3u * 24u);
  const TransportStats& t = exhausted.stats();
  EXPECT_EQ(t.failed, 1u);
  EXPECT_EQ(t.delivered, 0u);
}

TEST(FaultyTransport, BreakerOpensHalfOpensCloses) {
  const std::vector<std::uint8_t> up{1};
  TransportConfig cfg;
  cfg.enabled = true;
  cfg.profile.drop_rate = 1.0;
  cfg.timeout_ticks = 4;
  cfg.max_retries = 0;
  cfg.hedge_ticks = 0;
  cfg.breaker_threshold = 2;
  cfg.breaker_cooldown = 3;
  FaultyTransport t(cfg, 1, 1);

  // Two consecutive failures trip the breaker.
  EXPECT_FALSE(t.dispatch(FaultyTransport::rpc_key(0, 0, 0), 0, up.data()).ok);
  EXPECT_EQ(t.breaker_state(0, 0), BreakerState::kClosed);
  EXPECT_FALSE(t.dispatch(FaultyTransport::rpc_key(1, 0, 0), 0, up.data()).ok);
  EXPECT_EQ(t.breaker_state(0, 0), BreakerState::kOpen);
  EXPECT_EQ(t.stats().breaker_open, 1u);

  // Open: sends are skipped, results for the replica ignored.
  const RpcOutcome skipped =
      t.dispatch(FaultyTransport::rpc_key(2, 0, 0), 0, up.data());
  EXPECT_TRUE(skipped.no_target);
  EXPECT_EQ(t.stats().breaker_skips, 1u);

  // The network recovers; the cooldown drains one tick per drain.
  t.set_profile(FaultProfile{});
  t.tick();
  t.tick();
  EXPECT_EQ(t.breaker_state(0, 0), BreakerState::kOpen);
  t.tick();
  EXPECT_EQ(t.breaker_state(0, 0), BreakerState::kHalfOpen);

  // One successful probe closes it again.
  const RpcOutcome probe =
      t.dispatch(FaultyTransport::rpc_key(3, 0, 0), 0, up.data());
  EXPECT_TRUE(probe.ok);
  EXPECT_TRUE(probe.probe);
  EXPECT_EQ(t.breaker_state(0, 0), BreakerState::kClosed);
  EXPECT_EQ(t.stats().breaker_probes, 1u);
  EXPECT_EQ(t.stats().breaker_close, 1u);

  // A failed probe would have re-opened instead: trip it again, half-open
  // it, and probe into a lossy network.
  t.set_profile(FaultProfile{.drop_rate = 1.0});
  EXPECT_FALSE(t.dispatch(FaultyTransport::rpc_key(4, 0, 0), 0, up.data()).ok);
  EXPECT_FALSE(t.dispatch(FaultyTransport::rpc_key(5, 0, 0), 0, up.data()).ok);
  EXPECT_EQ(t.breaker_state(0, 0), BreakerState::kOpen);
  t.tick();
  t.tick();
  t.tick();
  EXPECT_EQ(t.breaker_state(0, 0), BreakerState::kHalfOpen);
  EXPECT_FALSE(t.dispatch(FaultyTransport::rpc_key(6, 0, 0), 0, up.data()).ok);
  EXPECT_EQ(t.breaker_state(0, 0), BreakerState::kOpen);
  EXPECT_EQ(t.stats().breaker_open, 3u);
}

TEST(TransportCluster, QuorumPartialPayloadPinnedAgainstDarkShard) {
  // Shard 2 unreachable over the transport vs shard 2 dark: the degraded
  // payload bytes must be IDENTICAL — only the flag bits differ (quorum
  // vs dark), because both degrade by excluding the same shard.
  constexpr std::size_t kSick = 2;
  std::vector<SnapshotView> store_a;
  std::vector<SnapshotView> store_b;
  const auto requests = mixed_requests(300);

  ClusterConfig lossy;
  lossy.replicas = 1;
  lossy.transport.enabled = true;
  lossy.transport.seed = 11;
  lossy.transport.profile.drop_rate = 1.0;
  lossy.transport.profile.only_shard = kSick;
  lossy.transport.breaker_threshold = 0;  // pure loss, no breaker rerouting
  ClusterServer unreachable(&sharded4().routing, open_shards(store_a), lossy);
  const auto degraded = run_batches(unreachable, requests);

  ClusterConfig plain;
  plain.replicas = 1;
  ClusterServer darkened(&sharded4().routing, open_shards(store_b), plain);
  darkened.kill_replica(kSick, 0);
  const auto dark = run_batches(darkened, requests);

  ASSERT_TRUE(same_responses(degraded, dark, /*compare_flags=*/false))
      << "quorum degradation and dark degradation diverged in payload";
  bool flagged = false;
  for (std::size_t i = 0; i < degraded.size(); ++i) {
    const std::uint8_t qflags = degraded[i].flags;
    const std::uint8_t dflags = dark[i].flags;
    EXPECT_EQ(qflags & kResponsePartial, dflags & kResponsePartial) << i;
    if ((dflags & kResponseShardDark) != 0) {
      flagged = true;
      EXPECT_NE(qflags & kResponseQuorumPartial, 0) << i;
      EXPECT_EQ(qflags & kResponseShardDark, 0) << i;
    } else {
      EXPECT_EQ(qflags & kResponseQuorumPartial, 0) << i;
    }
  }
  EXPECT_TRUE(flagged) << "no request ever touched the sick shard";
}

TEST(TransportCluster, ReorderAndDuplicatesAreAbsorbed) {
  std::vector<SnapshotView> store_a;
  std::vector<SnapshotView> store_b;
  const auto requests = mixed_requests(300);

  ClusterConfig plain;
  plain.replicas = 2;
  ClusterServer off(&sharded4().routing, open_shards(store_a), plain);
  const auto base = run_batches(off, requests);

  ClusterConfig noisy = plain;
  noisy.transport.enabled = true;
  noisy.transport.seed = 23;
  noisy.transport.profile.duplicate_rate = 1.0;
  noisy.transport.profile.reorder_rate = 1.0;
  ClusterServer on(&sharded4().routing, open_shards(store_b), noisy);
  const auto routed = run_batches(on, requests);

  EXPECT_TRUE(same_responses(base, routed, /*compare_flags=*/true))
      << "duplicates or reordering leaked into response bytes";
  const TransportStats& t = on.transport_stats();
  EXPECT_GT(t.duplicates, 0u);
  EXPECT_EQ(t.dup_suppressed, t.duplicates)
      << "the receiver must discard every duplicate";
  EXPECT_GT(t.reorders, 0u) << "reorder_rate 1.0 never reversed a batch";
  EXPECT_EQ(t.failed, 0u);
}

ClusterStormConfig storm_config() {
  ClusterStormConfig config;
  config.seed = 99;
  config.clients = 48;
  config.rounds = 96;
  config.probes = 192;
  config.replicas = 2;
  config.transport.enabled = true;
  config.transport.seed = 7;
  config.transport.profile.drop_rate = 0.03;
  config.transport.profile.delay_rate = 0.10;
  config.transport.profile.delay_min = 4;
  config.transport.profile.delay_max = 40;
  config.transport.profile.duplicate_rate = 0.02;
  config.transport.profile.reorder_rate = 0.05;
  return config;
}

TEST(TransportStorm, ReconcilesRegistryAndDegradesExplicitly) {
  const ClusterStormReport report =
      run_cluster_storm(sharded4(), full_view(), storm_config());
  EXPECT_TRUE(report.violations.empty())
      << "first violation: " << report.violations.front();
  EXPECT_EQ(report.offered, report.accepted + report.rejected);
  EXPECT_EQ(report.responses, report.accepted);
  EXPECT_GT(report.quorum_answers, 0u);
  EXPECT_GT(report.dark_answers, 0u);
  EXPECT_GT(report.transport.rpcs, 0u);
  EXPECT_GT(report.transport.breaker_open, 0u);
  EXPECT_GT(report.transport.breaker_close, 0u);
  EXPECT_GT(report.transport.hedges, 0u);
  EXPECT_EQ(report.post_probe_checksum, report.unsharded_probe_checksum);
}

TEST(TransportStorm, BitIdenticalAtOneThreadAndMany) {
  const ClusterStormConfig config = storm_config();
  const ClusterStormReport many =
      run_cluster_storm(sharded4(), full_view(), config);
  core::set_thread_count(1);
  const ClusterStormReport one =
      run_cluster_storm(sharded4(), full_view(), config);
  core::set_thread_count(0);

  EXPECT_EQ(many.checksum, one.checksum);
  EXPECT_EQ(many.quorum_answers, one.quorum_answers);
  EXPECT_EQ(many.dark_answers, one.dark_answers);
  EXPECT_EQ(many.by_status, one.by_status);
  EXPECT_EQ(many.transport.rpcs, one.transport.rpcs);
  EXPECT_EQ(many.transport.attempts, one.transport.attempts);
  EXPECT_EQ(many.transport.delivered, one.transport.delivered);
  EXPECT_EQ(many.transport.failed, one.transport.failed);
  EXPECT_EQ(many.transport.timeouts, one.transport.timeouts);
  EXPECT_EQ(many.transport.retries, one.transport.retries);
  EXPECT_EQ(many.transport.hedges, one.transport.hedges);
  EXPECT_EQ(many.transport.hedge_wins, one.transport.hedge_wins);
  EXPECT_EQ(many.transport.duplicates, one.transport.duplicates);
  EXPECT_EQ(many.transport.reorders, one.transport.reorders);
  EXPECT_EQ(many.transport.breaker_open, one.transport.breaker_open);
  EXPECT_EQ(many.transport.breaker_close, one.transport.breaker_close);
  EXPECT_EQ(many.transport.breaker_skips, one.transport.breaker_skips);
  EXPECT_EQ(many.transport.ticks, one.transport.ticks);
  EXPECT_EQ(many.post_probe_checksum, one.post_probe_checksum);
  EXPECT_TRUE(many.violations.empty() && one.violations.empty());
}

}  // namespace
}  // namespace gplus::serve
