// Checkpoint/resume coverage (§2 methodology: surviving machine
// restarts): snapshots round-trip exactly, corrupt files are rejected,
// and a crawl killed at any profile boundary resumes to the bit-identical
// graph of an uninterrupted, fault-free run.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "crawler/checkpoint.h"
#include "crawler/crawler.h"
#include "crawler/fleet.h"
#include "graph/builder.h"
#include "service/service.h"

namespace gplus::crawler {
namespace {

using graph::GraphBuilder;
using graph::NodeId;

// Per-process scratch dir: the .threads1 ctest variant runs concurrently
// in its own process, so paths must not collide across processes.
std::filesystem::path scratch_dir() {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("gplus_checkpoint_test_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  return dir;
}

std::string scratch_file(const std::string& name) {
  return (scratch_dir() / name).string();
}

struct Fixture {
  graph::DiGraph graph;
  std::vector<synth::Profile> profiles;

  Fixture() {
    GraphBuilder b;
    for (NodeId u = 0; u < 300; ++u) {
      b.add_reciprocal_edge(u, (u + 1) % 300);
      b.add_reciprocal_edge(u, (u + 13) % 300);
      b.add_edge(u, 300);
    }
    graph = b.build();
    profiles.assign(graph.node_count(), synth::Profile{});
  }

  service::SocialService service(service::ServiceConfig config = {}) {
    return service::SocialService(&graph, profiles, config);
  }
};

service::FaultConfig modest_faults() {
  service::FaultConfig f;
  f.transient_rate = 0.10;
  f.rate_limit_rate = 0.05;
  f.truncation_rate = 0.05;
  f.slow_rate = 0.10;
  return f;
}

void expect_identical_crawl(const CrawlResult& a, const CrawlResult& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  EXPECT_EQ(a.original_id, b.original_id);
  EXPECT_EQ(a.crawled, b.crawled);
  ASSERT_EQ(a.graph.node_count(), b.graph.node_count());
  ASSERT_EQ(a.graph.edge_count(), b.graph.edge_count());
  for (NodeId u = 0; u < a.graph.node_count(); ++u) {
    const auto an = a.graph.out_neighbors(u);
    const auto bn = b.graph.out_neighbors(u);
    ASSERT_EQ(an.size(), bn.size()) << "node " << u;
    EXPECT_TRUE(std::equal(an.begin(), an.end(), bn.begin())) << "node " << u;
  }
}

TEST(Checkpoint, SaveLoadRoundTripsEveryField) {
  CrawlCheckpoint cp;
  cp.original_id = {5, 2, 9, 14};
  cp.crawled = {1, 1, 0, 0};
  cp.degraded = {0, 1, 0, 0};
  cp.queue_head = 2;
  cp.edges = {{0, 1}, {1, 2}, {3, 0}};
  cp.profiles_crawled = 2;
  cp.edges_collected = 3;
  cp.requests = 17;
  cp.hidden_list_users = 1;
  cp.capped_users = 1;
  cp.retry.attempts = 23;
  cp.retry.retries = 6;
  cp.retry.transient = 3;
  cp.retry.rate_limited = 2;
  cp.retry.truncated = 1;
  cp.retry.slow = 4;
  cp.retry.abandoned = 1;
  cp.retry.backoff_ms = 1234.5;
  cp.elapsed_seconds = 98.25;

  const auto path = scratch_file("roundtrip.ckpt");
  save_checkpoint(cp, path);
  const auto loaded = load_checkpoint(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->original_id, cp.original_id);
  EXPECT_EQ(loaded->crawled, cp.crawled);
  EXPECT_EQ(loaded->degraded, cp.degraded);
  EXPECT_EQ(loaded->queue_head, cp.queue_head);
  EXPECT_EQ(loaded->edges, cp.edges);
  EXPECT_EQ(loaded->profiles_crawled, cp.profiles_crawled);
  EXPECT_EQ(loaded->edges_collected, cp.edges_collected);
  EXPECT_EQ(loaded->requests, cp.requests);
  EXPECT_EQ(loaded->hidden_list_users, cp.hidden_list_users);
  EXPECT_EQ(loaded->capped_users, cp.capped_users);
  EXPECT_EQ(loaded->retry.attempts, cp.retry.attempts);
  EXPECT_EQ(loaded->retry.retries, cp.retry.retries);
  EXPECT_EQ(loaded->retry.transient, cp.retry.transient);
  EXPECT_EQ(loaded->retry.rate_limited, cp.retry.rate_limited);
  EXPECT_EQ(loaded->retry.truncated, cp.retry.truncated);
  EXPECT_EQ(loaded->retry.slow, cp.retry.slow);
  EXPECT_EQ(loaded->retry.abandoned, cp.retry.abandoned);
  EXPECT_DOUBLE_EQ(loaded->retry.backoff_ms, cp.retry.backoff_ms);
  EXPECT_DOUBLE_EQ(loaded->elapsed_seconds, cp.elapsed_seconds);
}

TEST(Checkpoint, MissingFileIsNotAnError) {
  EXPECT_FALSE(load_checkpoint(scratch_file("never_written.ckpt")).has_value());
}

TEST(Checkpoint, RejectsCorruptFiles) {
  const auto bad_magic = scratch_file("bad_magic.ckpt");
  {
    std::ofstream out(bad_magic, std::ios::binary);
    out << "NOTGPLUSDATA____________";
  }
  EXPECT_THROW(load_checkpoint(bad_magic), std::runtime_error);

  // Truncate a valid checkpoint mid-stream.
  CrawlCheckpoint cp;
  cp.original_id = {1, 2, 3};
  cp.crawled = {1, 0, 0};
  cp.degraded = {0, 0, 0};
  cp.queue_head = 1;
  const auto path = scratch_file("truncated.ckpt");
  save_checkpoint(cp, path);
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_THROW(load_checkpoint(path), std::runtime_error);
}

TEST(Checkpoint, AtomicWriteLeavesNoTempFile) {
  CrawlCheckpoint cp;
  cp.original_id = {1};
  cp.crawled = {0};
  cp.degraded = {0};
  const auto path = scratch_file("atomic.ckpt");
  save_checkpoint(cp, path);
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(CheckpointResume, KilledCrawlResumesToBitIdenticalGraph) {
  Fixture fx;
  // Reference: one uninterrupted fault-free crawl, no checkpointing.
  auto reference_svc = fx.service();
  CrawlConfig reference_config;
  reference_config.seed_node = 0;
  const auto reference = run_bfs_crawl(reference_svc, reference_config);

  // "Kill" the crawl by budget after 60 profiles, checkpointing; then
  // resume from the file with the budget lifted — under faults both times.
  service::ServiceConfig faulty;
  faulty.faults = modest_faults();
  const auto path = scratch_file("kill_resume.ckpt");
  std::filesystem::remove(path);

  CrawlConfig config;
  config.seed_node = 0;
  config.checkpoint.path = path;
  config.max_profiles = 60;
  auto first_svc = fx.service(faulty);
  const auto first = run_bfs_crawl(first_svc, config);
  EXPECT_EQ(first.stats.profiles_crawled, 60u);
  EXPECT_TRUE(std::filesystem::exists(path));

  config.max_profiles = 0;
  auto second_svc = fx.service(faulty);
  const auto resumed = run_bfs_crawl(second_svc, config);
  EXPECT_EQ(resumed.stats.resumed_profiles, 60u);
  EXPECT_EQ(resumed.stats.profiles_crawled, reference.stats.profiles_crawled);
  expect_identical_crawl(reference, resumed);
  // Cumulative counters survive the restart.
  EXPECT_GT(resumed.stats.requests, first.stats.requests);
}

TEST(CheckpointResume, ResumeAfterEveryKillPointMatches) {
  Fixture fx;
  auto reference_svc = fx.service();
  CrawlConfig reference_config;
  reference_config.seed_node = 7;
  const auto reference = run_bfs_crawl(reference_svc, reference_config);

  service::ServiceConfig faulty;
  faulty.faults = modest_faults();
  for (std::size_t kill_at : {1u, 13u, 150u, 299u}) {
    const auto path = scratch_file("kill_at.ckpt");
    std::filesystem::remove(path);
    CrawlConfig config;
    config.seed_node = 7;
    config.checkpoint.path = path;
    config.max_profiles = kill_at;
    auto first_svc = fx.service(faulty);
    run_bfs_crawl(first_svc, config);

    config.max_profiles = 0;
    auto second_svc = fx.service(faulty);
    const auto resumed = run_bfs_crawl(second_svc, config);
    expect_identical_crawl(reference, resumed);
  }
}

TEST(CheckpointResume, PeriodicCheckpointsAreWritten) {
  Fixture fx;
  auto svc = fx.service();
  const auto path = scratch_file("periodic.ckpt");
  std::filesystem::remove(path);
  CrawlConfig config;
  config.seed_node = 0;
  config.checkpoint.path = path;
  config.checkpoint.every_profiles = 50;
  const auto crawl = run_bfs_crawl(svc, config);
  // 301 profiles / every 50 = 6 periodic snapshots + the final one.
  EXPECT_EQ(crawl.stats.checkpoints_written, 7u);
  const auto cp = load_checkpoint(path);
  ASSERT_TRUE(cp.has_value());
  EXPECT_EQ(cp->profiles_crawled, crawl.stats.profiles_crawled);
  EXPECT_EQ(cp->queue_head, cp->original_id.size());
}

TEST(CheckpointResume, ResumeOfFinishedCrawlIsANoOp) {
  Fixture fx;
  const auto path = scratch_file("finished.ckpt");
  std::filesystem::remove(path);
  CrawlConfig config;
  config.seed_node = 0;
  config.checkpoint.path = path;
  auto svc = fx.service();
  const auto first = run_bfs_crawl(svc, config);

  auto again_svc = fx.service();
  const auto again = run_bfs_crawl(again_svc, config);
  EXPECT_EQ(again.stats.resumed_profiles, first.stats.profiles_crawled);
  // No frontier left: the resumed run issues zero requests.
  EXPECT_EQ(again_svc.request_count(), 0u);
  expect_identical_crawl(first, again);
}

TEST(CheckpointResume, DisabledResumeStartsFresh) {
  Fixture fx;
  const auto path = scratch_file("no_resume.ckpt");
  std::filesystem::remove(path);
  CrawlConfig config;
  config.seed_node = 0;
  config.max_profiles = 10;
  config.checkpoint.path = path;
  auto svc = fx.service();
  run_bfs_crawl(svc, config);

  config.checkpoint.resume = false;
  auto fresh_svc = fx.service();
  const auto fresh = run_bfs_crawl(fresh_svc, config);
  EXPECT_EQ(fresh.stats.resumed_profiles, 0u);
  EXPECT_EQ(fresh.stats.profiles_crawled, 10u);
}

TEST(CheckpointResume, CheckpointFromDifferentServiceIsRejected) {
  Fixture fx;
  CrawlCheckpoint cp;
  cp.original_id = {9'999};  // out of this universe
  cp.crawled = {0};
  cp.degraded = {0};
  const auto path = scratch_file("alien.ckpt");
  save_checkpoint(cp, path);
  CrawlConfig config;
  config.seed_node = 0;
  config.checkpoint.path = path;
  auto svc = fx.service();
  EXPECT_THROW(run_bfs_crawl(svc, config), std::runtime_error);
}

TEST(CheckpointResume, KilledFleetResumesToBitIdenticalGraph) {
  Fixture fx;
  auto reference_svc = fx.service();
  CrawlConfig reference_config;
  reference_config.seed_node = 0;
  const auto reference = run_bfs_crawl(reference_svc, reference_config);

  service::ServiceConfig faulty;
  faulty.faults = modest_faults();
  const auto path = scratch_file("fleet_resume.ckpt");
  std::filesystem::remove(path);

  FleetConfig config;
  config.seed_node = 0;
  config.checkpoint.path = path;
  config.max_profiles = 80;
  auto first_svc = fx.service(faulty);
  const auto first = run_crawl_fleet(first_svc, config);
  EXPECT_EQ(first.profiles_crawled, 80u);

  config.max_profiles = 0;
  auto second_svc = fx.service(faulty);
  const auto resumed = run_crawl_fleet(second_svc, config);
  expect_identical_crawl(reference, resumed.crawl);
  EXPECT_EQ(resumed.crawl.stats.resumed_profiles, 80u);
  // The resumed clock starts where the killed fleet stopped.
  EXPECT_GT(resumed.makespan_days, first.makespan_days);
}

TEST(CheckpointResume, FleetAndCrawlerShareTheCheckpointFormat) {
  Fixture fx;
  const auto path = scratch_file("cross_format.ckpt");
  std::filesystem::remove(path);
  // Fleet writes the checkpoint...
  FleetConfig fleet_config;
  fleet_config.seed_node = 0;
  fleet_config.checkpoint.path = path;
  fleet_config.max_profiles = 40;
  auto fleet_svc = fx.service();
  run_crawl_fleet(fleet_svc, fleet_config);

  // ...and the single-machine crawler finishes the crawl from it.
  CrawlConfig crawl_config;
  crawl_config.seed_node = 0;
  crawl_config.checkpoint.path = path;
  auto crawl_svc = fx.service();
  const auto resumed = run_bfs_crawl(crawl_svc, crawl_config);

  auto reference_svc = fx.service();
  CrawlConfig reference_config;
  reference_config.seed_node = 0;
  const auto reference = run_bfs_crawl(reference_svc, reference_config);
  expect_identical_crawl(reference, resumed);
}

}  // namespace
}  // namespace gplus::crawler
