#include "stats/powerlaw_mle.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/rng.h"

namespace gplus::stats {
namespace {

std::vector<std::uint64_t> pareto_sample(double alpha_density, std::size_t n,
                                         std::uint64_t seed,
                                         double scale = 1.0) {
  // Continuous Pareto with density exponent alpha has CCDF exponent
  // alpha - 1; draw via inverse transform (scaled before flooring so the
  // sample stays scale-free, not lattice-valued).
  Rng rng(seed);
  std::vector<std::uint64_t> out;
  out.reserve(n);
  const double ccdf_alpha = alpha_density - 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double u = 1.0 - rng.next_double();
    out.push_back(static_cast<std::uint64_t>(
        scale * std::pow(u, -1.0 / ccdf_alpha)));
  }
  return out;
}

TEST(PowerLawMle, RecoversKnownExponent) {
  // The continuous-approximation MLE needs x_min large enough that the
  // floor() discretization is negligible (CSN §3.5 make the same point).
  const auto values = pareto_sample(2.5, 400'000, 1);
  const auto fit = fit_power_law_mle(values, 10);
  EXPECT_NEAR(fit.alpha, 2.5, 0.15);
  EXPECT_NEAR(fit.ccdf_alpha(), 1.5, 0.15);
  EXPECT_LT(fit.ks_distance, 0.1);
  EXPECT_GT(fit.tail_samples, 1000u);
}

TEST(PowerLawMle, HeavierTailGivesSmallerAlpha) {
  const auto heavy = pareto_sample(2.0, 100'000, 2);
  const auto light = pareto_sample(3.2, 100'000, 3);
  EXPECT_LT(fit_power_law_mle(heavy, 3).alpha,
            fit_power_law_mle(light, 3).alpha);
}

TEST(PowerLawMle, RejectsDegenerateInput) {
  const std::vector<std::uint64_t> tiny = {5};
  EXPECT_THROW(fit_power_law_mle(tiny, 1), std::invalid_argument);
  const std::vector<std::uint64_t> ok = {1, 2, 3};
  EXPECT_THROW(fit_power_law_mle(ok, 0), std::invalid_argument);
  // An all-constant tail is not an error: the continuity-shifted
  // estimator returns a finite but extreme exponent.
  const std::vector<std::uint64_t> constant = {4, 4, 4, 4};
  EXPECT_GT(fit_power_law_mle(constant, 4).alpha, 5.0);
}

TEST(PowerLawMle, XMinFiltersTheBody) {
  // Contaminate a clean power-law tail (scaled 10x: still scale-free, now
  // starting near 10) with a huge non-power-law body below 6.
  auto values = pareto_sample(2.5, 50'000, 4, 10.0);
  Rng rng(5);
  for (int i = 0; i < 200'000; ++i) {
    values.push_back(1 + rng.next_below(5));  // uniform junk in [1, 5]
  }
  const auto low = fit_power_law_mle(values, 2);
  const auto high = fit_power_law_mle(values, 10);
  // Fitting above the junk gets closer to the planted exponent and a
  // far better KS distance.
  EXPECT_LT(high.ks_distance, low.ks_distance);
  EXPECT_NEAR(high.alpha, 2.5, 0.4);
}

TEST(PowerLawMle, AutoSelectionBeatsNaiveThreshold) {
  auto values = pareto_sample(2.5, 50'000, 6, 10.0);
  Rng rng(7);
  for (int i = 0; i < 200'000; ++i) {
    values.push_back(1 + rng.next_below(5));
  }
  const auto fit = fit_power_law_auto(values);
  EXPECT_GE(fit.x_min, 5u);  // skipped the junk region
  EXPECT_NEAR(fit.alpha, 2.5, 0.4);
  EXPECT_LE(fit.ks_distance, fit_power_law_mle(values, 1).ks_distance);
}

TEST(PowerLawMle, AutoRejectsDegenerateInput) {
  const std::vector<std::uint64_t> constant(100, 7);
  EXPECT_THROW(fit_power_law_auto(constant), std::invalid_argument);
  const std::vector<std::uint64_t> ok = {1, 2, 3, 4};
  EXPECT_THROW(fit_power_law_auto(ok, 0), std::invalid_argument);
}

}  // namespace
}  // namespace gplus::stats
