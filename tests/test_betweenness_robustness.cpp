#include <gtest/gtest.h>

#include "algo/betweenness.h"
#include "algo/robustness.h"
#include "graph/builder.h"

namespace gplus::algo {
namespace {

using graph::DiGraph;
using graph::GraphBuilder;
using graph::NodeId;

TEST(Betweenness, PathGraphMiddleCarriesTraffic) {
  // 0 -> 1 -> 2 -> 3 -> 4: node 2 lies on paths 0->3, 0->4, 1->3, 1->4
  // plus endpoints-of-its-own; exact Brandes values are known.
  GraphBuilder b;
  for (NodeId u = 0; u + 1 < 5; ++u) b.add_edge(u, u + 1);
  const auto score = betweenness_centrality(b.build());
  EXPECT_DOUBLE_EQ(score[0], 0.0);
  EXPECT_DOUBLE_EQ(score[1], 3.0);  // pairs (0,2), (0,3), (0,4)
  EXPECT_DOUBLE_EQ(score[2], 4.0);  // (0,3), (0,4), (1,3), (1,4)
  EXPECT_DOUBLE_EQ(score[3], 3.0);
  EXPECT_DOUBLE_EQ(score[4], 0.0);
}

TEST(Betweenness, StarHubCarriesEverything) {
  GraphBuilder b;
  constexpr NodeId kLeaves = 6;
  for (NodeId v = 1; v <= kLeaves; ++v) b.add_reciprocal_edge(0, v);
  const auto score = betweenness_centrality(b.build());
  // Every leaf pair routes through the hub: 6*5 ordered pairs.
  EXPECT_DOUBLE_EQ(score[0], 30.0);
  for (NodeId v = 1; v <= kLeaves; ++v) EXPECT_DOUBLE_EQ(score[v], 0.0);
}

TEST(Betweenness, SplitsOverEqualShortestPaths) {
  // Two parallel 2-hop routes 0 -> {1,2} -> 3: each carries half of (0,3).
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 3);
  b.add_edge(2, 3);
  const auto score = betweenness_centrality(b.build());
  EXPECT_DOUBLE_EQ(score[1], 0.5);
  EXPECT_DOUBLE_EQ(score[2], 0.5);
  EXPECT_DOUBLE_EQ(score[3], 0.0);
}

TEST(Betweenness, SampledMatchesExactInExpectation) {
  GraphBuilder b;
  stats::Rng gen(5);
  constexpr NodeId kN = 150;
  for (int i = 0; i < 1200; ++i) {
    b.add_edge(static_cast<NodeId>(gen.next_below(kN)),
               static_cast<NodeId>(gen.next_below(kN)));
  }
  const auto g = b.build();
  const auto exact = betweenness_centrality(g);
  stats::Rng rng(6);
  // All sources sampled = exact (scale factor 1).
  const auto full = sampled_betweenness(g, kN, rng);
  for (NodeId u = 0; u < kN; ++u) EXPECT_NEAR(full[u], exact[u], 1e-9);

  // Partial sampling: top node by exact score stays near the top.
  const auto approx = sampled_betweenness(g, 50, rng);
  NodeId exact_top = 0, approx_top = 0;
  for (NodeId u = 1; u < kN; ++u) {
    if (exact[u] > exact[exact_top]) exact_top = u;
    if (approx[u] > approx[approx_top]) approx_top = u;
  }
  EXPECT_GT(approx[exact_top], 0.0);
}

TEST(Betweenness, RejectsZeroSources) {
  GraphBuilder b;
  b.add_edge(0, 1);
  const auto g = b.build();
  stats::Rng rng(1);
  EXPECT_THROW(sampled_betweenness(g, 0, rng), std::invalid_argument);
}

DiGraph hub_and_chains() {
  // A hub (0) mutually linked to 40 users, plus 10 chains of 20 hanging
  // off them: targeted hub removal disconnects the chains from each other.
  GraphBuilder b;
  for (NodeId v = 1; v <= 40; ++v) b.add_reciprocal_edge(0, v);
  NodeId next = 41;
  for (NodeId c = 1; c <= 10; ++c) {
    NodeId prev = c;
    for (int i = 0; i < 20; ++i) {
      b.add_reciprocal_edge(prev, next);
      prev = next++;
    }
  }
  return b.build();
}

TEST(Robustness, TargetedRemovalHurtsMoreThanRandom) {
  const auto g = hub_and_chains();
  const std::vector<double> fractions = {0.0, 0.02};
  stats::Rng rng1(7), rng2(7);
  const auto random =
      removal_sweep(g, RemovalStrategy::kRandom, fractions, rng1);
  const auto targeted =
      removal_sweep(g, RemovalStrategy::kTopInDegree, fractions, rng2);
  // Baseline point identical.
  EXPECT_DOUBLE_EQ(random[0].giant_wcc_fraction,
                   targeted[0].giant_wcc_fraction);
  EXPECT_DOUBLE_EQ(random[0].removed_fraction, 0.0);
  // Removing the top 2% by in-degree kills the hub: giant collapses.
  EXPECT_LT(targeted[1].giant_wcc_fraction,
            random[1].giant_wcc_fraction - 0.2);
  EXPECT_LT(targeted[1].edge_survival, random[1].edge_survival);
}

TEST(Robustness, MonotoneDamageInRemovalBudget) {
  const auto g = hub_and_chains();
  const std::vector<double> fractions = {0.0, 0.05, 0.2, 0.5};
  stats::Rng rng(9);
  const auto sweep =
      removal_sweep(g, RemovalStrategy::kTopOutDegree, fractions, rng);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_LE(sweep[i].edge_survival, sweep[i - 1].edge_survival + 1e-12);
  }
  EXPECT_DOUBLE_EQ(sweep[0].edge_survival, 1.0);
}

TEST(Robustness, Validation) {
  const auto g = hub_and_chains();
  stats::Rng rng(1);
  const std::vector<double> bad = {1.0};
  EXPECT_THROW(removal_sweep(g, RemovalStrategy::kRandom, bad, rng),
               std::invalid_argument);
  EXPECT_THROW(removal_sweep(DiGraph{}, RemovalStrategy::kRandom,
                             std::vector<double>{0.1}, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace gplus::algo
