#include "algo/degrees.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/builder.h"
#include "stats/rng.h"

namespace gplus::algo {
namespace {

using graph::DiGraph;
using graph::GraphBuilder;
using graph::NodeId;

DiGraph star_graph(NodeId leaves) {
  GraphBuilder b;
  for (NodeId v = 1; v <= leaves; ++v) b.add_edge(v, 0);
  return b.build();
}

TEST(Degrees, VectorsMatchGraphAccessors) {
  const auto g = star_graph(5);
  const auto in = in_degrees(g);
  const auto out = out_degrees(g);
  ASSERT_EQ(in.size(), 6u);
  EXPECT_EQ(in[0], 5u);
  EXPECT_EQ(out[0], 0u);
  for (NodeId v = 1; v <= 5; ++v) {
    EXPECT_EQ(in[v], 0u);
    EXPECT_EQ(out[v], 1u);
  }
}

TEST(Degrees, DistributionMeanAndMax) {
  const auto g = star_graph(9);
  const auto dist = in_degree_distribution(g);
  EXPECT_DOUBLE_EQ(dist.mean, 0.9);
  EXPECT_EQ(dist.max, 9u);
  ASSERT_FALSE(dist.ccdf.empty());
  EXPECT_DOUBLE_EQ(dist.ccdf.front().y, 1.0);
}

TEST(Degrees, DegenerateGraphSkipsPowerLawFit) {
  // Ring: every degree is exactly 1 — no fit possible, no throw.
  GraphBuilder b;
  for (NodeId u = 0; u < 10; ++u) b.add_edge(u, (u + 1) % 10);
  const auto dist = out_degree_distribution(b.build());
  EXPECT_EQ(dist.power_law.points, 0u);
  EXPECT_DOUBLE_EQ(dist.power_law.alpha, 0.0);
}

TEST(Degrees, PowerLawRecoveredFromSyntheticGraph) {
  // Build a graph whose in-degrees follow floor(Pareto) explicitly.
  stats::Rng rng(3);
  GraphBuilder b;
  NodeId next_src = 20'000;  // sources live above the 20k targets
  for (NodeId v = 0; v < 20'000; ++v) {
    const double u = 1.0 - rng.next_double();
    const auto deg = static_cast<std::uint64_t>(std::pow(u, -1.0 / 1.5));
    for (std::uint64_t i = 0; i < std::min<std::uint64_t>(deg, 4000); ++i) {
      b.add_edge(next_src++, v);
    }
  }
  const auto dist = in_degree_distribution(b.build(), 1);
  EXPECT_NEAR(dist.power_law.alpha, 1.5, 0.25);
  EXPECT_GT(dist.power_law.r_squared, 0.95);
}

TEST(Degrees, MeanInEqualsMeanOut) {
  stats::Rng rng(4);
  GraphBuilder b(500);
  for (int i = 0; i < 3000; ++i) {
    b.add_edge(static_cast<NodeId>(rng.next_below(500)),
               static_cast<NodeId>(rng.next_below(500)));
  }
  const auto g = b.build();
  const auto in = in_degree_distribution(g);
  const auto out = out_degree_distribution(g);
  EXPECT_DOUBLE_EQ(in.mean, out.mean);
}

TEST(Degrees, EmptyGraph) {
  const DiGraph g;
  const auto dist = in_degree_distribution(g);
  EXPECT_EQ(dist.mean, 0.0);
  EXPECT_EQ(dist.max, 0u);
  EXPECT_TRUE(dist.ccdf.empty());
}

}  // namespace
}  // namespace gplus::algo
