#include "stats/discrete.h"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace gplus::stats {
namespace {

TEST(NormalizeWeights, NormalizesToUnitSum) {
  const std::vector<double> w = {1.0, 3.0, 4.0};
  const auto norm = normalize_weights(w);
  EXPECT_DOUBLE_EQ(norm[0], 0.125);
  EXPECT_DOUBLE_EQ(norm[1], 0.375);
  EXPECT_DOUBLE_EQ(norm[2], 0.5);
}

TEST(NormalizeWeights, RejectsInvalidInput) {
  EXPECT_THROW(normalize_weights({}), std::invalid_argument);
  const std::vector<double> neg = {1.0, -0.5};
  EXPECT_THROW(normalize_weights(neg), std::invalid_argument);
  const std::vector<double> zeros = {0.0, 0.0};
  EXPECT_THROW(normalize_weights(zeros), std::invalid_argument);
}

TEST(DiscreteDistribution, ProbabilityMatchesNormalizedWeights) {
  const std::vector<double> w = {2.0, 6.0, 2.0};
  const DiscreteDistribution dist(w);
  EXPECT_EQ(dist.size(), 3u);
  EXPECT_DOUBLE_EQ(dist.probability(0), 0.2);
  EXPECT_DOUBLE_EQ(dist.probability(1), 0.6);
  EXPECT_DOUBLE_EQ(dist.probability(2), 0.2);
  EXPECT_THROW(dist.probability(3), std::invalid_argument);
}

TEST(DiscreteDistribution, SingleCategoryAlwaysSampled) {
  const std::vector<double> w = {7.5};
  const DiscreteDistribution dist(w);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(dist.sample(rng), 0u);
}

TEST(DiscreteDistribution, ZeroWeightCategoryNeverSampled) {
  const std::vector<double> w = {1.0, 0.0, 1.0};
  const DiscreteDistribution dist(w);
  Rng rng(2);
  for (int i = 0; i < 10'000; ++i) EXPECT_NE(dist.sample(rng), 1u);
}

TEST(DiscreteDistribution, EmpiricalFrequenciesMatch) {
  const std::vector<double> w = {0.1, 0.2, 0.3, 0.4};
  const DiscreteDistribution dist(w);
  Rng rng(3);
  std::array<int, 4> counts{};
  constexpr int kDraws = 400'000;
  for (int i = 0; i < kDraws; ++i) ++counts[dist.sample(rng)];
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / kDraws, w[i], 0.005)
        << "category " << i;
  }
}

TEST(DiscreteDistribution, HandlesManyCategories) {
  std::vector<double> w(1000, 1.0);
  w[500] = 1000.0;  // one heavy category
  const DiscreteDistribution dist(w);
  Rng rng(4);
  int heavy = 0;
  constexpr int kDraws = 50'000;
  for (int i = 0; i < kDraws; ++i) heavy += dist.sample(rng) == 500;
  // Heavy category holds 1000/1999 ≈ 0.5 of the mass.
  EXPECT_NEAR(static_cast<double>(heavy) / kDraws, 0.5, 0.02);
}

TEST(DiscreteDistribution, ExtremeWeightRatios) {
  const std::vector<double> w = {1e-12, 1.0};
  const DiscreteDistribution dist(w);
  Rng rng(5);
  for (int i = 0; i < 10'000; ++i) EXPECT_EQ(dist.sample(rng), 1u);
}

class DiscreteCategoryCount : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DiscreteCategoryCount, UniformWeightsAreUniform) {
  const std::size_t n = GetParam();
  std::vector<double> w(n, 2.5);
  const DiscreteDistribution dist(w);
  Rng rng(6);
  std::vector<int> counts(n, 0);
  const int draws = static_cast<int>(20'000 * n);
  for (int i = 0; i < draws; ++i) ++counts[dist.sample(rng)];
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / draws, 1.0 / n, 0.15 / n)
        << "category " << i << " of " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DiscreteCategoryCount,
                         ::testing::Values(1u, 2u, 3u, 7u, 16u));

}  // namespace
}  // namespace gplus::stats
