#include "synth/profile.h"

#include <gtest/gtest.h>

#include <set>

namespace gplus::synth {
namespace {

TEST(Attributes, TableOrderAndNames) {
  const auto all = all_attributes();
  EXPECT_EQ(all.size(), kAttributeCount);
  EXPECT_EQ(attribute_name(all[0]), "Name");
  EXPECT_EQ(attribute_name(Attribute::kPlacesLived), "Places lived");
  EXPECT_EQ(attribute_name(Attribute::kHomeContact), "Home (contact)");
  std::set<std::string_view> names;
  for (auto a : all) EXPECT_TRUE(names.insert(attribute_name(a)).second);
}

TEST(Enums, NamesAreDistinctAndNonEmpty) {
  std::set<std::string_view> seen;
  for (std::size_t i = 0; i < kGenderCount; ++i) {
    const auto name = gender_name(static_cast<Gender>(i));
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(seen.insert(name).second);
  }
  seen.clear();
  for (std::size_t i = 0; i < kRelationshipCount; ++i) {
    const auto name = relationship_name(static_cast<Relationship>(i));
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(seen.insert(name).second);
  }
}

TEST(Occupations, CodesMatchPaperNotation) {
  EXPECT_EQ(occupation_code(Occupation::kComedian), "Co");
  EXPECT_EQ(occupation_code(Occupation::kInformationTech), "IT");
  EXPECT_EQ(occupation_code(Occupation::kTvHost), "TV");
  EXPECT_EQ(occupation_code(Occupation::kWriter), "Wr");
  std::set<std::string_view> codes;
  for (std::size_t i = 0; i < kOccupationCount; ++i) {
    const auto code = occupation_code(static_cast<Occupation>(i));
    EXPECT_EQ(code.size(), 2u);
    EXPECT_TRUE(codes.insert(code).second);
    EXPECT_FALSE(occupation_name(static_cast<Occupation>(i)).empty());
  }
}

TEST(AttributeMask, SetTestClear) {
  AttributeMask m;
  EXPECT_FALSE(m.test(Attribute::kGender));
  m.set(Attribute::kGender);
  m.set(Attribute::kPhrase);
  EXPECT_TRUE(m.test(Attribute::kGender));
  EXPECT_TRUE(m.test(Attribute::kPhrase));
  EXPECT_FALSE(m.test(Attribute::kEducation));
  m.clear(Attribute::kGender);
  EXPECT_FALSE(m.test(Attribute::kGender));
  EXPECT_TRUE(m.test(Attribute::kPhrase));
}

TEST(AttributeMask, CountWithExclusions) {
  AttributeMask m;
  m.set(Attribute::kName);
  m.set(Attribute::kWorkContact);
  m.set(Attribute::kHomeContact);
  m.set(Attribute::kGender);
  EXPECT_EQ(m.count(), 4);
  const std::uint32_t exclude = AttributeMask::bit(Attribute::kWorkContact) |
                                AttributeMask::bit(Attribute::kHomeContact);
  EXPECT_EQ(m.count(exclude), 2);
}

TEST(AttributeMask, Equality) {
  AttributeMask a, b;
  EXPECT_EQ(a, b);
  a.set(Attribute::kPhrase);
  EXPECT_NE(a, b);
  b.set(Attribute::kPhrase);
  EXPECT_EQ(a, b);
}

TEST(Profile, TelUserDetection) {
  Profile p;
  EXPECT_FALSE(p.is_tel_user());
  p.shared.set(Attribute::kWorkContact);
  EXPECT_TRUE(p.is_tel_user());
  p.shared.clear(Attribute::kWorkContact);
  p.shared.set(Attribute::kHomeContact);
  EXPECT_TRUE(p.is_tel_user());
}

TEST(Profile, LocatedRequiresBothFieldAndCountry) {
  Profile p;
  p.country = 0;
  EXPECT_FALSE(p.is_located());  // field not shared
  p.shared.set(Attribute::kPlacesLived);
  EXPECT_TRUE(p.is_located());
  p.country = geo::kNoCountry;
  EXPECT_FALSE(p.is_located());
}

TEST(DisplayName, OrdinaryAndCelebrity) {
  Profile ordinary;
  ordinary.country = *geo::find_country("US");
  const auto plain = display_name(42, ordinary);
  EXPECT_NE(plain.find(' '), std::string::npos);  // "First Last"
  EXPECT_EQ(plain.find("("), std::string::npos);  // no byline
  // Deterministic.
  EXPECT_EQ(plain, display_name(42, ordinary));

  Profile celeb = ordinary;
  celeb.celebrity = true;
  celeb.country = *geo::find_country("BR");
  celeb.occupation = Occupation::kComedian;
  const auto name = display_name(7, celeb);
  EXPECT_NE(name.find("Comedian"), std::string::npos);
  EXPECT_NE(name, plain);
}

}  // namespace
}  // namespace gplus::synth
