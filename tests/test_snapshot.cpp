// Serving-snapshot format tests: round-trip fidelity against the source
// Dataset/DiGraph, plus the dataset_io-style hardening gauntlet (bad
// magic, truncation, corrupt header, unknown version, rogue sections).
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/dataset.h"
#include "core/parallel.h"
#include "geo/countries.h"
#include "serve/snapshot.h"
#include "serve/snapshot_file.h"

namespace gplus::serve {
namespace {

// Local FNV-1a mirror of the header checksum, so tests can re-seal a
// deliberately patched header (changing anything else must still fail).
std::uint64_t fnv1a64(const std::byte* data, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<std::uint64_t>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Copies snapshot bytes into a mutable, 8-byte-aligned vector.
std::vector<std::uint64_t> mutable_copy(const SnapshotBuffer& snapshot) {
  std::vector<std::uint64_t> words((snapshot.size() + 7) / 8, 0);
  std::memcpy(words.data(), snapshot.bytes().data(), snapshot.size());
  return words;
}

std::span<const std::byte> as_bytes(const std::vector<std::uint64_t>& words,
                                    std::size_t size) {
  return {reinterpret_cast<const std::byte*>(words.data()), size};
}

void reseal_header(std::vector<std::uint64_t>& words) {
  auto* bytes = reinterpret_cast<std::byte*>(words.data());
  const std::uint64_t checksum = fnv1a64(bytes, 104);
  std::memcpy(bytes + 104, &checksum, 8);
}

class SnapshotRoundTrip : public ::testing::Test {
 protected:
  static const core::Dataset& dataset() {
    static const core::Dataset instance = core::make_standard_dataset(3000, 11);
    return instance;
  }
  static const SnapshotBuffer& snapshot() {
    static const SnapshotBuffer instance = build_snapshot(dataset());
    return instance;
  }
};

TEST_F(SnapshotRoundTrip, AdjacencyMatchesGraph) {
  const SnapshotView view(snapshot().bytes());
  const auto& g = dataset().graph();
  ASSERT_EQ(view.node_count(), g.node_count());
  ASSERT_EQ(view.edge_count(), g.edge_count());
  for (graph::NodeId u = 0; u < g.node_count(); ++u) {
    const auto out = g.out_neighbors(u);
    const auto got_out = view.out_neighbors(u);
    ASSERT_EQ(got_out.size(), out.size()) << u;
    EXPECT_TRUE(std::equal(out.begin(), out.end(), got_out.begin())) << u;
    const auto in = g.in_neighbors(u);
    const auto got_in = view.in_neighbors(u);
    ASSERT_EQ(got_in.size(), in.size()) << u;
    EXPECT_TRUE(std::equal(in.begin(), in.end(), got_in.begin())) << u;
    EXPECT_EQ(view.out_degree(u), g.out_degree(u));
    EXPECT_EQ(view.in_degree(u), g.in_degree(u));
  }
}

TEST_F(SnapshotRoundTrip, ReciprocalBitmapMatchesGraph) {
  const SnapshotView view(snapshot().bytes());
  const auto& g = dataset().graph();
  std::uint64_t e = 0;
  for (graph::NodeId u = 0; u < g.node_count(); ++u) {
    std::uint64_t reciprocal = 0;
    for (const graph::NodeId v : g.out_neighbors(u)) {
      const bool expect = g.has_edge(v, u);
      EXPECT_EQ(view.edge_reciprocal(e), expect) << u << "->" << v;
      reciprocal += expect ? 1 : 0;
      ++e;
    }
    EXPECT_EQ(view.reciprocal_out_degree(u), reciprocal) << u;
  }
}

TEST_F(SnapshotRoundTrip, ProfilesAndCountryIndexMatchDataset) {
  const SnapshotView view(snapshot().bytes());
  ASSERT_TRUE(view.has_country_index());
  std::size_t located = 0;
  for (graph::NodeId u = 0; u < view.node_count(); ++u) {
    const auto& want = dataset().profiles[u];
    const PackedProfile& got = view.profile(u);
    EXPECT_EQ(got.gender, static_cast<std::uint8_t>(want.gender));
    EXPECT_EQ(got.relationship, static_cast<std::uint8_t>(want.relationship));
    EXPECT_EQ(got.occupation, static_cast<std::uint8_t>(want.occupation));
    EXPECT_EQ(got.country, want.country);
    EXPECT_EQ(got.shared_bits, want.shared.bits());
    EXPECT_EQ(got.celebrity(), want.celebrity);
    EXPECT_EQ(got.located(), want.is_located());
    EXPECT_EQ(got.tel_user(), want.is_tel_user());
    if (want.is_located()) ++located;
  }
  std::size_t indexed = 0;
  for (std::uint16_t c = 0; c < geo::country_count(); ++c) {
    const auto users = view.country_users(c);
    indexed += users.size();
    for (std::size_t i = 0; i < users.size(); ++i) {
      EXPECT_EQ(dataset().profiles[users[i]].country, c);
      EXPECT_TRUE(dataset().profiles[users[i]].is_located());
      if (i > 0) EXPECT_LT(users[i - 1], users[i]);
    }
  }
  EXPECT_EQ(indexed, located);
}

TEST_F(SnapshotRoundTrip, StreamAndFileRoundTripBitIdentical) {
  std::ostringstream out;
  write_snapshot(snapshot(), out);
  std::istringstream in(out.str());
  const SnapshotBuffer loaded = read_snapshot(in);
  ASSERT_EQ(loaded.size(), snapshot().size());
  EXPECT_EQ(std::memcmp(loaded.bytes().data(), snapshot().bytes().data(),
                        snapshot().size()),
            0);

  const auto path =
      std::filesystem::temp_directory_path() / "gplus_snapshot_test.snap";
  save_snapshot(snapshot(), path);
  const SnapshotBuffer from_file = load_snapshot(path);
  EXPECT_EQ(from_file.size(), snapshot().size());
  EXPECT_EQ(std::memcmp(from_file.bytes().data(), snapshot().bytes().data(),
                        snapshot().size()),
            0);
  std::filesystem::remove(path);
}

TEST_F(SnapshotRoundTrip, OmittingCountryIndexShrinksAndStillValidates) {
  SnapshotOptions options;
  options.country_index = false;
  const SnapshotBuffer lean = build_snapshot(dataset(), options);
  EXPECT_LT(lean.size(), snapshot().size());
  const SnapshotView view(lean.bytes());
  EXPECT_FALSE(view.has_country_index());
  EXPECT_TRUE(view.country_users(0).empty());
  EXPECT_EQ(view.node_count(), dataset().graph().node_count());
}

TEST_F(SnapshotRoundTrip, RejectsBadMagic) {
  auto words = mutable_copy(snapshot());
  reinterpret_cast<char*>(words.data())[0] = 'X';
  EXPECT_THROW(
      { SnapshotView view(as_bytes(words, snapshot().size())); },
      std::runtime_error);
}

TEST_F(SnapshotRoundTrip, RejectsCorruptHeader) {
  auto words = mutable_copy(snapshot());
  // Flip one node-count byte without resealing: checksum must catch it.
  reinterpret_cast<std::uint8_t*>(words.data())[16] ^= 0xFF;
  try {
    SnapshotView view(as_bytes(words, snapshot().size()));
    FAIL() << "corrupt header accepted";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("checksum"), std::string::npos);
  }
}

TEST_F(SnapshotRoundTrip, RejectsUnknownVersion) {
  auto words = mutable_copy(snapshot());
  auto* bytes = reinterpret_cast<std::uint8_t*>(words.data());
  bytes[8] = 99;  // version field
  reseal_header(words);
  try {
    SnapshotView view(as_bytes(words, snapshot().size()));
    FAIL() << "unknown version accepted";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("version"), std::string::npos);
  }
}

TEST_F(SnapshotRoundTrip, RejectsRogueSectionOffset) {
  auto words = mutable_copy(snapshot());
  auto* bytes = reinterpret_cast<std::byte*>(words.data());
  const std::uint64_t huge = snapshot().size() + 1024;
  std::memcpy(bytes + 32, &huge, 8);  // out_offsets section offset
  reseal_header(words);
  try {
    SnapshotView view(as_bytes(words, snapshot().size()));
    FAIL() << "rogue section accepted";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("out of bounds"), std::string::npos);
  }
}

TEST_F(SnapshotRoundTrip, RejectsTruncation) {
  // View over a truncated span: size mismatch.
  EXPECT_THROW(
      { SnapshotView view(snapshot().bytes().subspan(0, snapshot().size() - 8)); },
      std::runtime_error);
  // Stream cut mid-body: truncated stream.
  std::ostringstream out;
  write_snapshot(snapshot(), out);
  const std::string full = out.str();
  std::istringstream cut_body(full.substr(0, full.size() / 2));
  EXPECT_THROW(read_snapshot(cut_body), std::runtime_error);
  // Stream cut mid-header.
  std::istringstream cut_header(full.substr(0, 40));
  EXPECT_THROW(read_snapshot(cut_header), std::runtime_error);
  // Not a snapshot at all.
  std::istringstream garbage("definitely not a snapshot file .......");
  EXPECT_THROW(read_snapshot(garbage), std::runtime_error);
}

TEST_F(SnapshotRoundTrip, V1BuildsOpensAndServesUnchanged) {
  SnapshotOptions options;
  options.version = kSnapshotVersion1;
  const SnapshotBuffer v1 = build_snapshot(dataset(), options);
  EXPECT_EQ(std::memcmp(v1.bytes().data(), "GPSNAP01", 8), 0);
  // v2 is exactly v1 plus the trailing digest table.
  EXPECT_EQ(v1.size() + kSnapshotDigestBytes, snapshot().size());

  const SnapshotView view(v1.bytes());
  EXPECT_EQ(view.version(), kSnapshotVersion1);
  EXPECT_FALSE(view.has_section_digests());
  EXPECT_NO_THROW(view.verify_sections());  // nothing to verify on v1

  // Same dataset, same serving surface: adjacency and profiles agree
  // with the v2 view byte for byte.
  const SnapshotView v2(snapshot().bytes());
  ASSERT_EQ(view.node_count(), v2.node_count());
  ASSERT_EQ(view.edge_count(), v2.edge_count());
  for (graph::NodeId u = 0; u < view.node_count(); u += 97) {
    const auto a = view.out_neighbors(u);
    const auto b = v2.out_neighbors(u);
    ASSERT_EQ(a.size(), b.size()) << u;
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin())) << u;
    EXPECT_EQ(view.profile(u), v2.profile(u)) << u;
  }
}

TEST_F(SnapshotRoundTrip, V2DigestTableVerifies) {
  const SnapshotView view(snapshot().bytes());
  EXPECT_EQ(view.version(), kSnapshotVersion2);
  EXPECT_TRUE(view.has_section_digests());
  EXPECT_NO_THROW(view.verify_sections());
}

TEST_F(SnapshotRoundTrip, BitFlipSweepRejectsEveryCorruption) {
  // Flip one byte inside every data section of a valid v2 snapshot: the
  // header stays sound (so the O(1) open succeeds), but deep validation
  // must name the corruption — for each section, with no crash.
  const auto* base = reinterpret_cast<const std::uint8_t*>(snapshot().bytes().data());
  for (std::size_t section = 0; section < kSnapshotSectionCount; ++section) {
    std::uint64_t offset = 0;
    std::memcpy(&offset, base + 32 + section * 8, 8);
    ASSERT_NE(offset, 0u) << "section " << section << " absent";
    auto words = mutable_copy(snapshot());
    reinterpret_cast<std::uint8_t*>(words.data())[offset + 9] ^= 0x40;
    // The open-time structural checks may already catch the flip (offset
    // arrays carry invariants); the digest sweep must catch everything
    // that slips past them. Either way: rejected, never served.
    try {
      const SnapshotView view(as_bytes(words, snapshot().size()));
      view.verify_sections();
      FAIL() << "corruption in section " << section << " accepted";
    } catch (const std::runtime_error& error) {
      EXPECT_FALSE(std::string(error.what()).empty()) << section;
    }
  }
  // A flipped digest-table byte is caught at open by the table's own
  // checksum — a corrupt validator never reports "all sections fine".
  auto words = mutable_copy(snapshot());
  reinterpret_cast<std::uint8_t*>(words.data())[snapshot().size() -
                                                kSnapshotDigestBytes + 3] ^= 1;
  try {
    SnapshotView view(as_bytes(words, snapshot().size()));
    FAIL() << "corrupt digest table accepted";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("digest"), std::string::npos);
  }
}

TEST_F(SnapshotRoundTrip, RejectsTruncatedDigestTable) {
  // A v2 header whose total leaves no room for the trailing table.
  std::vector<std::uint64_t> words(14, 0);
  auto* bytes = reinterpret_cast<std::byte*>(words.data());
  std::memcpy(bytes, "GPSNAP02", 8);
  const std::uint32_t version = 2;
  std::memcpy(bytes + 8, &version, 4);
  const std::uint64_t total = 112;
  std::memcpy(bytes + 96, &total, 8);
  reseal_header(words);
  try {
    SnapshotView view(as_bytes(words, 112));
    FAIL() << "truncated digest table accepted";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("digest"), std::string::npos);
  }
}

TEST_F(SnapshotRoundTrip, SniffMagicIsShortReadSafe) {
  std::istringstream v2("GPSNAP02 plus trailing bytes");
  EXPECT_TRUE(sniff_snapshot_magic(v2));
  std::istringstream v1("GPSNAP01");
  EXPECT_TRUE(sniff_snapshot_magic(v1));
  std::istringstream future("GPSNAP99");  // unknown version digits
  EXPECT_FALSE(sniff_snapshot_magic(future));
  std::istringstream shorter("GPS");  // shorter than the magic itself
  EXPECT_FALSE(sniff_snapshot_magic(shorter));
  std::istringstream empty("");
  EXPECT_FALSE(sniff_snapshot_magic(empty));
  std::istringstream foreign("GPLUSDS1 dataset, not a snapshot");
  EXPECT_FALSE(sniff_snapshot_magic(foreign));
}

class SnapshotV3 : public SnapshotRoundTrip {
 protected:
  static const SnapshotBuffer& v3() {
    static const SnapshotBuffer instance = [] {
      SnapshotOptions options;
      options.version = kSnapshotVersion3;
      return build_snapshot(dataset(), options);
    }();
    return instance;
  }
};

TEST_F(SnapshotV3, CompressedAdjacencyMatchesGraph) {
  const SnapshotView view(v3().bytes());
  EXPECT_EQ(view.version(), kSnapshotVersion3);
  EXPECT_TRUE(view.adjacency_compressed());
  EXPECT_TRUE(view.has_section_digests());
  EXPECT_NO_THROW(view.verify_sections());
  const auto& g = dataset().graph();
  ASSERT_EQ(view.node_count(), g.node_count());
  ASSERT_EQ(view.edge_count(), g.edge_count());
  for (graph::NodeId u = 0; u < g.node_count(); ++u) {
    EXPECT_EQ(view.out_degree(u), g.out_degree(u)) << u;
    EXPECT_EQ(view.in_degree(u), g.in_degree(u)) << u;
    NeighborScan scan = view.out_scan(u);
    ASSERT_EQ(scan.size(), g.out_degree(u)) << u;
    graph::NodeId got = 0;
    for (const graph::NodeId want : g.out_neighbors(u)) {
      ASSERT_TRUE(scan.next(got)) << u;
      EXPECT_EQ(got, want) << u;
    }
    EXPECT_FALSE(scan.next(got)) << u;
    NeighborScan in = view.in_scan(u);
    ASSERT_EQ(in.size(), g.in_degree(u)) << u;
    for (const graph::NodeId want : g.in_neighbors(u)) {
      ASSERT_TRUE(in.next(got)) << u;
      EXPECT_EQ(got, want) << u;
    }
  }
}

TEST_F(SnapshotV3, PermutationIsDegreeOrderAndInverse) {
  const SnapshotView view(v3().bytes());
  const auto& g = dataset().graph();
  std::uint64_t previous = ~std::uint64_t{0};
  for (std::uint32_t r = 0; r < view.node_count(); ++r) {
    const graph::NodeId u = view.rank_to_node(r);
    EXPECT_EQ(view.node_to_rank(u), r) << r;
    const std::uint64_t degree = g.out_degree(u) + g.in_degree(u);
    EXPECT_LE(degree, previous) << r;  // hubs first
    previous = degree;
  }
}

TEST_F(SnapshotV3, MembershipAndReciprocityMatchGraph) {
  const SnapshotView view(v3().bytes());
  const auto& g = dataset().graph();
  EXPECT_FALSE(view.edge_reciprocal(0));  // per-edge bitmap is v1/v2-only
  for (graph::NodeId u = 0; u < g.node_count(); u += 7) {
    std::uint64_t reciprocal = 0;
    for (const graph::NodeId v : g.out_neighbors(u)) {
      EXPECT_TRUE(view.has_out_edge(u, v)) << u << "->" << v;
      reciprocal += g.has_edge(v, u) ? 1 : 0;
    }
    EXPECT_EQ(view.reciprocal_out_degree(u), reciprocal) << u;
    // Probes that must miss: just-past neighbors and a far id.
    EXPECT_FALSE(view.has_out_edge(u, static_cast<graph::NodeId>(
                                          g.node_count() + 5)));
  }
}

TEST_F(SnapshotV3, ProfilesAndCountryIndexSurvive) {
  const SnapshotView view(v3().bytes());
  ASSERT_TRUE(view.has_country_index());
  const SnapshotView flat(snapshot().bytes());
  for (graph::NodeId u = 0; u < view.node_count(); u += 13) {
    EXPECT_EQ(view.profile(u), flat.profile(u)) << u;
  }
  for (std::uint16_t c = 0; c < geo::country_count(); ++c) {
    const auto a = view.country_users(c);
    const auto b = flat.country_users(c);
    ASSERT_EQ(a.size(), b.size()) << c;
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin())) << c;
  }
}

TEST_F(SnapshotV3, BitFlipSweepRejectsEveryCorruption) {
  // One flipped byte in every v3 section — including both compressed
  // adjacency streams and the permutation arrays — must be rejected by
  // open-time structural checks or the digest sweep, and never crash
  // (the decoder fails closed under ASan/UBSan).
  const auto* base = reinterpret_cast<const std::uint8_t*>(v3().bytes().data());
  for (std::size_t section = 0; section < kSnapshotSectionCount; ++section) {
    std::uint64_t offset = 0;
    std::memcpy(&offset, base + 32 + section * 8, 8);
    ASSERT_NE(offset, 0u) << "section " << section << " absent";
    for (const std::size_t delta : {std::size_t{0}, std::size_t{17}}) {
      auto words = mutable_copy(v3());
      reinterpret_cast<std::uint8_t*>(words.data())[offset + delta] ^= 0x20;
      try {
        const SnapshotView view(as_bytes(words, v3().size()));
        view.verify_sections();
        FAIL() << "corruption in section " << section << " at +" << delta
               << " accepted";
      } catch (const std::runtime_error& error) {
        EXPECT_FALSE(std::string(error.what()).empty()) << section;
      }
    }
  }
}

TEST_F(SnapshotV3, CorruptAdjacencyBytesNeverCrashTheDecoder) {
  // Deep-flip inside the varint stream of the out-adjacency section (past
  // the base/rel arrays), then *serve* from the corrupt view without
  // verifying first: decoders must fail closed — wrong answers are
  // acceptable here, out-of-bounds reads are not (ASan enforces).
  const auto* base = reinterpret_cast<const std::uint8_t*>(v3().bytes().data());
  std::uint64_t out_adj = 0;
  std::uint64_t in_adj = 0;
  std::memcpy(&out_adj, base + 32, 8);
  std::memcpy(&in_adj, base + 40, 8);
  const std::uint64_t stream_middle = out_adj + (in_adj - out_adj) / 2;
  for (std::size_t i = 0; i < 64; ++i) {
    auto words = mutable_copy(v3());
    reinterpret_cast<std::uint8_t*>(words.data())[stream_middle + i] ^= 0xFF;
    try {
      const SnapshotView view(as_bytes(words, v3().size()));
      for (graph::NodeId u = 0; u < view.node_count(); u += 11) {
        NeighborScan scan = view.out_scan(u);
        graph::NodeId v = 0;
        std::size_t decoded = 0;
        while (decoded <= view.node_count() && scan.next(v)) ++decoded;
        view.has_out_edge(u, u + 1);
      }
    } catch (const std::runtime_error&) {
      // Structural check caught it at open: equally fine.
    }
  }
}

TEST_F(SnapshotV3, OpensOffMmapAndServesIdentically) {
  const auto path =
      std::filesystem::temp_directory_path() / "gplus_snapshot_v3_mmap.snap";
  save_snapshot(v3(), path);
  {
    MappedSnapshot mapped(path);
    EXPECT_EQ(mapped.size_bytes(), v3().size());
    const SnapshotView& view = mapped.view();
    EXPECT_TRUE(view.adjacency_compressed());
    EXPECT_NO_THROW(view.verify_sections());
    const SnapshotView heap(v3().bytes());
    for (graph::NodeId u = 0; u < view.node_count(); u += 37) {
      NeighborScan a = view.out_scan(u);
      NeighborScan b = heap.out_scan(u);
      ASSERT_EQ(a.size(), b.size()) << u;
      graph::NodeId x = 0;
      graph::NodeId y = 0;
      while (b.next(y)) {
        ASSERT_TRUE(a.next(x)) << u;
        EXPECT_EQ(x, y) << u;
      }
    }
  }
  std::filesystem::remove(path);
}

TEST_F(SnapshotV3, MmapRejectsMissingAndCorruptFiles) {
  EXPECT_THROW(MappedSnapshot mapped("/nonexistent/gplus.snap"),
               std::runtime_error);
  const auto path =
      std::filesystem::temp_directory_path() / "gplus_snapshot_corrupt.snap";
  // Corrupt header byte: the mmap open itself must throw (and unmap).
  auto words = mutable_copy(v3());
  reinterpret_cast<std::uint8_t*>(words.data())[16] ^= 0xFF;
  {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(words.data()),
              static_cast<std::streamsize>(v3().size()));
  }
  EXPECT_THROW(MappedSnapshot mapped(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(SnapshotBuild, DeterministicAcrossThreadCounts) {
  const core::Dataset dataset = core::make_standard_dataset(1500, 3);
  core::set_thread_count(1);
  const SnapshotBuffer serial = build_snapshot(dataset);
  core::set_thread_count(4);
  const SnapshotBuffer parallel = build_snapshot(dataset);
  core::set_thread_count(0);
  ASSERT_EQ(serial.size(), parallel.size());
  EXPECT_EQ(std::memcmp(serial.bytes().data(), parallel.bytes().data(),
                        serial.size()),
            0);
}

}  // namespace
}  // namespace gplus::serve
