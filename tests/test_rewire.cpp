#include "algo/rewire.h"

#include <gtest/gtest.h>

#include "algo/clustering.h"
#include "algo/degrees.h"
#include "graph/builder.h"

namespace gplus::algo {
namespace {

using graph::DiGraph;
using graph::GraphBuilder;
using graph::NodeId;

DiGraph clustered_graph() {
  // Many directed triangles: high clustering to destroy by rewiring.
  GraphBuilder b;
  stats::Rng rng(11);
  for (NodeId base = 0; base < 600; base += 3) {
    for (NodeId i = 0; i < 3; ++i) {
      for (NodeId j = 0; j < 3; ++j) {
        if (i != j) b.add_edge(base + i, base + j);
      }
    }
    // Sprinkle cross links to connect the triangles.
    b.add_edge(base, static_cast<NodeId>(rng.next_below(600)));
  }
  return b.build();
}

TEST(Rewire, PreservesDegreeSequencesExactly) {
  const auto g = clustered_graph();
  stats::Rng rng(1);
  const auto rewired = rewire_configuration_model(g, 10.0, rng);
  ASSERT_EQ(rewired.node_count(), g.node_count());
  ASSERT_EQ(rewired.edge_count(), g.edge_count());
  const auto in_before = in_degrees(g);
  const auto in_after = in_degrees(rewired);
  const auto out_before = out_degrees(g);
  const auto out_after = out_degrees(rewired);
  EXPECT_EQ(in_before, in_after);
  EXPECT_EQ(out_before, out_after);
}

TEST(Rewire, NoSelfLoopsOrParallels) {
  const auto g = clustered_graph();
  stats::Rng rng(2);
  const auto rewired = rewire_configuration_model(g, 10.0, rng);
  for (NodeId u = 0; u < rewired.node_count(); ++u) {
    EXPECT_FALSE(rewired.has_edge(u, u));
    const auto nbrs = rewired.out_neighbors(u);
    for (std::size_t i = 1; i < nbrs.size(); ++i) {
      EXPECT_NE(nbrs[i - 1], nbrs[i]);  // CSR would collapse, so count check:
    }
  }
  // Edge count unchanged proves no collapses happened.
  EXPECT_EQ(rewired.edge_count(), g.edge_count());
}

TEST(Rewire, DestroysClustering) {
  const auto g = clustered_graph();
  stats::Rng rng(3);
  const auto rewired = rewire_configuration_model(g, 10.0, rng);
  const double before = average_clustering_coefficient(g);
  const double after = average_clustering_coefficient(rewired);
  EXPECT_GT(before, 0.5);
  EXPECT_LT(after, before * 0.3);
}

TEST(Rewire, ZeroSwapsIsIdentity) {
  const auto g = clustered_graph();
  stats::Rng rng(4);
  const auto same = rewire_configuration_model(g, 0.0, rng);
  EXPECT_EQ(same.edges(), g.edges());
}

TEST(Rewire, TinyGraphsPassThrough) {
  GraphBuilder b;
  b.add_edge(0, 1);
  const auto g = b.build();
  stats::Rng rng(5);
  const auto same = rewire_configuration_model(g, 10.0, rng);
  EXPECT_EQ(same.edges(), g.edges());
  EXPECT_THROW(rewire_configuration_model(g, -1.0, rng), std::invalid_argument);
}

TEST(RandomSameDensity, MatchesCounts) {
  const auto g = clustered_graph();
  stats::Rng rng(6);
  const auto random = random_same_density(g, rng);
  EXPECT_EQ(random.node_count(), g.node_count());
  EXPECT_EQ(random.edge_count(), g.edge_count());
  for (NodeId u = 0; u < random.node_count(); ++u) {
    EXPECT_FALSE(random.has_edge(u, u));
  }
}

TEST(RandomSameDensity, HasNearZeroClustering) {
  const auto g = clustered_graph();
  stats::Rng rng(7);
  const auto random = random_same_density(g, rng);
  EXPECT_LT(average_clustering_coefficient(random), 0.05);
}

}  // namespace
}  // namespace gplus::algo
