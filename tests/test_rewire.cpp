#include "algo/rewire.h"

#include <gtest/gtest.h>

#include "algo/clustering.h"
#include "algo/degrees.h"
#include "algo/reciprocity.h"
#include "core/parallel.h"
#include "graph/builder.h"

namespace gplus::algo {
namespace {

using graph::DiGraph;
using graph::GraphBuilder;
using graph::NodeId;

DiGraph clustered_graph() {
  // Many directed triangles: high clustering to destroy by rewiring.
  GraphBuilder b;
  stats::Rng rng(11);
  for (NodeId base = 0; base < 600; base += 3) {
    for (NodeId i = 0; i < 3; ++i) {
      for (NodeId j = 0; j < 3; ++j) {
        if (i != j) b.add_edge(base + i, base + j);
      }
    }
    // Sprinkle cross links to connect the triangles.
    b.add_edge(base, static_cast<NodeId>(rng.next_below(600)));
  }
  return b.build();
}

TEST(Rewire, PreservesDegreeSequencesExactly) {
  const auto g = clustered_graph();
  stats::Rng rng(1);
  const auto rewired = rewire_configuration_model(g, 10.0, rng);
  ASSERT_EQ(rewired.node_count(), g.node_count());
  ASSERT_EQ(rewired.edge_count(), g.edge_count());
  const auto in_before = in_degrees(g);
  const auto in_after = in_degrees(rewired);
  const auto out_before = out_degrees(g);
  const auto out_after = out_degrees(rewired);
  EXPECT_EQ(in_before, in_after);
  EXPECT_EQ(out_before, out_after);
}

TEST(Rewire, NoSelfLoopsOrParallels) {
  const auto g = clustered_graph();
  stats::Rng rng(2);
  const auto rewired = rewire_configuration_model(g, 10.0, rng);
  for (NodeId u = 0; u < rewired.node_count(); ++u) {
    EXPECT_FALSE(rewired.has_edge(u, u));
    const auto nbrs = rewired.out_neighbors(u);
    for (std::size_t i = 1; i < nbrs.size(); ++i) {
      EXPECT_NE(nbrs[i - 1], nbrs[i]);  // CSR would collapse, so count check:
    }
  }
  // Edge count unchanged proves no collapses happened.
  EXPECT_EQ(rewired.edge_count(), g.edge_count());
}

TEST(Rewire, DestroysClustering) {
  const auto g = clustered_graph();
  stats::Rng rng(3);
  const auto rewired = rewire_configuration_model(g, 10.0, rng);
  const double before = average_clustering_coefficient(g);
  const double after = average_clustering_coefficient(rewired);
  EXPECT_GT(before, 0.5);
  EXPECT_LT(after, before * 0.3);
}

TEST(Rewire, ZeroSwapsIsIdentity) {
  const auto g = clustered_graph();
  stats::Rng rng(4);
  const auto same = rewire_configuration_model(g, 0.0, rng);
  EXPECT_EQ(same.edges(), g.edges());
}

TEST(Rewire, TinyGraphsPassThrough) {
  GraphBuilder b;
  b.add_edge(0, 1);
  const auto g = b.build();
  stats::Rng rng(5);
  const auto same = rewire_configuration_model(g, 10.0, rng);
  EXPECT_EQ(same.edges(), g.edges());
  EXPECT_THROW(rewire_configuration_model(g, -1.0, rng), std::invalid_argument);
}

TEST(RandomSameDensity, MatchesCounts) {
  const auto g = clustered_graph();
  stats::Rng rng(6);
  const auto random = random_same_density(g, rng);
  EXPECT_EQ(random.node_count(), g.node_count());
  EXPECT_EQ(random.edge_count(), g.edge_count());
  for (NodeId u = 0; u < random.node_count(); ++u) {
    EXPECT_FALSE(random.has_edge(u, u));
  }
}

TEST(RandomSameDensity, HasNearZeroClustering) {
  const auto g = clustered_graph();
  stats::Rng rng(7);
  const auto random = random_same_density(g, rng);
  EXPECT_LT(average_clustering_coefficient(random), 0.05);
}

// Graph with self-loops and zero-degree (isolated) nodes: the degenerate
// shapes a generic rewiring tool must survive with degrees intact.
DiGraph degenerate_graph() {
  std::vector<graph::Edge> edges;
  stats::Rng rng(23);
  for (NodeId u = 0; u < 120; ++u) {
    edges.push_back({u, static_cast<NodeId>((u + 1) % 120)});
    if (u % 10 == 0) edges.push_back({u, u});  // self-loop
    if (rng.next_bool(0.3)) {
      edges.push_back({u, static_cast<NodeId>(rng.next_below(120))});
    }
  }
  // Nodes 120..139 are isolated.
  return DiGraph::from_edges(140, edges, /*keep_self_loops=*/true);
}

TEST(Rewire, DeterministicAcrossThreadCounts) {
  const auto g = clustered_graph();
  core::set_thread_count(1);
  stats::Rng rng1(9);
  const auto lane1 = rewire_configuration_model(g, 5.0, rng1);
  core::set_thread_count(4);
  stats::Rng rng4(9);
  const auto lane4 = rewire_configuration_model(g, 5.0, rng4);
  core::set_thread_count(0);
  EXPECT_EQ(lane1.edges(), lane4.edges());
}

TEST(Rewire, DegenerateInputsKeepDegreesAndLoops) {
  const auto g = degenerate_graph();
  stats::Rng rng(8);
  const auto rewired = rewire_configuration_model(g, 8.0, rng);
  EXPECT_EQ(rewired.node_count(), g.node_count());
  EXPECT_EQ(rewired.edge_count(), g.edge_count());
  EXPECT_EQ(in_degrees(rewired), in_degrees(g));
  EXPECT_EQ(out_degrees(rewired), out_degrees(g));
  // Isolated nodes stay isolated.
  for (NodeId u = 120; u < 140; ++u) {
    EXPECT_EQ(rewired.out_degree(u), 0u);
    EXPECT_EQ(rewired.in_degree(u), 0u);
  }
}

TEST(Calibrate, ImprovesTowardHigherClustering) {
  // Low-clustering random-ish graph steered toward a clustered profile.
  const auto g = [] {
    stats::Rng rng(40);
    return random_same_density(clustered_graph(), rng);
  }();
  RewireObjective objective;
  objective.target_clustering = 0.3;
  objective.target_reciprocity = global_reciprocity(g);  // hold fixed
  CalibrateConfig config;
  config.seed = 2;
  config.max_rounds = 8;
  config.clustering_sample = 0;
  config.swaps_per_round_per_edge = 0.2;
  const CalibrationResult result = calibrate_to_profile(g, objective, config);
  EXPECT_LE(result.final_error, result.initial_error);
  EXPECT_GT(result.calibrated.clustering, result.initial.clustering);
  // Degree-preserving by construction.
  EXPECT_EQ(in_degrees(result.graph), in_degrees(g));
  EXPECT_EQ(out_degrees(result.graph), out_degrees(g));
}

TEST(Calibrate, DegenerateInputsPreserveDegrees) {
  const auto g = degenerate_graph();
  RewireObjective objective;
  objective.target_clustering = 0.2;
  objective.target_reciprocity = 0.5;
  CalibrateConfig config;
  config.seed = 3;
  config.max_rounds = 3;
  config.clustering_sample = 0;
  config.swaps_per_round_per_edge = 0.3;
  const CalibrationResult result = calibrate_to_profile(g, objective, config);
  EXPECT_EQ(result.graph.node_count(), g.node_count());
  EXPECT_EQ(result.graph.edge_count(), g.edge_count());
  EXPECT_EQ(in_degrees(result.graph), in_degrees(g));
  EXPECT_EQ(out_degrees(result.graph), out_degrees(g));
  EXPECT_LE(result.final_error, result.initial_error);
}

TEST(Calibrate, DeterministicAcrossThreadCounts) {
  const auto g = degenerate_graph();
  RewireObjective objective;
  objective.target_clustering = 0.25;
  objective.target_reciprocity = 0.4;
  CalibrateConfig config;
  config.seed = 6;
  config.max_rounds = 3;
  config.clustering_sample = 0;
  config.swaps_per_round_per_edge = 0.3;
  core::set_thread_count(1);
  const CalibrationResult lane1 = calibrate_to_profile(g, objective, config);
  core::set_thread_count(4);
  const CalibrationResult lane4 = calibrate_to_profile(g, objective, config);
  core::set_thread_count(0);
  EXPECT_EQ(lane1.graph.edges(), lane4.graph.edges());
  EXPECT_EQ(lane1.final_error, lane4.final_error);
  EXPECT_EQ(lane1.round_errors, lane4.round_errors);
}

TEST(Calibrate, TrivialInputsPassThrough) {
  GraphBuilder b;
  b.add_edge(0, 1);
  const auto g = b.build();
  const CalibrationResult result = calibrate_to_profile(g, {});
  EXPECT_EQ(result.graph.edges(), g.edges());
  EXPECT_EQ(result.rounds_accepted, 0u);
  CalibrateConfig bad;
  bad.swaps_per_round_per_edge = -1.0;
  EXPECT_THROW(calibrate_to_profile(g, {}, bad), std::invalid_argument);
}

}  // namespace
}  // namespace gplus::algo
