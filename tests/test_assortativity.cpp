#include "algo/assortativity.h"

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "stats/rng.h"

namespace gplus::algo {
namespace {

using graph::DiGraph;
using graph::GraphBuilder;
using graph::NodeId;

TEST(Assortativity, EmptyAndEdgelessGraphsAreNeutral) {
  EXPECT_DOUBLE_EQ(degree_assortativity(DiGraph{}), 0.0);
  GraphBuilder b(4);
  EXPECT_DOUBLE_EQ(degree_assortativity(b.build()), 0.0);
}

TEST(Assortativity, RegularGraphIsNeutral) {
  // Directed ring: every endpoint degree identical -> constant marginals.
  GraphBuilder b;
  for (NodeId u = 0; u < 20; ++u) b.add_edge(u, (u + 1) % 20);
  EXPECT_DOUBLE_EQ(degree_assortativity(b.build()), 0.0);
}

TEST(Assortativity, StarIsDisassortative) {
  // Hub followed by many leaves: high in-degree target paired with
  // low-out-degree sources plus the hub's own out-edges to leaves.
  GraphBuilder b;
  for (NodeId v = 1; v <= 30; ++v) {
    b.add_edge(v, 0);
    b.add_edge(0, v);
  }
  const double r = degree_assortativity(b.build(), DegreeMode::kOutIn);
  EXPECT_LT(r, -0.5);
}

TEST(Assortativity, AssortativePairingDetected) {
  // Two tiers: hubs link hubs, leaves link leaves.
  GraphBuilder b;
  // Hub clique (nodes 0..5): dense mutual links.
  for (NodeId u = 0; u < 6; ++u) {
    for (NodeId v = 0; v < 6; ++v) {
      if (u != v) b.add_edge(u, v);
    }
  }
  // Leaf pairs (6,7), (8,9), ... mutual links only.
  for (NodeId u = 6; u < 46; u += 2) {
    b.add_reciprocal_edge(u, u + 1);
  }
  const double r = degree_assortativity(b.build(), DegreeMode::kOutIn);
  EXPECT_GT(r, 0.5);
}

TEST(Assortativity, ModesDifferOnAsymmetricGraph) {
  GraphBuilder b;
  stats::Rng rng(3);
  for (int i = 0; i < 3000; ++i) {
    // Sources concentrated on few nodes, targets spread wide.
    b.add_edge(static_cast<NodeId>(rng.next_below(20)),
               static_cast<NodeId>(20 + rng.next_below(980)));
  }
  const auto g = b.build();
  // All four modes are finite and within [-1, 1].
  for (auto mode : {DegreeMode::kOutIn, DegreeMode::kInIn, DegreeMode::kOutOut,
                    DegreeMode::kInOut}) {
    const double r = degree_assortativity(g, mode);
    EXPECT_GE(r, -1.0);
    EXPECT_LE(r, 1.0);
  }
}

TEST(NeighborDegreeProfile, StarProfile) {
  GraphBuilder b;
  for (NodeId v = 1; v <= 10; ++v) b.add_edge(v, 0);
  b.add_edge(0, 1);
  const auto profile = neighbor_degree_profile(b.build(), 5);
  ASSERT_EQ(profile.size(), 6u);
  // Out-degree-1 nodes: the 10 leaves point at the hub (in-degree 10) and
  // the hub points at leaf 1 (in-degree 1): mean = (10*10 + 1) / 11.
  EXPECT_NEAR(profile[1], 101.0 / 11.0, 1e-12);
  EXPECT_DOUBLE_EQ(profile[2], 0.0);  // nobody has out-degree 2
}

TEST(NeighborDegreeProfile, EmptyGraph) {
  const auto profile = neighbor_degree_profile(DiGraph{}, 3);
  ASSERT_EQ(profile.size(), 4u);
  for (double v : profile) EXPECT_DOUBLE_EQ(v, 0.0);
}

}  // namespace
}  // namespace gplus::algo
