// v2 / v3 serving equivalence: the compressed format is a storage
// decision, not a behavior change.
//
// One seeded graph is built four ways — v2 flat, v3 compressed (in
// memory), v3 out-of-core (streamed through sorted runs to disk) and the
// same v3 file reopened off mmap — and every engine request family must
// produce byte-identical (status, flags, payload) across all of them,
// including paging edges, deadline-clipped partials and error statuses.
// The out-of-core file must equal the in-memory v3 bytes exactly, and v3
// emission must be bit-stable across GPLUS_THREADS (the CTest suite runs
// this binary at the default and at GPLUS_THREADS=1; tools/run_tsan.sh
// races it under TSan).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <filesystem>

#include "algo/intersect.h"
#include "algo/motifs.h"
#include "core/dataset.h"
#include "core/parallel.h"
#include "serve/engine.h"
#include "serve/snapshot.h"
#include "serve/snapshot_build.h"
#include "serve/snapshot_file.h"

namespace gplus::serve {
namespace {

class SnapshotEquivalence : public ::testing::Test {
 protected:
  static constexpr std::size_t kNodes = 2'500;

  /// Scratch path unique to this process: ctest -j runs the default and
  /// GPLUS_THREADS=1 variants of a case concurrently.
  static std::filesystem::path scratch(const std::string& stem) {
    return std::filesystem::temp_directory_path() /
           (stem + "_" + std::to_string(::getpid()) + ".snap");
  }

  static const core::Dataset& dataset() {
    static const core::Dataset instance = core::make_standard_dataset(kNodes, 7);
    return instance;
  }
  static const SnapshotBuffer& v2() {
    static const SnapshotBuffer instance = build_snapshot(dataset());
    return instance;
  }
  static const SnapshotBuffer& v3() {
    static const SnapshotBuffer instance = [] {
      SnapshotOptions options;
      options.version = kSnapshotVersion3;
      return build_snapshot(dataset(), options);
    }();
    return instance;
  }

  /// Streams the dataset's graph + profiles through the out-of-core
  /// builder into `path` (fresh scratch dir next to it).
  static OutOfCoreStats build_out_of_core(const std::filesystem::path& path) {
    OutOfCoreOptions options;
    options.work_dir = path.string() + ".work";
    options.sort_buffer_edges = 4'096;  // force several runs + a real merge
    OutOfCoreSnapshotBuilder builder(dataset().graph().node_count(),
                                     std::move(options));
    const auto& g = dataset().graph();
    for (graph::NodeId u = 0; u < g.node_count(); ++u) {
      for (const graph::NodeId v : g.out_neighbors(u)) builder.add_edge(u, v);
      builder.set_profile(u, dataset().profiles[u]);
    }
    return builder.finish(path);
  }
};

TEST_F(SnapshotEquivalence, OutOfCoreFileEqualsInMemoryV3Bytes) {
  const auto path = scratch("gplus_equiv");
  const auto stats = build_out_of_core(path);
  EXPECT_GT(stats.run_count, 1u) << "sort buffer did not force a merge";
  EXPECT_EQ(stats.edge_count, dataset().graph().edge_count());
  const SnapshotBuffer from_disk = load_snapshot(path);
  ASSERT_EQ(from_disk.size(), v3().size());
  EXPECT_EQ(std::memcmp(from_disk.bytes().data(), v3().bytes().data(),
                        v3().size()),
            0)
      << "out-of-core build diverged from the in-memory v3 builder";
  std::filesystem::remove(path);
}

TEST_F(SnapshotEquivalence, V3EmissionIsThreadCountInvariant) {
  core::set_thread_count(1);
  SnapshotOptions options;
  options.version = kSnapshotVersion3;
  const SnapshotBuffer serial = build_snapshot(dataset(), options);
  core::set_thread_count(4);
  const SnapshotBuffer threaded = build_snapshot(dataset(), options);
  core::set_thread_count(0);
  ASSERT_EQ(serial.size(), threaded.size());
  EXPECT_EQ(std::memcmp(serial.bytes().data(), threaded.bytes().data(),
                        serial.size()),
            0);
}

// Exercises every request family over one engine, folding each response
// into a caller-visible trace for comparison.
std::vector<Response> run_families(const SnapshotView& view) {
  RequestEngine engine(&view);
  std::vector<Response> trace;
  auto run = [&](Request q) {
    Response r;
    engine.execute(q, r);
    trace.push_back(std::move(r));
  };
  const auto n = static_cast<graph::NodeId>(view.node_count());
  for (graph::NodeId u = 0; u < n; u += 17) {
    run({.type = RequestType::kGetProfile, .user = u});
    run({.type = RequestType::kDegree, .user = u});
    run({.type = RequestType::kReciprocity, .user = u});
    // Circle pages: first page, mid-list page, off-the-end page.
    run({.type = RequestType::kGetOutCircle, .user = u, .limit = 8});
    run({.type = RequestType::kGetOutCircle,
         .user = u,
         .offset = 4,
         .limit = 1000});
    run({.type = RequestType::kGetInCircle, .user = u, .limit = 64});
    run({.type = RequestType::kGetInCircle,
         .user = u,
         .offset = 100'000,
         .limit = 10});
    // Deadline-clipped circle page (partial payloads must agree too).
    run({.type = RequestType::kGetOutCircle,
         .user = u,
         .limit = 1000,
         .cost_budget = 3});
    run({.type = RequestType::kShortestPath,
         .user = u,
         .target = static_cast<graph::NodeId>((u * 31 + 7) % n)});
    run({.type = RequestType::kShortestPath,
         .user = u,
         .target = static_cast<graph::NodeId>((u + 1) % n),
         .cost_budget = 25});
    // Suggest: full 2-hop walk, a default-limit page, and a
    // deadline-clipped partial (header patching must agree byte-for-byte).
    run({.type = RequestType::kSuggest, .user = u, .limit = 10});
    run({.type = RequestType::kSuggest, .user = u});
    run({.type = RequestType::kSuggest,
         .user = u,
         .limit = 25,
         .cost_budget = 40});
  }
  run({.type = RequestType::kTopK, .limit = 50});
  run({.type = RequestType::kTopK, .limit = 7, .cost_budget = 4});
  // Error statuses must match as well.
  run({.type = RequestType::kGetProfile, .user = n});
  run({.type = RequestType::kGetOutCircle, .user = n + 5, .limit = 10});
  run({.type = RequestType::kShortestPath, .user = 0, .target = n});
  run({.type = RequestType::kSuggest, .user = n, .limit = 5});
  run({.type = RequestType::kSuggest, .user = 0, .limit = 10'000});
  return trace;
}

void expect_identical(const std::vector<Response>& a,
                      const std::vector<Response>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].status, b[i].status) << what << " request " << i;
    EXPECT_EQ(a[i].flags, b[i].flags) << what << " request " << i;
    ASSERT_EQ(a[i].payload.size(), b[i].payload.size())
        << what << " request " << i;
    EXPECT_EQ(a[i].payload, b[i].payload) << what << " request " << i;
    EXPECT_EQ(a[i].cost, b[i].cost) << what << " request " << i;
  }
}

TEST_F(SnapshotEquivalence, EveryRequestFamilyByteIdenticalAcrossFormats) {
  const SnapshotView flat(v2().bytes());
  const SnapshotView compressed(v3().bytes());
  ASSERT_FALSE(flat.adjacency_compressed());
  ASSERT_TRUE(compressed.adjacency_compressed());
  const auto want = run_families(flat);
  expect_identical(want, run_families(compressed), "v2 vs v3");

  const auto path = scratch("gplus_equiv_mmap");
  save_snapshot(v3(), path);
  {
    MappedSnapshot mapped(path);
    expect_identical(want, run_families(mapped.view()), "v2 vs v3-mmap");
  }
  std::filesystem::remove(path);
}

TEST_F(SnapshotEquivalence, ScanAndLookupSurfacesAgree) {
  const SnapshotView flat(v2().bytes());
  const SnapshotView compressed(v3().bytes());
  for (graph::NodeId u = 0; u < flat.node_count(); ++u) {
    ASSERT_EQ(compressed.out_degree(u), flat.out_degree(u)) << u;
    ASSERT_EQ(compressed.in_degree(u), flat.in_degree(u)) << u;
    ASSERT_EQ(compressed.reciprocal_out_degree(u),
              flat.reciprocal_out_degree(u))
        << u;
    NeighborScan scan = compressed.out_scan(u);
    const auto want = flat.out_neighbors(u);
    ASSERT_EQ(scan.size(), want.size()) << u;
    graph::NodeId got = 0;
    for (const graph::NodeId w : want) {
      ASSERT_TRUE(scan.next(got)) << u;
      ASSERT_EQ(got, w) << u;
      ASSERT_TRUE(compressed.has_out_edge(u, w)) << u << "->" << w;
    }
  }
}

TEST_F(SnapshotEquivalence, TriadCensusIdenticalAcrossFormatsAndKernels) {
  // The exact census must not care where the adjacency lives: in-RAM
  // CSR, flat v2, compressed v3 or the same v3 bytes off mmap — and must
  // not care which intersection kernel enumerates the triangles.
  const algo::TriadCensus want = algo::triad_census(dataset().graph());
  ASSERT_GT(want.closed(), 0u);

  const SnapshotView flat(v2().bytes());
  EXPECT_EQ(algo::triad_census_of_view(flat), want) << "v2 flat";
  const SnapshotView compressed(v3().bytes());
  EXPECT_EQ(algo::triad_census_of_view(compressed), want) << "v3 compressed";

  const auto path = scratch("gplus_equiv_census");
  save_snapshot(v3(), path);
  {
    MappedSnapshot mapped(path);
    EXPECT_EQ(algo::triad_census_of_view(mapped.view()), want) << "v3 mmap";
    for (std::size_t k = 0; k < algo::kIntersectKernelCount; ++k) {
      const auto kernel = static_cast<algo::IntersectKernel>(k);
      algo::set_default_intersect_kernel(kernel);
      const algo::TriadCensus got = algo::triad_census_of_view(mapped.view());
      algo::set_default_intersect_kernel(algo::IntersectKernel::kAuto);
      EXPECT_EQ(got, want) << "kernel "
                           << algo::intersect_kernel_name(kernel);
    }
  }
  std::filesystem::remove(path);
}

TEST_F(SnapshotEquivalence, SampledCensusIdenticalAcrossFormats) {
  // The wedge sampler's probes run through each format's own edge lookup
  // (binary search on v2, block-skip varint decode on v3): identical
  // estimates prove the compressed membership path end to end.
  algo::TriadSampleConfig config;
  config.samples = 20'000;
  config.seed = 13;
  const algo::SampledTriadCensus want =
      algo::sample_triad_census(dataset().graph(), config);
  ASSERT_GT(want.total_wedges, 0u);

  const auto check = [&](const SnapshotView& view, const char* label) {
    const algo::SampledTriadCensus got =
        algo::sample_triad_census_of_view(view, config);
    EXPECT_EQ(got.total_wedges, want.total_wedges) << label;
    EXPECT_EQ(got.closed_fraction, want.closed_fraction) << label;
    for (std::size_t k = 0; k < algo::kTriadClassCount; ++k) {
      EXPECT_EQ(got.estimated_counts[k], want.estimated_counts[k])
          << label << " class " << k;
    }
  };
  const SnapshotView flat(v2().bytes());
  check(flat, "v2 flat");
  const SnapshotView compressed(v3().bytes());
  check(compressed, "v3 compressed");

  const auto path = scratch("gplus_equiv_census_sampled");
  save_snapshot(v3(), path);
  {
    MappedSnapshot mapped(path);
    check(mapped.view(), "v3 mmap");
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace gplus::serve
