#include "graph/edgelist_io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "graph/builder.h"

namespace gplus::graph {
namespace {

DiGraph sample_graph() {
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(2, 1);
  b.ensure_node(4);  // trailing isolated node
  return b.build();
}

TEST(EdgelistText, RoundTripPreservesEdges) {
  const auto g = sample_graph();
  std::stringstream buf;
  write_edgelist_text(g, buf);
  const auto back = read_edgelist_text(buf);
  EXPECT_EQ(back.edge_count(), g.edge_count());
  for (const Edge& e : g.edges()) EXPECT_TRUE(back.has_edge(e.from, e.to));
  // Text format cannot express the trailing isolated node.
  EXPECT_EQ(back.node_count(), 3u);
}

TEST(EdgelistText, SkipsCommentsAndBlankLines) {
  std::stringstream in("# header\n\n  \n0 1\n# mid comment\n1 2\n");
  const auto g = read_edgelist_text(in);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(EdgelistText, RejectsMalformedLines) {
  std::stringstream missing("0\n");
  EXPECT_THROW(read_edgelist_text(missing), std::runtime_error);
  std::stringstream garbage("a b\n");
  EXPECT_THROW(read_edgelist_text(garbage), std::runtime_error);
  std::stringstream trailing("0 1 2\n");
  EXPECT_THROW(read_edgelist_text(trailing), std::runtime_error);
}

TEST(EdgelistText, RejectsOversizedIds) {
  std::stringstream in("0 4294967296\n");  // 2^32
  EXPECT_THROW(read_edgelist_text(in), std::runtime_error);
}

TEST(EdgelistText, PreservesSelfLoops) {
  std::stringstream in("3 3\n");
  const auto g = read_edgelist_text(in);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_TRUE(g.has_edge(3, 3));
}

TEST(EdgelistBinary, RoundTripPreservesEverything) {
  const auto g = sample_graph();
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  write_edgelist_binary(g, buf);
  const auto back = read_edgelist_binary(buf);
  EXPECT_EQ(back.node_count(), g.node_count());  // isolated node survives
  EXPECT_EQ(back.edge_count(), g.edge_count());
  for (const Edge& e : g.edges()) EXPECT_TRUE(back.has_edge(e.from, e.to));
}

TEST(EdgelistBinary, RejectsTruncatedStream) {
  const auto g = sample_graph();
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  write_edgelist_binary(g, buf);
  std::string data = buf.str();
  data.resize(data.size() - 3);
  std::stringstream cut(data, std::ios::in | std::ios::binary);
  EXPECT_THROW(read_edgelist_binary(cut), std::runtime_error);
}

TEST(EdgelistBinary, RejectsCorruptEndpoint) {
  // node count 1, edge count 1, edge (0, 5) — endpoint out of range.
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  auto put64 = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf.put(static_cast<char>(v >> (8 * i)));
  };
  auto put32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf.put(static_cast<char>(v >> (8 * i)));
  };
  put64(1);
  put64(1);
  put32(0);
  put32(5);
  EXPECT_THROW(read_edgelist_binary(buf), std::runtime_error);
}

TEST(EdgelistFiles, SaveLoadBothFormats) {
  const auto g = sample_graph();
  const auto dir = std::filesystem::temp_directory_path();
  const auto text_path = dir / "gplus_test_edges.txt";
  const auto bin_path = dir / "gplus_test_edges.bin";

  save_text(g, text_path);
  const auto from_text = load_text(text_path);
  EXPECT_EQ(from_text.edge_count(), g.edge_count());

  save_binary(g, bin_path);
  const auto from_bin = load_binary(bin_path);
  EXPECT_EQ(from_bin.node_count(), g.node_count());
  EXPECT_EQ(from_bin.edge_count(), g.edge_count());

  std::filesystem::remove(text_path);
  std::filesystem::remove(bin_path);
}

TEST(EdgelistFiles, MissingFileThrows) {
  EXPECT_THROW(load_text("/nonexistent/dir/x.txt"), std::runtime_error);
  EXPECT_THROW(load_binary("/nonexistent/dir/x.bin"), std::runtime_error);
}

}  // namespace
}  // namespace gplus::graph
