#include "stats/sampling.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace gplus::stats {
namespace {

TEST(SampleWithoutReplacement, AllDistinctAndInRange) {
  Rng rng(1);
  const auto sample = sample_without_replacement(100, 30, rng);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (auto v : sample) EXPECT_LT(v, 100u);
}

TEST(SampleWithoutReplacement, FullPopulationIsPermutation) {
  Rng rng(2);
  auto sample = sample_without_replacement(50, 50, rng);
  std::sort(sample.begin(), sample.end());
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(sample[i], i);
}

TEST(SampleWithoutReplacement, ZeroSample) {
  Rng rng(3);
  EXPECT_TRUE(sample_without_replacement(10, 0, rng).empty());
}

TEST(SampleWithoutReplacement, RejectsOversizedRequest) {
  Rng rng(3);
  EXPECT_THROW(sample_without_replacement(5, 6, rng), std::invalid_argument);
}

TEST(SampleWithoutReplacement, IsUniformOverElements) {
  Rng rng(4);
  constexpr int kTrials = 30'000;
  std::vector<int> counts(10, 0);
  for (int t = 0; t < kTrials; ++t) {
    for (auto v : sample_without_replacement(10, 3, rng)) ++counts[v];
  }
  // Each element appears with probability 3/10 per trial.
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kTrials, 0.3, 0.02);
  }
}

TEST(SampleWithReplacement, SizeAndRange) {
  Rng rng(5);
  const auto sample = sample_with_replacement(7, 1000, rng);
  EXPECT_EQ(sample.size(), 1000u);
  for (auto v : sample) EXPECT_LT(v, 7u);
}

TEST(SampleWithReplacement, RejectsEmptyPopulation) {
  Rng rng(5);
  EXPECT_THROW(sample_with_replacement(0, 3, rng), std::invalid_argument);
}

TEST(ReservoirSampler, KeepsEverythingBelowCapacity) {
  Rng rng(6);
  ReservoirSampler<int> res(10, rng);
  for (int i = 0; i < 5; ++i) res.add(i);
  EXPECT_EQ(res.sample().size(), 5u);
  EXPECT_EQ(res.seen(), 5u);
}

TEST(ReservoirSampler, CapacityBound) {
  Rng rng(7);
  ReservoirSampler<int> res(10, rng);
  for (int i = 0; i < 1000; ++i) res.add(i);
  EXPECT_EQ(res.sample().size(), 10u);
  EXPECT_EQ(res.seen(), 1000u);
}

TEST(ReservoirSampler, RejectsZeroCapacity) {
  Rng rng(8);
  EXPECT_THROW(ReservoirSampler<int>(0, rng), std::invalid_argument);
}

TEST(ReservoirSampler, UniformOverStream) {
  Rng rng(9);
  constexpr int kTrials = 20'000;
  std::vector<int> counts(20, 0);
  for (int t = 0; t < kTrials; ++t) {
    ReservoirSampler<int> res(5, rng);
    for (int i = 0; i < 20; ++i) res.add(i);
    for (int v : res.sample()) ++counts[v];
  }
  // Each stream element retained with probability 5/20 = 0.25.
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kTrials, 0.25, 0.02);
  }
}

}  // namespace
}  // namespace gplus::stats
