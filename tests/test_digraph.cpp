#include "graph/digraph.h"

#include <gtest/gtest.h>

#include <vector>

namespace gplus::graph {
namespace {

std::vector<Edge> kite_edges() {
  // 0 -> 1, 0 -> 2, 1 -> 2, 2 -> 0, 3 isolated (via node_count).
  return {{0, 1}, {0, 2}, {1, 2}, {2, 0}};
}

TEST(DiGraph, EmptyGraph) {
  const DiGraph g;
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_EQ(g.mean_degree(), 0.0);
}

TEST(DiGraph, BasicCountsAndNeighbors) {
  const auto edges = kite_edges();
  const auto g = DiGraph::from_edges(4, edges);
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(2), 2u);
  EXPECT_EQ(g.out_degree(3), 0u);
  EXPECT_EQ(g.in_degree(3), 0u);

  const auto n0 = g.out_neighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], 1u);
  EXPECT_EQ(n0[1], 2u);

  const auto in2 = g.in_neighbors(2);
  ASSERT_EQ(in2.size(), 2u);
  EXPECT_EQ(in2[0], 0u);
  EXPECT_EQ(in2[1], 1u);
}

TEST(DiGraph, DuplicateEdgesCollapse) {
  const std::vector<Edge> edges = {{0, 1}, {0, 1}, {0, 1}, {1, 0}};
  const auto g = DiGraph::from_edges(2, edges);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.in_degree(1), 1u);
}

TEST(DiGraph, SelfLoopPolicy) {
  const std::vector<Edge> edges = {{0, 0}, {0, 1}};
  const auto dropped = DiGraph::from_edges(2, edges, /*keep_self_loops=*/false);
  EXPECT_EQ(dropped.edge_count(), 1u);
  EXPECT_FALSE(dropped.has_edge(0, 0));
  const auto kept = DiGraph::from_edges(2, edges, /*keep_self_loops=*/true);
  EXPECT_EQ(kept.edge_count(), 2u);
  EXPECT_TRUE(kept.has_edge(0, 0));
}

TEST(DiGraph, HasEdgeAndReciprocal) {
  const auto g = DiGraph::from_edges(4, kite_edges());
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.is_reciprocal(0, 2));
  EXPECT_FALSE(g.is_reciprocal(0, 1));
}

TEST(DiGraph, EdgesRoundTripSorted) {
  const auto g = DiGraph::from_edges(4, kite_edges());
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 4u);
  for (std::size_t i = 1; i < edges.size(); ++i) {
    EXPECT_LE(edges[i - 1], edges[i]);
  }
  for (const Edge& e : edges) EXPECT_TRUE(g.has_edge(e.from, e.to));
}

TEST(DiGraph, ReversedSwapsDirections) {
  const auto g = DiGraph::from_edges(4, kite_edges());
  const auto r = g.reversed();
  EXPECT_EQ(r.node_count(), g.node_count());
  EXPECT_EQ(r.edge_count(), g.edge_count());
  for (const Edge& e : g.edges()) {
    EXPECT_TRUE(r.has_edge(e.to, e.from));
  }
  EXPECT_EQ(r.out_degree(2), g.in_degree(2));
  EXPECT_EQ(r.in_degree(2), g.out_degree(2));
}

TEST(DiGraph, OutOfRangeEndpointsRejected) {
  const std::vector<Edge> edges = {{0, 5}};
  EXPECT_THROW(DiGraph::from_edges(3, edges), std::invalid_argument);
}

TEST(DiGraph, NodeAccessorsValidateIds) {
  const auto g = DiGraph::from_edges(2, std::vector<Edge>{{0, 1}});
  EXPECT_THROW(g.out_neighbors(2), std::invalid_argument);
  EXPECT_THROW(g.in_neighbors(2), std::invalid_argument);
  EXPECT_THROW(g.out_degree(2), std::invalid_argument);
  EXPECT_THROW((void)g.has_edge(0, 2), std::invalid_argument);
}

TEST(DiGraph, MeanDegree) {
  const auto g = DiGraph::from_edges(4, kite_edges());
  EXPECT_DOUBLE_EQ(g.mean_degree(), 1.0);
}

TEST(DiGraph, LargeAdjacencyStaysSorted) {
  std::vector<Edge> edges;
  // Star with shuffled insert order.
  for (NodeId v = 100; v > 0; --v) edges.push_back({0, v});
  const auto g = DiGraph::from_edges(101, edges);
  const auto nbrs = g.out_neighbors(0);
  ASSERT_EQ(nbrs.size(), 100u);
  for (std::size_t i = 1; i < nbrs.size(); ++i) EXPECT_LT(nbrs[i - 1], nbrs[i]);
  EXPECT_TRUE(g.has_edge(0, 57));
  EXPECT_FALSE(g.has_edge(57, 0));
}

class DiGraphSize : public ::testing::TestWithParam<NodeId> {};

TEST_P(DiGraphSize, RingGraphInvariants) {
  const NodeId n = GetParam();
  std::vector<Edge> edges;
  for (NodeId u = 0; u < n; ++u) edges.push_back({u, static_cast<NodeId>((u + 1) % n)});
  const auto g = DiGraph::from_edges(n, edges);
  EXPECT_EQ(g.edge_count(), n);
  for (NodeId u = 0; u < n; ++u) {
    EXPECT_EQ(g.out_degree(u), 1u);
    EXPECT_EQ(g.in_degree(u), 1u);
    EXPECT_TRUE(g.has_edge(u, (u + 1) % n));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DiGraphSize,
                         ::testing::Values(2u, 3u, 10u, 257u, 1024u));

}  // namespace
}  // namespace gplus::graph
