#include "graph/builder.h"

#include <gtest/gtest.h>

namespace gplus::graph {
namespace {

TEST(GraphBuilder, GrowsNodeSpaceOnDemand) {
  GraphBuilder b;
  EXPECT_EQ(b.node_count(), 0u);
  b.add_edge(3, 7);
  EXPECT_EQ(b.node_count(), 8u);
  b.add_edge(1, 2);
  EXPECT_EQ(b.node_count(), 8u);
}

TEST(GraphBuilder, PreallocatedNodeSpace) {
  GraphBuilder b(10);
  EXPECT_EQ(b.node_count(), 10u);
  const auto g = b.build();
  EXPECT_EQ(g.node_count(), 10u);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(GraphBuilder, EnsureNodeCreatesIsolated) {
  GraphBuilder b;
  b.ensure_node(4);
  const auto g = b.build();
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.out_degree(4), 0u);
}

TEST(GraphBuilder, ReciprocalEdgeAddsBoth) {
  GraphBuilder b;
  b.add_reciprocal_edge(0, 1);
  const auto g = b.build();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.is_reciprocal(0, 1));
}

TEST(GraphBuilder, BatchAdd) {
  GraphBuilder b;
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 0}};
  b.add_edges(edges);
  EXPECT_EQ(b.buffered_edge_count(), 3u);
  const auto g = b.build();
  EXPECT_EQ(g.edge_count(), 3u);
}

TEST(GraphBuilder, BuildIsRepeatableAndIncremental) {
  GraphBuilder b;
  b.add_edge(0, 1);
  const auto g1 = b.build();
  EXPECT_EQ(g1.edge_count(), 1u);
  b.add_edge(1, 0);
  const auto g2 = b.build();
  EXPECT_EQ(g2.edge_count(), 2u);
  // First snapshot unaffected.
  EXPECT_EQ(g1.edge_count(), 1u);
}

TEST(GraphBuilder, SelfLoopPolicyFlowsThrough) {
  GraphBuilder b;
  b.add_edge(2, 2);
  EXPECT_EQ(b.build(false).edge_count(), 0u);
  EXPECT_EQ(b.build(true).edge_count(), 1u);
}

TEST(GraphBuilder, ClearResets) {
  GraphBuilder b;
  b.add_edge(0, 9);
  b.clear();
  EXPECT_EQ(b.node_count(), 0u);
  EXPECT_EQ(b.buffered_edge_count(), 0u);
  const auto g = b.build();
  EXPECT_EQ(g.node_count(), 0u);
}

TEST(GraphBuilder, BufferedEdgesViewKeepsDuplicates) {
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  EXPECT_EQ(b.buffered_edge_count(), 2u);  // dedup happens at build()
  EXPECT_EQ(b.build().edge_count(), 1u);
}

}  // namespace
}  // namespace gplus::graph
