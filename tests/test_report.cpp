#include "core/report.h"

#include <gtest/gtest.h>

#include <sstream>

namespace gplus::core {
namespace {

class ReportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ds_ = new Dataset(make_standard_dataset(8'000, 37));
  }
  static void TearDownTestSuite() {
    delete ds_;
    ds_ = nullptr;
  }
  static std::string render(const ReportOptions& options) {
    std::ostringstream out;
    write_report(*ds_, out, options);
    return out.str();
  }
  static Dataset* ds_;
};

Dataset* ReportTest::ds_ = nullptr;

TEST_F(ReportTest, ContainsEverySection) {
  ReportOptions options;
  options.path_sources = 30;
  const auto text = render(options);
  EXPECT_NE(text.find("# Google+ reproduction report"), std::string::npos);
  EXPECT_NE(text.find("## Structure"), std::string::npos);
  EXPECT_NE(text.find("## Profiles"), std::string::npos);
  EXPECT_NE(text.find("## Geography"), std::string::npos);
  EXPECT_NE(text.find("## Top users"), std::string::npos);
  // Key paper anchors rendered.
  EXPECT_NE(text.find("16.4"), std::string::npos);   // paper mean degree
  EXPECT_NE(text.find("0.26%"), std::string::npos);  // paper tel-user rate
  EXPECT_NE(text.find("Places lived"), std::string::npos);
}

TEST_F(ReportTest, SectionsCanBeDisabled) {
  ReportOptions options;
  options.include_structure = false;
  options.include_geography = false;
  const auto text = render(options);
  EXPECT_EQ(text.find("## Structure"), std::string::npos);
  EXPECT_EQ(text.find("## Geography"), std::string::npos);
  EXPECT_NE(text.find("## Profiles"), std::string::npos);
  EXPECT_NE(text.find("## Top users"), std::string::npos);
}

TEST_F(ReportTest, MarkdownTablesAreWellFormed) {
  ReportOptions options;
  options.path_sources = 20;
  const auto text = render(options);
  std::istringstream in(text);
  std::string line;
  std::size_t table_rows = 0;
  while (std::getline(in, line)) {
    if (line.rfind("|", 0) != 0) continue;
    ++table_rows;
    EXPECT_EQ(line.back(), '|') << line;
  }
  EXPECT_GT(table_rows, 25u);  // attribute table alone has 17 rows
}

TEST_F(ReportTest, DeterministicForSameOptions) {
  ReportOptions options;
  options.path_sources = 20;
  EXPECT_EQ(render(options), render(options));
}

}  // namespace
}  // namespace gplus::core
