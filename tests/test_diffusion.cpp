#include "stream/diffusion.h"

#include <gtest/gtest.h>

#include "algo/topk.h"

namespace gplus::stream {
namespace {

using graph::NodeId;

class DiffusionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ds_ = new core::Dataset(core::make_standard_dataset(20'000, 5));
  }
  static void TearDownTestSuite() {
    delete ds_;
    ds_ = nullptr;
  }
  static core::Dataset* ds_;
};

core::Dataset* DiffusionTest::ds_ = nullptr;

TEST_F(DiffusionTest, FollowerlessAuthorReachesNobody) {
  // Find a user with zero followers.
  NodeId lonely = 0;
  bool found = false;
  for (NodeId u = 0; u < ds_->user_count(); ++u) {
    if (ds_->graph().in_degree(u) == 0) {
      lonely = u;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  const DiffusionSimulator sim(ds_, {});
  stats::Rng rng(1);
  const auto cascade = sim.simulate_post(lonely, /*force_public=*/true, rng);
  EXPECT_EQ(cascade.views, 0u);
  EXPECT_EQ(cascade.reshares, 0u);
  EXPECT_EQ(cascade.depth, 0u);
}

TEST_F(DiffusionTest, PublicPostsOutreachCircledPosts) {
  const DiffusionSimulator sim(ds_, {});
  const auto top = algo::top_by_in_degree(ds_->graph(), 5);
  double public_views = 0.0, limited_views = 0.0;
  stats::Rng rng(2);
  for (const auto& author : top) {
    for (int i = 0; i < 5; ++i) {
      public_views += static_cast<double>(
          sim.simulate_post(author.node, true, rng).views);
      limited_views += static_cast<double>(
          sim.simulate_post(author.node, false, rng).views);
    }
  }
  EXPECT_GT(public_views, limited_views * 1.5);
}

TEST_F(DiffusionTest, CelebritySeedsGoViral) {
  const DiffusionSimulator sim(ds_, {});
  stats::Rng rng(3);
  const auto celebrity = algo::top_by_in_degree(ds_->graph(), 1)[0].node;
  const auto celeb_cascade = sim.simulate_post(celebrity, true, rng);
  // A median user's post for comparison.
  NodeId ordinary = 0;
  for (NodeId u = 0; u < ds_->user_count(); ++u) {
    if (!ds_->profiles[u].celebrity && ds_->graph().in_degree(u) >= 3 &&
        ds_->graph().in_degree(u) <= 10) {
      ordinary = u;
      break;
    }
  }
  const auto ordinary_cascade = sim.simulate_post(ordinary, true, rng);
  EXPECT_GT(celeb_cascade.views, 50 * std::max<std::uint64_t>(1, ordinary_cascade.views));
}

TEST_F(DiffusionTest, ViewsAreDistinctUsers) {
  const DiffusionSimulator sim(ds_, {});
  stats::Rng rng(4);
  const auto author = algo::top_by_in_degree(ds_->graph(), 1)[0].node;
  const auto cascade = sim.simulate_post(author, true, rng);
  EXPECT_LT(cascade.views, ds_->user_count());
  EXPECT_LE(cascade.reshares, cascade.views);
  if (cascade.reshares > 0) EXPECT_GE(cascade.depth, 1u);
}

TEST_F(DiffusionTest, CascadeCapIsHonored) {
  DiffusionConfig config;
  config.reshare_base = 1.0;  // everything reshared: would sweep the graph
  config.max_cascade_views = 500;
  const DiffusionSimulator sim(ds_, config);
  stats::Rng rng(5);
  const auto author = algo::top_by_in_degree(ds_->graph(), 1)[0].node;
  const auto cascade = sim.simulate_post(author, true, rng);
  EXPECT_EQ(cascade.views, 500u);
}

TEST_F(DiffusionTest, BatchSimulationAndSummary) {
  const DiffusionSimulator sim(ds_, {});
  stats::Rng rng(6);
  const auto cascades = sim.simulate_posts(300, rng);
  ASSERT_EQ(cascades.size(), 300u);
  const auto summary = summarize_cascades(cascades);
  EXPECT_EQ(summary.posts, 300u);
  EXPECT_GT(summary.mean_views, 0.0);
  EXPECT_GE(summary.max_views, summary.mean_views);
  EXPECT_GE(summary.reshared_share, 0.0);
  EXPECT_LE(summary.reshared_share, 1.0);
}

TEST_F(DiffusionTest, OpennessRaisesPublicPostRate) {
  const DiffusionSimulator sim(ds_, {});
  stats::Rng rng(7);
  // Compare publicity rates of the most-open vs least-open authors.
  std::size_t open_public = 0, closed_public = 0, trials = 0;
  for (NodeId u = 0; u < ds_->user_count() && trials < 400; ++u) {
    if (ds_->graph().in_degree(u) == 0) continue;
    if (ds_->profiles[u].openness > 0.75) {
      for (int i = 0; i < 3; ++i) {
        open_public += sim.simulate_post(u, rng).public_post;
      }
      ++trials;
    }
  }
  std::size_t trials2 = 0;
  for (NodeId u = 0; u < ds_->user_count() && trials2 < 400; ++u) {
    if (ds_->graph().in_degree(u) == 0) continue;
    if (ds_->profiles[u].openness < 0.35) {
      for (int i = 0; i < 3; ++i) {
        closed_public += sim.simulate_post(u, rng).public_post;
      }
      ++trials2;
    }
  }
  ASSERT_GT(trials, 50u);
  ASSERT_GT(trials2, 50u);
  EXPECT_GT(open_public, closed_public);
}

TEST(Diffusion, RejectsBadConfig) {
  const auto ds = core::make_standard_dataset(2'000, 9);
  DiffusionConfig bad;
  bad.reshare_base = 1.5;
  EXPECT_THROW(DiffusionSimulator(&ds, bad), std::invalid_argument);
  DiffusionConfig zero_cap;
  zero_cap.max_cascade_views = 0;
  EXPECT_THROW(DiffusionSimulator(&ds, zero_cap), std::invalid_argument);
  EXPECT_THROW(DiffusionSimulator(nullptr, DiffusionConfig{}),
               std::invalid_argument);
}

TEST(Diffusion, SummaryOfEmptyBatch) {
  const auto summary = summarize_cascades({});
  EXPECT_EQ(summary.posts, 0u);
  EXPECT_EQ(summary.mean_views, 0.0);
}

}  // namespace
}  // namespace gplus::stream
