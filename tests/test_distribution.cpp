#include "stats/distribution.h"

#include <gtest/gtest.h>

#include <vector>

namespace gplus::stats {
namespace {

TEST(IntegerCcdf, EmptyInput) { EXPECT_TRUE(integer_ccdf({}).empty()); }

TEST(IntegerCcdf, KnownDistribution) {
  const std::vector<std::uint64_t> v = {1, 1, 2, 3, 3, 3};
  const auto ccdf = integer_ccdf(v);
  ASSERT_EQ(ccdf.size(), 3u);
  EXPECT_DOUBLE_EQ(ccdf[0].x, 1.0);
  EXPECT_DOUBLE_EQ(ccdf[0].y, 1.0);            // P[X >= 1]
  EXPECT_DOUBLE_EQ(ccdf[1].x, 2.0);
  EXPECT_DOUBLE_EQ(ccdf[1].y, 4.0 / 6.0);      // P[X >= 2]
  EXPECT_DOUBLE_EQ(ccdf[2].x, 3.0);
  EXPECT_DOUBLE_EQ(ccdf[2].y, 0.5);            // P[X >= 3]
}

TEST(IntegerCcdf, MonotoneDecreasingAndStartsAtOne) {
  const std::vector<std::uint64_t> v = {0, 5, 5, 9, 12, 12, 12, 40};
  const auto ccdf = integer_ccdf(v);
  ASSERT_FALSE(ccdf.empty());
  EXPECT_DOUBLE_EQ(ccdf.front().y, 1.0);
  for (std::size_t i = 1; i < ccdf.size(); ++i) {
    EXPECT_LT(ccdf[i - 1].x, ccdf[i].x);
    EXPECT_GT(ccdf[i - 1].y, ccdf[i].y);
  }
}

TEST(EmpiricalCdf, KnownValues) {
  const std::vector<double> v = {1.0, 1.0, 2.0, 4.0};
  const auto cdf = empirical_cdf(v);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].y, 0.5);   // P[X <= 1]
  EXPECT_DOUBLE_EQ(cdf[1].y, 0.75);  // P[X <= 2]
  EXPECT_DOUBLE_EQ(cdf[2].y, 1.0);   // P[X <= 4]
}

TEST(EmpiricalCcdf, ComplementsCdf) {
  const std::vector<double> v = {1.0, 2.0, 2.0, 3.0};
  const auto ccdf = empirical_ccdf(v);
  ASSERT_EQ(ccdf.size(), 3u);
  EXPECT_DOUBLE_EQ(ccdf[0].y, 1.0);    // P[X >= 1]
  EXPECT_DOUBLE_EQ(ccdf[1].y, 0.75);   // P[X >= 2]
  EXPECT_DOUBLE_EQ(ccdf[2].y, 0.25);   // P[X >= 3]
}

TEST(EvaluateStep, StepInterpolation) {
  const std::vector<double> v = {1.0, 2.0, 4.0};
  const auto cdf = empirical_cdf(v);
  EXPECT_DOUBLE_EQ(evaluate_step(cdf, 0.5), 0.0);
  EXPECT_NEAR(evaluate_step(cdf, 1.0), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(evaluate_step(cdf, 3.0), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(evaluate_step(cdf, 100.0), 1.0);
}

TEST(LogBinnedCcdf, RejectsBadBase) {
  const std::vector<std::uint64_t> v = {1, 2};
  EXPECT_THROW(log_binned_ccdf(v, 1.0), std::invalid_argument);
}

TEST(LogBinnedCcdf, MonotoneAndCoversZero) {
  const std::vector<std::uint64_t> v = {0, 1, 1, 2, 4, 8, 16, 64, 256};
  const auto curve = log_binned_ccdf(v, 2.0);
  ASSERT_FALSE(curve.empty());
  EXPECT_DOUBLE_EQ(curve.front().x, 0.0);
  EXPECT_DOUBLE_EQ(curve.front().y, 1.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LT(curve[i - 1].x, curve[i].x);
    EXPECT_GE(curve[i - 1].y, curve[i].y);
  }
}

TEST(LogBinnedCcdf, AllZeros) {
  const std::vector<std::uint64_t> v = {0, 0, 0};
  const auto curve = log_binned_ccdf(v);
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_DOUBLE_EQ(curve[0].y, 1.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.9);    // bin 4
  h.add(-3.0);   // clamped to bin 0
  h.add(100.0);  // clamped to bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_center(2), 5.0);
  EXPECT_DOUBLE_EQ(h.mass(0), 0.4);
  EXPECT_THROW(h.count(5), std::invalid_argument);
}

TEST(IntegerPmf, SumsToOne) {
  const std::vector<std::uint64_t> v = {0, 1, 1, 3};
  const auto pmf = integer_pmf(v);
  ASSERT_EQ(pmf.size(), 4u);
  EXPECT_DOUBLE_EQ(pmf[0], 0.25);
  EXPECT_DOUBLE_EQ(pmf[1], 0.5);
  EXPECT_DOUBLE_EQ(pmf[2], 0.0);
  EXPECT_DOUBLE_EQ(pmf[3], 0.25);
}

TEST(IntegerPmf, EmptyInput) { EXPECT_TRUE(integer_pmf({}).empty()); }

}  // namespace
}  // namespace gplus::stats
