#include "algo/scc.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/builder.h"
#include "stats/rng.h"

namespace gplus::algo {
namespace {

using graph::DiGraph;
using graph::GraphBuilder;
using graph::NodeId;

TEST(Scc, SingleCycleIsOneComponent) {
  GraphBuilder b;
  for (NodeId u = 0; u < 5; ++u) b.add_edge(u, (u + 1) % 5);
  const auto sccs = strongly_connected_components(b.build());
  EXPECT_EQ(sccs.component_count(), 1u);
  EXPECT_EQ(sccs.giant_size(), 5u);
  EXPECT_DOUBLE_EQ(sccs.giant_fraction(), 1.0);
}

TEST(Scc, DagIsAllSingletons) {
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  const auto sccs = strongly_connected_components(b.build());
  EXPECT_EQ(sccs.component_count(), 3u);
  EXPECT_EQ(sccs.giant_size(), 1u);
}

TEST(Scc, TwoCyclesJoinedByOneWayBridge) {
  GraphBuilder b;
  b.add_reciprocal_edge(0, 1);
  b.add_reciprocal_edge(2, 3);
  b.add_edge(1, 2);  // one-way: components stay separate
  const auto sccs = strongly_connected_components(b.build());
  EXPECT_EQ(sccs.component_count(), 2u);
  EXPECT_EQ(sccs.component[0], sccs.component[1]);
  EXPECT_EQ(sccs.component[2], sccs.component[3]);
  EXPECT_NE(sccs.component[0], sccs.component[2]);
}

TEST(Scc, SizesSumToNodeCount) {
  GraphBuilder b;
  stats::Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    b.add_edge(static_cast<NodeId>(rng.next_below(400)),
               static_cast<NodeId>(rng.next_below(400)));
  }
  const auto g = b.build();
  const auto sccs = strongly_connected_components(g);
  std::uint64_t total = 0;
  for (auto s : sccs.sizes) total += s;
  EXPECT_EQ(total, g.node_count());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    EXPECT_LT(sccs.component[u], sccs.component_count());
  }
}

TEST(Scc, DeepChainDoesNotOverflowStack) {
  // 200k-node path: a recursive Tarjan would blow the call stack.
  GraphBuilder b;
  constexpr NodeId kN = 200'000;
  for (NodeId u = 0; u + 1 < kN; ++u) b.add_edge(u, u + 1);
  const auto sccs = strongly_connected_components(b.build());
  EXPECT_EQ(sccs.component_count(), kN);
}

TEST(Scc, EmptyGraph) {
  const auto sccs = strongly_connected_components(DiGraph{});
  EXPECT_EQ(sccs.component_count(), 0u);
  EXPECT_EQ(sccs.giant_size(), 0u);
  EXPECT_DOUBLE_EQ(sccs.giant_fraction(), 0.0);
}

TEST(SccSizeCcdf, MatchesComponentSizes) {
  GraphBuilder b;
  b.add_reciprocal_edge(0, 1);  // component of 2
  b.add_edge(2, 0);             // singleton
  b.add_edge(3, 0);             // singleton
  const auto sccs = strongly_connected_components(b.build());
  const auto ccdf = scc_size_ccdf(sccs);
  ASSERT_EQ(ccdf.size(), 2u);
  EXPECT_DOUBLE_EQ(ccdf[0].x, 1.0);
  EXPECT_DOUBLE_EQ(ccdf[0].y, 1.0);
  EXPECT_DOUBLE_EQ(ccdf[1].x, 2.0);
  EXPECT_DOUBLE_EQ(ccdf[1].y, 1.0 / 3.0);
}

TEST(Wcc, IgnoresDirection) {
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(2, 1);
  b.add_edge(3, 4);
  const auto wccs = weakly_connected_components(b.build());
  EXPECT_EQ(wccs.component_count(), 2u);
  EXPECT_EQ(wccs.giant_size(), 3u);
  EXPECT_EQ(wccs.component[0], wccs.component[2]);
  EXPECT_NE(wccs.component[0], wccs.component[3]);
}

TEST(Wcc, IsolatedNodesAreSingletons) {
  GraphBuilder b(5);
  b.add_edge(0, 1);
  const auto wccs = weakly_connected_components(b.build());
  EXPECT_EQ(wccs.component_count(), 4u);
}

class SccRefinesWcc : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SccRefinesWcc, EverySccInsideOneWcc) {
  GraphBuilder b;
  stats::Rng rng(GetParam());
  for (int i = 0; i < 1500; ++i) {
    b.add_edge(static_cast<NodeId>(rng.next_below(300)),
               static_cast<NodeId>(rng.next_below(300)));
  }
  const auto g = b.build();
  const auto sccs = strongly_connected_components(g);
  const auto wccs = weakly_connected_components(g);
  EXPECT_GE(sccs.component_count(), wccs.component_count());
  // All members of one SCC share a WCC.
  std::vector<std::int64_t> scc_to_wcc(sccs.component_count(), -1);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    auto& slot = scc_to_wcc[sccs.component[u]];
    if (slot == -1) {
      slot = wccs.component[u];
    } else {
      EXPECT_EQ(slot, wccs.component[u]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SccRefinesWcc, ::testing::Values(1u, 2u, 3u, 7u));

}  // namespace
}  // namespace gplus::algo
