#include "algo/clustering.h"

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "stats/rng.h"

namespace gplus::algo {
namespace {

using graph::DiGraph;
using graph::GraphBuilder;
using graph::NodeId;

TEST(ClusteringCoefficient, UndefinedBelowTwoOutNeighbors) {
  GraphBuilder b;
  b.add_edge(0, 1);
  const auto g = b.build();
  EXPECT_FALSE(clustering_coefficient(g, 0).has_value());
  EXPECT_FALSE(clustering_coefficient(g, 1).has_value());
}

TEST(ClusteringCoefficient, FullTriangleBothDirections) {
  GraphBuilder b;
  for (NodeId u = 0; u < 3; ++u) {
    for (NodeId v = 0; v < 3; ++v) {
      if (u != v) b.add_edge(u, v);
    }
  }
  const auto g = b.build();
  // Every ordered pair of out-neighbors is connected: C = 1.
  EXPECT_DOUBLE_EQ(*clustering_coefficient(g, 0), 1.0);
}

TEST(ClusteringCoefficient, OneWayTriangleIsHalf) {
  // 0 -> 1, 0 -> 2, 1 -> 2 (but not 2 -> 1): one of the two ordered pairs.
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 2);
  const auto g = b.build();
  EXPECT_DOUBLE_EQ(*clustering_coefficient(g, 0), 0.5);
}

TEST(ClusteringCoefficient, StarCenterIsZero) {
  GraphBuilder b;
  for (NodeId v = 1; v <= 6; ++v) b.add_edge(0, v);
  const auto g = b.build();
  EXPECT_DOUBLE_EQ(*clustering_coefficient(g, 0), 0.0);
}

TEST(ClusteringCoefficient, IgnoresEdgesBackToCenter) {
  // 0 -> {1, 2}; 1 -> 0 must not count as a link "among neighbors".
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 0);
  const auto g = b.build();
  EXPECT_DOUBLE_EQ(*clustering_coefficient(g, 0), 0.0);
}

TEST(ClusteringCoefficients, CollectsQualifyingNodes) {
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(3, 0);  // 3 has out-degree 1: excluded
  const auto values = clustering_coefficients(b.build());
  EXPECT_EQ(values.size(), 1u);
}

TEST(AverageClustering, CliqueIsOne) {
  GraphBuilder b;
  constexpr NodeId kN = 6;
  for (NodeId u = 0; u < kN; ++u) {
    for (NodeId v = 0; v < kN; ++v) {
      if (u != v) b.add_edge(u, v);
    }
  }
  EXPECT_DOUBLE_EQ(average_clustering_coefficient(b.build()), 1.0);
}

TEST(AverageClustering, EmptyAndSparseGraphs) {
  EXPECT_DOUBLE_EQ(average_clustering_coefficient(DiGraph{}), 0.0);
  GraphBuilder b;
  b.add_edge(0, 1);
  EXPECT_DOUBLE_EQ(average_clustering_coefficient(b.build()), 0.0);
}

TEST(SampledClustering, SmallGraphReturnsAllQualifying) {
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 2);
  b.add_edge(1, 0);
  stats::Rng rng(1);
  const auto sample = sampled_clustering_coefficients(b.build(), 100, rng);
  EXPECT_EQ(sample.size(), 2u);  // nodes 0 and 1 qualify
}

TEST(SampledClustering, RespectsSampleBudget) {
  GraphBuilder b;
  stats::Rng gen(2);
  for (NodeId u = 0; u < 500; ++u) {
    b.add_edge(u, static_cast<NodeId>(gen.next_below(500)));
    b.add_edge(u, static_cast<NodeId>(gen.next_below(500)));
    b.add_edge(u, static_cast<NodeId>(gen.next_below(500)));
  }
  stats::Rng rng(3);
  const auto sample = sampled_clustering_coefficients(b.build(), 50, rng);
  EXPECT_EQ(sample.size(), 50u);
  for (double c : sample) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
}

TEST(ClusteringCdf, IsMonotone) {
  GraphBuilder b;
  stats::Rng gen(4);
  for (NodeId u = 0; u < 300; ++u) {
    for (int i = 0; i < 4; ++i) {
      b.add_edge(u, static_cast<NodeId>(gen.next_below(300)));
    }
  }
  stats::Rng rng(5);
  const auto cdf = clustering_cdf(b.build(), 200, rng);
  ASSERT_FALSE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.back().y, 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LT(cdf[i - 1].y, cdf[i].y + 1e-12);
  }
}

}  // namespace
}  // namespace gplus::algo
