// Property sweep: generator invariants that must hold for every seed and
// scale, not just the calibrated default.
#include <gtest/gtest.h>

#include <tuple>

#include "algo/clustering.h"
#include "algo/degrees.h"
#include "algo/reciprocity.h"
#include "algo/rewire.h"
#include "algo/scc.h"
#include "core/dataset.h"
#include "geo/coords.h"
#include "synth/stream_gen.h"

namespace gplus {
namespace {

using Param = std::tuple<std::uint64_t /*seed*/, std::size_t /*nodes*/>;

class GeneratorProperties : public ::testing::TestWithParam<Param> {
 protected:
  static core::Dataset make() {
    const auto [seed, nodes] = GetParam();
    return core::make_standard_dataset(nodes, seed);
  }
};

TEST_P(GeneratorProperties, StructuralInvariants) {
  const auto ds = make();
  const auto& g = ds.graph();
  const auto [seed, nodes] = GetParam();
  ASSERT_EQ(g.node_count(), nodes);
  ASSERT_EQ(ds.profiles.size(), nodes);

  // No self-loops; adjacency sorted and deduplicated by construction.
  for (graph::NodeId u = 0; u < g.node_count(); ++u) {
    ASSERT_FALSE(g.has_edge(u, u)) << "seed " << seed << " node " << u;
    const auto outs = g.out_neighbors(u);
    for (std::size_t i = 1; i < outs.size(); ++i) {
      ASSERT_LT(outs[i - 1], outs[i]);
    }
  }
}

TEST_P(GeneratorProperties, ProfileInvariants) {
  const auto ds = make();
  for (graph::NodeId u = 0; u < ds.user_count(); ++u) {
    const auto& p = ds.profiles[u];
    // Name always public; latent facts in range; home coordinate valid.
    ASSERT_TRUE(p.shared.test(synth::Attribute::kName));
    ASSERT_LT(static_cast<std::size_t>(p.gender), synth::kGenderCount);
    ASSERT_LT(static_cast<std::size_t>(p.relationship),
              synth::kRelationshipCount);
    ASSERT_LT(static_cast<std::size_t>(p.occupation), synth::kOccupationCount);
    ASSERT_LT(p.country, geo::country_count());
    ASSERT_TRUE(geo::is_valid(p.home));
    ASSERT_GE(p.openness, 0.0F);
    ASSERT_LE(p.openness, 1.0F);
    // Located implies the latent country is set (it always is here).
    if (p.is_located()) ASSERT_NE(p.country, geo::kNoCountry);
  }
}

TEST_P(GeneratorProperties, MetricsStayInSaneBands) {
  const auto ds = make();
  const auto& g = ds.graph();
  // Broad bands — these hold at any seed/scale in the sweep, while the
  // tight paper bands are asserted on the calibrated default elsewhere.
  EXPECT_GT(g.mean_degree(), 8.0);
  EXPECT_LT(g.mean_degree(), 25.0);
  const double reciprocity = algo::global_reciprocity(g);
  EXPECT_GT(reciprocity, 0.2);
  EXPECT_LT(reciprocity, 0.55);
  const auto wcc = algo::weakly_connected_components(g);
  EXPECT_GT(wcc.giant_fraction(), 0.85);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndSizes, GeneratorProperties,
    ::testing::Values(Param{1, 4000}, Param{2, 4000}, Param{3, 4000},
                      Param{99, 8000}, Param{12345, 8000},
                      Param{0xDEADBEEF, 16000}),
    [](const ::testing::TestParamInfo<Param>& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Streaming-vs-in-RAM generator fidelity (the PR 6 residual): the
// streaming generator deliberately has no triadic-closure or community
// mechanism, so it understates clustering. Motif calibration must close
// most of that gap while preserving the streaming degree sequence, and
// the closed gap is pinned here as a regression-tested number.

class StreamingCalibration : public ::testing::Test {
 protected:
  static constexpr std::size_t kNodes = 10'000;
  static constexpr std::uint64_t kSeed = 5;

  static graph::DiGraph materialize_streaming() {
    synth::PopulationModel population;
    geo::World world;
    synth::StreamGenConfig config;
    config.node_count = kNodes;
    config.seed = kSeed;
    const synth::StreamingGraphGen gen(config, population, world);
    std::vector<graph::Edge> edges;
    gen.stream_edges([&](graph::NodeId src, graph::NodeId dst) {
      edges.push_back({src, dst});
    });
    // Builders drop duplicates and self-loops; from_edges does the same.
    return graph::DiGraph::from_edges(static_cast<graph::NodeId>(kNodes),
                                      edges);
  }

  static void SetUpTestSuite() {
    in_ram_ = new core::Dataset(core::make_standard_dataset(kNodes, kSeed));
    streaming_ = new graph::DiGraph(materialize_streaming());
  }
  static void TearDownTestSuite() {
    delete in_ram_;
    delete streaming_;
    in_ram_ = nullptr;
    streaming_ = nullptr;
  }
  static const graph::DiGraph& in_ram() { return in_ram_->graph(); }
  static const graph::DiGraph& streaming() { return *streaming_; }

 private:
  static core::Dataset* in_ram_;
  static graph::DiGraph* streaming_;
};

core::Dataset* StreamingCalibration::in_ram_ = nullptr;
graph::DiGraph* StreamingCalibration::streaming_ = nullptr;

TEST_F(StreamingCalibration, StreamingUnderstatesClusteringBeforeCalibration) {
  const double ram_c = algo::average_clustering_coefficient(in_ram());
  const double stream_c = algo::average_clustering_coefficient(streaming());
  // The documented gap this suite exists to measure: without triadic
  // closure the streaming generator lands well under the in-RAM model.
  EXPECT_GT(ram_c, 0.10);
  EXPECT_LT(stream_c, ram_c * 0.5);
  // Reciprocity, by contrast, survives streaming generation.
  const double ram_r = algo::global_reciprocity(in_ram());
  const double stream_r = algo::global_reciprocity(streaming());
  EXPECT_NEAR(stream_r, ram_r, 0.12);
}

TEST_F(StreamingCalibration, CalibrationClosesMostOfTheClusteringGap) {
  const double ram_c = algo::average_clustering_coefficient(in_ram());
  const double ram_r = algo::global_reciprocity(in_ram());

  algo::RewireObjective objective;
  objective.target_clustering = ram_c;
  objective.target_reciprocity = ram_r;
  algo::CalibrateConfig config;
  config.seed = 17;
  config.max_rounds = 16;
  config.clustering_sample = 0;  // exact at this scale
  config.swaps_per_round_per_edge = 0.10;
  const algo::CalibrationResult result =
      algo::calibrate_to_profile(streaming(), objective, config);

  // Accepted rounds only improve, so the final error never regresses.
  ASSERT_LE(result.final_error, result.initial_error);
  ASSERT_GT(result.rounds_accepted, 0u);

  // Calibration preserves the streaming degree sequences exactly.
  EXPECT_EQ(algo::in_degrees(result.graph), algo::in_degrees(streaming()));
  EXPECT_EQ(algo::out_degrees(result.graph), algo::out_degrees(streaming()));

  // The pinned regression numbers (exact-measured, deterministic in the
  // seeds above; currently C goes 0.044 → 0.128 against a 0.226 target):
  // the clustering gap must shrink by at least 40%, and the
  // post-calibration relative clustering error must stay under 50%
  // (it starts above 80%).
  const double before_gap =
      std::abs(algo::average_clustering_coefficient(streaming()) - ram_c);
  const double after_gap =
      std::abs(result.calibrated.clustering - ram_c);
  EXPECT_LT(after_gap, before_gap * 0.6);
  EXPECT_LT(after_gap / ram_c, 0.50);
  // Reciprocity must not be sacrificed to buy clustering.
  EXPECT_NEAR(result.calibrated.reciprocity, ram_r, 0.10);
}

}  // namespace
}  // namespace gplus
