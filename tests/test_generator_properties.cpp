// Property sweep: generator invariants that must hold for every seed and
// scale, not just the calibrated default.
#include <gtest/gtest.h>

#include <tuple>

#include "algo/reciprocity.h"
#include "algo/scc.h"
#include "core/dataset.h"
#include "geo/coords.h"

namespace gplus {
namespace {

using Param = std::tuple<std::uint64_t /*seed*/, std::size_t /*nodes*/>;

class GeneratorProperties : public ::testing::TestWithParam<Param> {
 protected:
  static core::Dataset make() {
    const auto [seed, nodes] = GetParam();
    return core::make_standard_dataset(nodes, seed);
  }
};

TEST_P(GeneratorProperties, StructuralInvariants) {
  const auto ds = make();
  const auto& g = ds.graph();
  const auto [seed, nodes] = GetParam();
  ASSERT_EQ(g.node_count(), nodes);
  ASSERT_EQ(ds.profiles.size(), nodes);

  // No self-loops; adjacency sorted and deduplicated by construction.
  for (graph::NodeId u = 0; u < g.node_count(); ++u) {
    ASSERT_FALSE(g.has_edge(u, u)) << "seed " << seed << " node " << u;
    const auto outs = g.out_neighbors(u);
    for (std::size_t i = 1; i < outs.size(); ++i) {
      ASSERT_LT(outs[i - 1], outs[i]);
    }
  }
}

TEST_P(GeneratorProperties, ProfileInvariants) {
  const auto ds = make();
  for (graph::NodeId u = 0; u < ds.user_count(); ++u) {
    const auto& p = ds.profiles[u];
    // Name always public; latent facts in range; home coordinate valid.
    ASSERT_TRUE(p.shared.test(synth::Attribute::kName));
    ASSERT_LT(static_cast<std::size_t>(p.gender), synth::kGenderCount);
    ASSERT_LT(static_cast<std::size_t>(p.relationship),
              synth::kRelationshipCount);
    ASSERT_LT(static_cast<std::size_t>(p.occupation), synth::kOccupationCount);
    ASSERT_LT(p.country, geo::country_count());
    ASSERT_TRUE(geo::is_valid(p.home));
    ASSERT_GE(p.openness, 0.0F);
    ASSERT_LE(p.openness, 1.0F);
    // Located implies the latent country is set (it always is here).
    if (p.is_located()) ASSERT_NE(p.country, geo::kNoCountry);
  }
}

TEST_P(GeneratorProperties, MetricsStayInSaneBands) {
  const auto ds = make();
  const auto& g = ds.graph();
  // Broad bands — these hold at any seed/scale in the sweep, while the
  // tight paper bands are asserted on the calibrated default elsewhere.
  EXPECT_GT(g.mean_degree(), 8.0);
  EXPECT_LT(g.mean_degree(), 25.0);
  const double reciprocity = algo::global_reciprocity(g);
  EXPECT_GT(reciprocity, 0.2);
  EXPECT_LT(reciprocity, 0.55);
  const auto wcc = algo::weakly_connected_components(g);
  EXPECT_GT(wcc.giant_fraction(), 0.85);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndSizes, GeneratorProperties,
    ::testing::Values(Param{1, 4000}, Param{2, 4000}, Param{3, 4000},
                      Param{99, 8000}, Param{12345, 8000},
                      Param{0xDEADBEEF, 16000}),
    [](const ::testing::TestParamInfo<Param>& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace gplus
