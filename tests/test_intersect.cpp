// Kernel-variant equivalence for the shared sorted-set intersection layer
// (algo/intersect.h). The load-bearing property: every kernel — scalar,
// galloping, SSE, AVX2, bitset — returns the same count and the same
// ascending element sequence as std::set_intersection on every input, so
// variant dispatch can never change a serving payload. Edge cases (empty,
// disjoint, identical, subset, extreme skew, window boundaries) are pinned
// explicitly; a seeded fuzz sweep covers the space in between.
#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algo/intersect.h"
#include "stats/rng.h"

namespace {

using gplus::algo::IntersectKernel;
using gplus::graph::NodeId;

// Every concrete variant (kAuto exercised separately — it resolves to one
// of these, so equivalence of the concrete set covers it).
const IntersectKernel kAllKernels[] = {
    IntersectKernel::kScalar, IntersectKernel::kGalloping,
    IntersectKernel::kSse,    IntersectKernel::kAvx2,
    IntersectKernel::kBitset,
};

std::vector<NodeId> reference_intersection(const std::vector<NodeId>& a,
                                           const std::vector<NodeId>& b) {
  std::vector<NodeId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

// Asserts the full contract for one input pair: count and elements match
// the reference for every kernel, both directions, plus kAuto.
void expect_all_kernels_match(const std::vector<NodeId>& a,
                              const std::vector<NodeId>& b,
                              const std::string& label) {
  const std::vector<NodeId> want = reference_intersection(a, b);
  std::vector<NodeId> got;
  for (const IntersectKernel kernel : kAllKernels) {
    const auto name = std::string(gplus::algo::intersect_kernel_name(kernel));
    EXPECT_EQ(gplus::algo::intersect_count(a, b, kernel), want.size())
        << label << ": count(" << name << ")";
    EXPECT_EQ(gplus::algo::intersect_count(b, a, kernel), want.size())
        << label << ": reversed count(" << name << ")";
    EXPECT_EQ(gplus::algo::intersect(a, b, got, kernel), want.size())
        << label << ": intersect(" << name << ")";
    EXPECT_EQ(got, want) << label << ": elements(" << name << ")";
    EXPECT_EQ(gplus::algo::intersect(b, a, got, kernel), want.size())
        << label << ": reversed intersect(" << name << ")";
    EXPECT_EQ(got, want) << label << ": reversed elements(" << name << ")";
  }
  EXPECT_EQ(gplus::algo::intersect_count(a, b), want.size())
      << label << ": count(auto)";
  EXPECT_EQ(gplus::algo::intersect(a, b, got), want.size())
      << label << ": intersect(auto)";
  EXPECT_EQ(got, want) << label << ": elements(auto)";
}

// Ascending duplicate-free list of `count` draws from [0, universe).
std::vector<NodeId> random_sorted(gplus::stats::Rng& rng, std::size_t count,
                                  std::uint64_t universe) {
  std::vector<NodeId> values;
  values.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    values.push_back(static_cast<NodeId>(rng.next_below(universe)));
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

TEST(IntersectKernels, EmptyInputs) {
  expect_all_kernels_match({}, {}, "both empty");
  expect_all_kernels_match({}, {1, 2, 3}, "left empty");
  expect_all_kernels_match({7}, {}, "right empty");
}

TEST(IntersectKernels, DisjointLists) {
  expect_all_kernels_match({1, 3, 5, 7}, {2, 4, 6, 8}, "interleaved disjoint");
  expect_all_kernels_match({1, 2, 3, 4}, {100, 200, 300}, "range disjoint");
  // Disjoint across distant bitset windows (window = 4096 values).
  expect_all_kernels_match({1, 2, 3}, {40'960, 81'920, 123'456},
                           "window disjoint");
}

TEST(IntersectKernels, IdenticalLists) {
  const std::vector<NodeId> v{0, 1, 5, 9, 4096, 4097, 1'000'000};
  expect_all_kernels_match(v, v, "identical");
}

TEST(IntersectKernels, SubsetLists) {
  expect_all_kernels_match({2, 4, 6}, {1, 2, 3, 4, 5, 6, 7}, "strict subset");
  expect_all_kernels_match({0}, {0, 1, 2, 3, 4, 5, 6, 7, 8}, "singleton");
}

TEST(IntersectKernels, SingleElementAndBoundaryValues) {
  const NodeId max = std::numeric_limits<NodeId>::max();
  expect_all_kernels_match({0, max}, {max}, "max id");
  expect_all_kernels_match({0}, {0}, "zero only");
  expect_all_kernels_match({max - 1}, {max}, "adjacent near max");
}

TEST(IntersectKernels, BitsetWindowBoundaries) {
  // Values straddling multiples of the 4096-value bitset window, including
  // runs that fill a window edge-to-edge.
  std::vector<NodeId> a;
  std::vector<NodeId> b;
  for (NodeId base : {0u, 4095u, 4096u, 8191u, 8192u, 12'288u}) {
    a.push_back(base);
    if (base % 2 == 0) b.push_back(base);
  }
  for (NodeId v = 4090; v < 4102; ++v) b.push_back(v);
  std::sort(b.begin(), b.end());
  b.erase(std::unique(b.begin(), b.end()), b.end());
  expect_all_kernels_match(a, b, "window straddle");
}

TEST(IntersectKernels, ExtremeSkew) {
  // One tiny list against one long dense list — galloping's home turf and
  // the SIMD tail-handling stress case.
  std::vector<NodeId> big(5000);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<NodeId>(3 * i);
  }
  expect_all_kernels_match({0, 7'500, 14'997}, big, "tiny vs dense");
  expect_all_kernels_match({big.back()}, big, "last element only");
  expect_all_kernels_match({big.back() + 1}, big, "past the end");
}

TEST(IntersectKernels, RandomizedFuzz) {
  gplus::stats::Rng rng(20'260'808);
  for (int round = 0; round < 200; ++round) {
    // Sizes and universes swept across skew regimes, including empties.
    const std::size_t len_a = rng.next_below(300);
    const std::size_t len_b = rng.next_below(300) * (rng.next_below(8) + 1);
    const std::uint64_t universe = 1 + rng.next_below(20'000);
    const auto a = random_sorted(rng, len_a, universe);
    const auto b = random_sorted(rng, len_b, universe);
    expect_all_kernels_match(a, b, "fuzz round " + std::to_string(round));
    if (HasFailure()) break;  // one diagnostic is enough
  }
}

TEST(IntersectKernels, OutputVectorIsClearedAndRefilled) {
  const std::vector<NodeId> a{1, 2, 3};
  const std::vector<NodeId> b{2, 3, 4};
  const std::vector<NodeId> lone{1};
  const std::vector<NodeId> other{2};
  std::vector<NodeId> out{99, 98, 97};
  EXPECT_EQ(gplus::algo::intersect(a, b, out), 2u);
  EXPECT_EQ(out, (std::vector<NodeId>{2, 3}));
  EXPECT_EQ(gplus::algo::intersect(lone, other, out), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(IntersectKernels, NamesRoundTrip) {
  using gplus::algo::intersect_kernel_by_name;
  using gplus::algo::intersect_kernel_name;
  for (const IntersectKernel kernel : kAllKernels) {
    EXPECT_EQ(intersect_kernel_by_name(intersect_kernel_name(kernel)), kernel);
  }
  EXPECT_EQ(intersect_kernel_by_name("auto"), IntersectKernel::kAuto);
  EXPECT_EQ(intersect_kernel_by_name("no-such-kernel"), IntersectKernel::kAuto);
  EXPECT_EQ(intersect_kernel_by_name(""), IntersectKernel::kAuto);
}

TEST(IntersectKernels, ProcessDefaultOverridesAuto) {
  // Every concrete default must leave kAuto results unchanged — that is
  // the whole point of the dispatch-invariance contract.
  gplus::stats::Rng rng(7);
  const auto a = random_sorted(rng, 200, 4'000);
  const auto b = random_sorted(rng, 60, 4'000);
  const auto want = reference_intersection(a, b);
  for (const IntersectKernel kernel : kAllKernels) {
    gplus::algo::set_default_intersect_kernel(kernel);
    EXPECT_EQ(gplus::algo::default_intersect_kernel(), kernel);
    std::vector<NodeId> got;
    EXPECT_EQ(gplus::algo::intersect(a, b, got), want.size());
    EXPECT_EQ(got, want);
  }
  gplus::algo::set_default_intersect_kernel(IntersectKernel::kAuto);
  EXPECT_EQ(gplus::algo::default_intersect_kernel(), IntersectKernel::kAuto);
}

TEST(IntersectKernels, AvailabilityImpliesSseWhenAvx2) {
  // The fallback ladder (avx2 -> sse -> scalar) requires SSE whenever
  // AVX2 reports available.
  if (gplus::algo::avx2_intersect_available()) {
    EXPECT_TRUE(gplus::algo::sse_intersect_available());
  }
}

TEST(IntersectKernels, SkewThresholdOverrideSteersAutoDispatch) {
  using gplus::algo::intersect_skew_threshold;
  using gplus::algo::set_intersect_skew_threshold;
  const std::size_t initial = intersect_skew_threshold();
  EXPECT_GE(initial, 2u);

  set_intersect_skew_threshold(7);
  EXPECT_EQ(intersect_skew_threshold(), 7u);

  // Dispatch stays result-invariant at any threshold — only speed moves.
  gplus::stats::Rng rng(11);
  const auto a = random_sorted(rng, 900, 50'000);
  const auto b = random_sorted(rng, 30, 50'000);
  const auto want = reference_intersection(a, b);
  for (const std::size_t ratio : {2u, 7u, 1'000'000u}) {
    set_intersect_skew_threshold(ratio);
    std::vector<NodeId> got;
    EXPECT_EQ(gplus::algo::intersect(a, b, got), want.size()) << ratio;
    EXPECT_EQ(got, want) << ratio;
  }

  set_intersect_skew_threshold(0);  // restore the env/default value
  EXPECT_EQ(intersect_skew_threshold(), initial);
}

TEST(IntersectEnv, StrictParsersAcceptValidInput) {
  using gplus::algo::intersect_kernel_from_env;
  using gplus::algo::parse_intersect_skew_env;
  EXPECT_EQ(intersect_kernel_from_env("auto"), IntersectKernel::kAuto);
  EXPECT_EQ(intersect_kernel_from_env("galloping"),
            IntersectKernel::kGalloping);
  EXPECT_EQ(intersect_kernel_from_env("bitset"), IntersectKernel::kBitset);
  EXPECT_EQ(parse_intersect_skew_env("2"), 2u);
  EXPECT_EQ(parse_intersect_skew_env("32"), 32u);
  EXPECT_EQ(parse_intersect_skew_env("1000000"), 1'000'000u);
}

// Typo'd env overrides fail fast with a one-line diagnostic rather than
// silently benchmarking the wrong kernel (the old behaviour mapped any
// unknown GPLUS_INTERSECT name to kAuto).
TEST(IntersectEnvDeathTest, InvalidEnvValuesFailFast) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  using gplus::algo::intersect_kernel_from_env;
  using gplus::algo::parse_intersect_skew_env;
  const auto died = ::testing::ExitedWithCode(2);
  EXPECT_EXIT(intersect_kernel_from_env("gallopping"), died,
              "invalid GPLUS_INTERSECT");
  EXPECT_EXIT(intersect_kernel_from_env("AVX2"), died,
              "invalid GPLUS_INTERSECT");
  EXPECT_EXIT(intersect_kernel_from_env(""), died, "invalid GPLUS_INTERSECT");
  EXPECT_EXIT(parse_intersect_skew_env("1"), died,
              "invalid GPLUS_INTERSECT_SKEW");
  EXPECT_EXIT(parse_intersect_skew_env("1000001"), died,
              "invalid GPLUS_INTERSECT_SKEW");
  EXPECT_EXIT(parse_intersect_skew_env("32x"), died,
              "invalid GPLUS_INTERSECT_SKEW");
  EXPECT_EXIT(parse_intersect_skew_env("-8"), died,
              "invalid GPLUS_INTERSECT_SKEW");
}

TEST(IntersectKernels, MergeIntersectCountGeneric) {
  using gplus::algo::merge_intersect_count;
  const std::vector<std::string> a{"ann", "bob", "eve"};
  const std::vector<std::string> b{"bob", "carl", "eve", "zed"};
  EXPECT_EQ(merge_intersect_count<std::string>(a, b), 2u);
  EXPECT_EQ(merge_intersect_count<std::string>(a, {}), 0u);
  const std::vector<int> x{-5, 0, 3};
  const std::vector<int> y{-5, 3, 9};
  EXPECT_EQ(merge_intersect_count<int>(x, y), 2u);
}

}  // namespace
