#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "core/dataset_io.h"
#include "synth/names.h"

namespace gplus {
namespace {

TEST(Names, DeterministicPerIdAndCountry) {
  const auto us = *geo::find_country("US");
  EXPECT_EQ(synth::synthesize_name(1, us), synth::synthesize_name(1, us));
  EXPECT_NE(synth::synthesize_name(1, us), synth::synthesize_name(2, us));
}

TEST(Names, CulturallyFlavoredPools) {
  const auto in_country = *geo::find_country("IN");
  const auto br = *geo::find_country("BR");
  // Different pools: the same id maps to different names.
  EXPECT_NE(synth::synthesize_name(5, in_country), synth::synthesize_name(5, br));
  // Every name is "First Last".
  for (std::uint32_t id = 0; id < 50; ++id) {
    const auto name = synth::synthesize_name(id, br);
    EXPECT_NE(name.find(' '), std::string::npos) << name;
    EXPECT_GT(name.size(), 4u);
  }
}

TEST(Names, NoCountryFallsBackToInternationalPool) {
  const auto name = synth::synthesize_name(9, geo::kNoCountry);
  EXPECT_FALSE(name.empty());
  EXPECT_NE(name.find(' '), std::string::npos);
}

TEST(Names, ReasonableVarietyInATop20) {
  const auto us = *geo::find_country("US");
  std::set<std::string> names;
  for (std::uint32_t id = 0; id < 20; ++id) {
    names.insert(synth::synthesize_name(id, us));
  }
  EXPECT_GE(names.size(), 15u);  // few collisions in a table-sized sample
}

class DatasetIoTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ds_ = new core::Dataset(core::make_standard_dataset(5'000, 31));
  }
  static void TearDownTestSuite() {
    delete ds_;
    ds_ = nullptr;
  }
  static core::Dataset* ds_;
};

core::Dataset* DatasetIoTest::ds_ = nullptr;

TEST_F(DatasetIoTest, RoundTripPreservesEverything) {
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  core::write_dataset(*ds_, buf);
  const auto back = core::read_dataset(buf);

  ASSERT_EQ(back.user_count(), ds_->user_count());
  EXPECT_EQ(back.graph().edge_count(), ds_->graph().edge_count());
  for (graph::NodeId u = 0; u < ds_->user_count(); ++u) {
    const auto& a = ds_->profiles[u];
    const auto& b = back.profiles[u];
    ASSERT_EQ(a.shared, b.shared) << u;
    ASSERT_EQ(a.gender, b.gender) << u;
    ASSERT_EQ(a.relationship, b.relationship) << u;
    ASSERT_EQ(a.occupation, b.occupation) << u;
    ASSERT_EQ(a.country, b.country) << u;
    ASSERT_EQ(a.celebrity, b.celebrity) << u;
    ASSERT_NEAR(a.home.lat, b.home.lat, 1e-12) << u;
    ASSERT_NEAR(a.home.lon, b.home.lon, 1e-12) << u;
    ASSERT_NEAR(a.openness, b.openness, 1e-6) << u;
  }
  // Latent network vectors rebuilt from profiles.
  for (graph::NodeId u = 0; u < ds_->user_count(); ++u) {
    ASSERT_EQ(back.net.country[u], ds_->net.country[u]);
    ASSERT_EQ(back.net.celebrity[u], ds_->net.celebrity[u]);
  }
}

TEST_F(DatasetIoTest, FileRoundTrip) {
  const auto path =
      std::filesystem::temp_directory_path() / "gplus_test_dataset.bin";
  core::save_dataset(*ds_, path);
  const auto back = core::load_dataset(path);
  EXPECT_EQ(back.user_count(), ds_->user_count());
  EXPECT_EQ(back.graph().edge_count(), ds_->graph().edge_count());
  std::filesystem::remove(path);
}

TEST_F(DatasetIoTest, RejectsBadMagic) {
  std::stringstream buf("definitely not a dataset");
  EXPECT_THROW(core::read_dataset(buf), std::runtime_error);
}

TEST_F(DatasetIoTest, RejectsTruncation) {
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  core::write_dataset(*ds_, buf);
  std::string data = buf.str();
  data.resize(data.size() / 2);
  std::stringstream cut(data, std::ios::in | std::ios::binary);
  EXPECT_THROW(core::read_dataset(cut), std::runtime_error);
}

TEST_F(DatasetIoTest, MissingFileThrows) {
  EXPECT_THROW(core::load_dataset("/nonexistent/nowhere.bin"),
               std::runtime_error);
}

}  // namespace
}  // namespace gplus
