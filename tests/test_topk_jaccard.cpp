#include <gtest/gtest.h>

#include <string>

#include "algo/jaccard.h"
#include "algo/topk.h"
#include "graph/builder.h"

namespace gplus::algo {
namespace {

using graph::GraphBuilder;
using graph::NodeId;

GraphBuilder popularity_graph() {
  // in-degrees: node 0 <- 3, node 1 <- 2, node 2 <- 1, others 0.
  GraphBuilder b;
  b.add_edge(4, 0);
  b.add_edge(5, 0);
  b.add_edge(6, 0);
  b.add_edge(4, 1);
  b.add_edge(5, 1);
  b.add_edge(4, 2);
  return b;
}

TEST(TopK, RanksByInDegree) {
  const auto g = popularity_graph().build();
  const auto top = top_by_in_degree(g, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].node, 0u);
  EXPECT_EQ(top[0].score, 3u);
  EXPECT_EQ(top[1].node, 1u);
  EXPECT_EQ(top[2].node, 2u);
}

TEST(TopK, TiesBreakByLowestId) {
  GraphBuilder b;
  b.add_edge(2, 0);
  b.add_edge(3, 1);
  const auto top = top_by_in_degree(b.build(), 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].node, 0u);
  EXPECT_EQ(top[1].node, 1u);
}

TEST(TopK, KLargerThanGraph) {
  const auto g = popularity_graph().build();
  const auto top = top_by_in_degree(g, 100);
  EXPECT_EQ(top.size(), g.node_count());
}

TEST(TopK, ZeroK) {
  const auto g = popularity_graph().build();
  EXPECT_TRUE(top_by_in_degree(g, 0).empty());
}

TEST(TopK, OutDegreeVariant) {
  const auto g = popularity_graph().build();
  const auto top = top_by_out_degree(g, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].node, 4u);  // out-degree 3
  EXPECT_EQ(top[0].score, 3u);
  EXPECT_EQ(top[1].node, 5u);  // out-degree 2
}

TEST(TopK, FilteredRanking) {
  const auto g = popularity_graph().build();
  const auto top = top_by_in_degree_filtered(
      g, 2, [](NodeId u) { return u % 2 == 1; });  // odd nodes only
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].node, 1u);
  EXPECT_EQ(top[1].node, 3u);  // in-degree 0, but best remaining odd node
}

TEST(TopK, FilterExcludingEverything) {
  const auto g = popularity_graph().build();
  EXPECT_TRUE(
      top_by_in_degree_filtered(g, 5, [](NodeId) { return false; }).empty());
}

TEST(Jaccard, IdenticalSetsAreOne) {
  const std::vector<int> a = {1, 2, 3};
  EXPECT_DOUBLE_EQ(jaccard_index(a, a), 1.0);
}

TEST(Jaccard, DisjointSetsAreZero) {
  const std::vector<int> a = {1, 2};
  const std::vector<int> b = {3, 4};
  EXPECT_DOUBLE_EQ(jaccard_index(a, b), 0.0);
}

TEST(Jaccard, PartialOverlap) {
  const std::vector<int> a = {1, 2, 3};
  const std::vector<int> b = {2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(jaccard_index(a, b), 2.0 / 5.0);
}

TEST(Jaccard, DuplicatesCollapse) {
  const std::vector<int> a = {1, 1, 1, 2};
  const std::vector<int> b = {1, 2, 2, 2};
  EXPECT_DOUBLE_EQ(jaccard_index(a, b), 1.0);
}

TEST(Jaccard, EmptyConventions) {
  const std::vector<int> empty;
  const std::vector<int> a = {1};
  EXPECT_DOUBLE_EQ(jaccard_index(empty, empty), 1.0);
  EXPECT_DOUBLE_EQ(jaccard_index(empty, a), 0.0);
}

TEST(Jaccard, StringVariant) {
  const std::vector<std::string> a = {"IT", "Mu", "Co"};
  const std::vector<std::string> b = {"Mu", "IT", "Jo"};
  EXPECT_DOUBLE_EQ(jaccard_index(a, b), 0.5);
}

TEST(Jaccard, PaperTable5UsCaExample) {
  // US: Co Mu IT Mu IT Mu Bu IT Mo Ac -> {Co, Mu, IT, Bu, Mo, Ac}
  // CA: IT IT Mu Co Bu Ac IT Mu Co Ac -> {IT, Mu, Co, Bu, Ac}
  const std::vector<std::string> us = {"Co", "Mu", "IT", "Mu", "IT",
                                       "Mu", "Bu", "IT", "Mo", "Ac"};
  const std::vector<std::string> ca = {"IT", "IT", "Mu", "Co", "Bu",
                                       "Ac", "IT", "Mu", "Co", "Ac"};
  // Intersection {Co,Mu,IT,Bu,Ac} = 5, union = 6 -> 0.83 as the paper prints.
  EXPECT_NEAR(jaccard_index(us, ca), 0.83, 0.005);
}

}  // namespace
}  // namespace gplus::algo
