#include "crawler/crawler.h"

#include <gtest/gtest.h>

#include "crawler/bias.h"
#include "graph/builder.h"

namespace gplus::crawler {
namespace {

using graph::GraphBuilder;
using graph::NodeId;

struct Fixture {
  graph::DiGraph graph;
  std::vector<synth::Profile> profiles;

  explicit Fixture(graph::DiGraph g)
      : graph(std::move(g)), profiles(graph.node_count()) {}

  service::SocialService service(service::ServiceConfig config = {}) {
    return service::SocialService(&graph, profiles, config);
  }
};

Fixture chain_with_celebrity() {
  // 0 -> 1 -> 2 -> 3 chain plus a celebrity (4) everyone follows.
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  for (NodeId u = 0; u < 4; ++u) b.add_edge(u, 4);
  return Fixture(b.build());
}

TEST(Crawler, FullCrawlRecoversEveryEdge) {
  Fixture fx = chain_with_celebrity();
  auto svc = fx.service();
  CrawlConfig config;
  config.seed_node = 0;
  const auto result = run_bfs_crawl(svc, config);

  EXPECT_EQ(result.node_count(), fx.graph.node_count());
  EXPECT_EQ(result.stats.profiles_crawled, fx.graph.node_count());
  EXPECT_EQ(result.stats.boundary_nodes, 0u);
  EXPECT_EQ(result.graph.edge_count(), fx.graph.edge_count());
  for (NodeId u = 0; u < result.graph.node_count(); ++u) {
    for (NodeId v : result.graph.out_neighbors(u)) {
      EXPECT_TRUE(
          fx.graph.has_edge(result.original_id[u], result.original_id[v]));
    }
  }
}

TEST(Crawler, BidirectionalReachesFollowersOfSeed) {
  // Seed 4 (the celebrity) has only incoming edges; a forward-only BFS
  // would be stuck, the bidirectional crawl walks the in-list.
  Fixture fx = chain_with_celebrity();
  auto svc = fx.service();
  CrawlConfig config;
  config.seed_node = 4;
  const auto result = run_bfs_crawl(svc, config);
  EXPECT_EQ(result.node_count(), 5u);
  EXPECT_EQ(result.graph.edge_count(), fx.graph.edge_count());

  CrawlConfig forward_only = config;
  forward_only.bidirectional = false;
  auto svc2 = fx.service();
  const auto stuck = run_bfs_crawl(svc2, forward_only);
  EXPECT_EQ(stuck.node_count(), 1u);
  EXPECT_EQ(stuck.graph.edge_count(), 0u);
}

TEST(Crawler, MaxProfilesBudgetLeavesBoundary) {
  Fixture fx = chain_with_celebrity();
  auto svc = fx.service();
  CrawlConfig config;
  config.seed_node = 0;
  config.max_profiles = 2;
  const auto result = run_bfs_crawl(svc, config);
  EXPECT_EQ(result.stats.profiles_crawled, 2u);
  EXPECT_GT(result.stats.boundary_nodes, 0u);
  EXPECT_EQ(result.node_count(),
            result.stats.profiles_crawled + result.stats.boundary_nodes);
  // Crawled flags are consistent.
  std::size_t crawled = 0;
  for (auto f : result.crawled) crawled += f;
  EXPECT_EQ(crawled, 2u);
}

TEST(Crawler, DisconnectedPartStaysUnseen) {
  GraphBuilder b;
  b.add_reciprocal_edge(0, 1);
  b.add_reciprocal_edge(2, 3);  // unreachable island
  Fixture fx(b.build());
  auto svc = fx.service();
  CrawlConfig config;
  config.seed_node = 0;
  const auto result = run_bfs_crawl(svc, config);
  EXPECT_EQ(result.node_count(), 2u);
}

TEST(Crawler, HiddenListUsersYieldNoEdges) {
  Fixture fx = chain_with_celebrity();
  service::ServiceConfig sconfig;
  sconfig.hidden_list_fraction = 1.0;
  auto svc = fx.service(sconfig);
  CrawlConfig config;
  config.seed_node = 0;
  const auto result = run_bfs_crawl(svc, config);
  EXPECT_EQ(result.node_count(), 1u);
  EXPECT_EQ(result.graph.edge_count(), 0u);
  EXPECT_EQ(result.stats.hidden_list_users, 1u);
}

TEST(Crawler, StatsAccounting) {
  Fixture fx = chain_with_celebrity();
  auto svc = fx.service();
  CrawlConfig config;
  config.seed_node = 0;
  config.machines = 2;
  const auto result = run_bfs_crawl(svc, config);
  EXPECT_GT(result.stats.requests, 0u);
  EXPECT_EQ(result.stats.requests, svc.request_count());
  EXPECT_GT(result.stats.simulated_hours, 0.0);
  // More machines -> proportionally less wall-clock.
  auto svc2 = fx.service();
  CrawlConfig one_machine = config;
  one_machine.machines = 1;
  const auto slow = run_bfs_crawl(svc2, one_machine);
  EXPECT_GT(slow.stats.simulated_hours, result.stats.simulated_hours);
}

TEST(Crawler, CapTruncationFlagsUsersAndLosesEdges) {
  // Celebrity with 30 followers, cap at 10: the in-list is truncated, and
  // followers beyond the cap are only discovered if otherwise linked.
  GraphBuilder b;
  for (NodeId v = 1; v <= 30; ++v) b.add_edge(v, 0);
  Fixture fx(b.build());
  service::ServiceConfig sconfig;
  sconfig.circle_list_cap = 10;
  auto svc = fx.service(sconfig);
  CrawlConfig config;
  config.seed_node = 0;
  const auto result = run_bfs_crawl(svc, config);
  EXPECT_GT(result.stats.capped_users, 0u);
  EXPECT_LT(result.graph.edge_count(), fx.graph.edge_count());
}

TEST(Crawler, LostEdgeEstimateMatchesConstruction) {
  // 40 followers of node 0, cap 10. The crawl sees 10 via the in-list; the
  // estimator compares the displayed total (40) against collected edges.
  GraphBuilder b;
  for (NodeId v = 1; v <= 40; ++v) b.add_edge(v, 0);
  b.add_edge(0, 1);  // make the crawl expand beyond the seed
  Fixture fx(b.build());
  service::ServiceConfig sconfig;
  sconfig.circle_list_cap = 10;
  auto svc = fx.service(sconfig);
  CrawlConfig config;
  config.seed_node = 0;
  const auto result = run_bfs_crawl(svc, config);

  const auto est = estimate_lost_edges(svc, result);
  EXPECT_EQ(est.users_over_cap, 1u);
  EXPECT_EQ(est.displayed_total, 40u);
  // Collected for node 0: 10 from its own in-list, plus edge 1 -> 0 seen in
  // node 1's out-list (already within the cap sample).
  EXPECT_GE(est.collected_total, 10u);
  EXPECT_GT(est.lost_fraction, 0.0);
}

TEST(Crawler, LostEdgeEstimateZeroWithoutCapPressure) {
  Fixture fx = chain_with_celebrity();
  auto svc = fx.service();
  CrawlConfig config;
  config.seed_node = 0;
  const auto result = run_bfs_crawl(svc, config);
  const auto est = estimate_lost_edges(svc, result);
  EXPECT_EQ(est.users_over_cap, 0u);
  EXPECT_DOUBLE_EQ(est.lost_fraction, 0.0);
}

TEST(Crawler, RejectsBadConfig) {
  Fixture fx = chain_with_celebrity();
  auto svc = fx.service();
  CrawlConfig bad_seed;
  bad_seed.seed_node = 99;
  EXPECT_THROW(run_bfs_crawl(svc, bad_seed), std::invalid_argument);
  CrawlConfig no_machines;
  no_machines.machines = 0;
  EXPECT_THROW(run_bfs_crawl(svc, no_machines), std::invalid_argument);
}

TEST(Bias, PartialBfsOversamplesPopularNodes) {
  // Hub-and-spoke plus a long tail of low-degree chains: an early-stopped
  // BFS from the hub's neighborhood sees the high-degree core first.
  GraphBuilder b;
  for (NodeId v = 1; v <= 50; ++v) b.add_reciprocal_edge(0, v);
  // Low-degree chain hanging off node 50.
  for (NodeId u = 50; u < 450; ++u) b.add_edge(u, u + 1);
  Fixture fx(b.build());
  auto svc = fx.service();
  CrawlConfig config;
  config.seed_node = 0;
  config.max_profiles = 20;
  const auto result = run_bfs_crawl(svc, config);
  const auto report = measure_bias(fx.graph, result);
  EXPECT_LT(report.coverage, 0.2);
  EXPECT_GT(report.degree_bias_ratio, 1.0);
  EXPECT_LE(report.edge_recall, 1.0);
}

TEST(Bias, FullCrawlIsUnbiased) {
  Fixture fx = chain_with_celebrity();
  auto svc = fx.service();
  CrawlConfig config;
  config.seed_node = 0;
  const auto result = run_bfs_crawl(svc, config);
  const auto report = measure_bias(fx.graph, result);
  EXPECT_DOUBLE_EQ(report.coverage, 1.0);
  EXPECT_NEAR(report.degree_bias_ratio, 1.0, 1e-9);
  EXPECT_NEAR(report.edge_recall, 1.0, 1e-9);
}

}  // namespace
}  // namespace gplus::crawler
