#include "algo/bfs.h"

#include <gtest/gtest.h>

#include "graph/builder.h"

namespace gplus::algo {
namespace {

using graph::DiGraph;
using graph::GraphBuilder;
using graph::NodeId;

DiGraph path_graph(NodeId n) {
  GraphBuilder b;
  for (NodeId u = 0; u + 1 < n; ++u) b.add_edge(u, u + 1);
  return b.build();
}

TEST(BfsDistances, DirectedPath) {
  const auto g = path_graph(5);
  const auto dist = bfs_distances(g, 0);
  for (NodeId u = 0; u < 5; ++u) EXPECT_EQ(dist[u], u);
  // From the end, nothing is reachable forward.
  const auto back = bfs_distances(g, 4);
  EXPECT_EQ(back[4], 0u);
  for (NodeId u = 0; u < 4; ++u) EXPECT_EQ(back[u], kUnreachable);
}

TEST(BfsDistances, UndirectedViewReachesBackwards) {
  const auto g = path_graph(5);
  const auto dist = bfs_distances_undirected(g, 4);
  for (NodeId u = 0; u < 5; ++u) EXPECT_EQ(dist[u], 4u - u);
}

TEST(BfsDistances, DisconnectedComponentsUnreachable) {
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const auto g = b.build();
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(BfsDistances, ValidatesSource) {
  const auto g = path_graph(3);
  EXPECT_THROW(bfs_distances(g, 3), std::invalid_argument);
}

TEST(BfsDistances, ShortestOfMultiplePaths) {
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(0, 3);  // shortcut
  const auto dist = bfs_distances(b.build(), 0);
  EXPECT_EQ(dist[3], 1u);
}

TEST(EstimatePathLengths, ExactOnCompleteGraph) {
  GraphBuilder b;
  constexpr NodeId kN = 20;
  for (NodeId u = 0; u < kN; ++u) {
    for (NodeId v = 0; v < kN; ++v) {
      if (u != v) b.add_edge(u, v);
    }
  }
  stats::Rng rng(1);
  PathLengthOptions opt;
  opt.initial_sources = kN;  // use all nodes
  opt.max_sources = kN;
  const auto est = estimate_path_lengths(b.build(), opt, rng);
  EXPECT_DOUBLE_EQ(est.mean, 1.0);
  EXPECT_EQ(est.mode, 1u);
  EXPECT_EQ(est.diameter_lower_bound, 1u);
  EXPECT_DOUBLE_EQ(est.reachable_fraction, 1.0);
  EXPECT_EQ(est.sources_used, kN);
}

TEST(EstimatePathLengths, RingHasKnownDistribution) {
  GraphBuilder b;
  constexpr NodeId kN = 11;
  for (NodeId u = 0; u < kN; ++u) b.add_edge(u, (u + 1) % kN);
  stats::Rng rng(2);
  PathLengthOptions opt;
  opt.initial_sources = kN;
  opt.max_sources = kN;
  const auto est = estimate_path_lengths(b.build(), opt, rng);
  // Directed ring of 11: distances 1..10 uniformly.
  EXPECT_NEAR(est.mean, 5.5, 1e-9);
  EXPECT_EQ(est.diameter_lower_bound, 10u);
}

TEST(EstimatePathLengths, UndirectedOptionShortensRing) {
  GraphBuilder b;
  constexpr NodeId kN = 11;
  for (NodeId u = 0; u < kN; ++u) b.add_edge(u, (u + 1) % kN);
  stats::Rng rng(3);
  PathLengthOptions opt;
  opt.initial_sources = kN;
  opt.max_sources = kN;
  opt.undirected = true;
  const auto est = estimate_path_lengths(b.build(), opt, rng);
  // Undirected ring of 11: max distance 5.
  EXPECT_EQ(est.diameter_lower_bound, 5u);
  EXPECT_NEAR(est.mean, 3.0, 1e-9);
}

TEST(EstimatePathLengths, PmfSumsToOne) {
  const auto g = path_graph(50);
  stats::Rng rng(4);
  PathLengthOptions opt;
  opt.initial_sources = 10;
  opt.max_sources = 50;
  const auto est = estimate_path_lengths(g, opt, rng);
  double total = 0.0;
  for (double p : est.pmf) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_LT(est.reachable_fraction, 1.0);  // path graph: most pairs one-way
}

TEST(EstimatePathLengths, RejectsBadOptions) {
  const auto g = path_graph(3);
  stats::Rng rng(5);
  PathLengthOptions opt;
  opt.initial_sources = 0;
  EXPECT_THROW(estimate_path_lengths(g, opt, rng), std::invalid_argument);
  opt.initial_sources = 1;
  opt.growth = 1.0;
  EXPECT_THROW(estimate_path_lengths(g, opt, rng), std::invalid_argument);
  EXPECT_THROW(estimate_path_lengths(DiGraph{}, PathLengthOptions{}, rng),
               std::invalid_argument);
}

TEST(EstimatePathLengths, ParallelMatchesSerialExactly) {
  // Sources are drawn once and summed, so the thread count must not
  // change a single digit of the estimate.
  GraphBuilder b;
  stats::Rng gen(6);
  for (int i = 0; i < 6000; ++i) {
    b.add_edge(static_cast<NodeId>(gen.next_below(800)),
               static_cast<NodeId>(gen.next_below(800)));
  }
  const auto g = b.build();
  PathLengthOptions serial;
  serial.initial_sources = 50;
  serial.max_sources = 200;
  serial.threads = 1;
  PathLengthOptions parallel = serial;
  parallel.threads = 4;
  stats::Rng rng1(7), rng2(7);
  const auto a = estimate_path_lengths(g, serial, rng1);
  const auto c = estimate_path_lengths(g, parallel, rng2);
  ASSERT_EQ(a.pmf.size(), c.pmf.size());
  for (std::size_t h = 0; h < a.pmf.size(); ++h) {
    EXPECT_DOUBLE_EQ(a.pmf[h], c.pmf[h]) << h;
  }
  EXPECT_DOUBLE_EQ(a.mean, c.mean);
  EXPECT_EQ(a.sources_used, c.sources_used);
  EXPECT_EQ(a.diameter_lower_bound, c.diameter_lower_bound);
}

TEST(DoubleSweepDiameter, PathGraphExact) {
  const auto g = path_graph(10);
  EXPECT_EQ(double_sweep_diameter(g, 5, /*undirected=*/true), 9u);
  // Directed double sweep from node 0 reaches the full chain.
  EXPECT_EQ(double_sweep_diameter(g, 0, /*undirected=*/false), 9u);
}

TEST(DoubleSweepDiameter, AtLeastSingleSweep) {
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  const auto g = b.build();
  EXPECT_GE(double_sweep_diameter(g, 0, false), 2u);
}

}  // namespace
}  // namespace gplus::algo
