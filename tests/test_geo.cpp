#include <gtest/gtest.h>

#include <set>

#include "geo/coords.h"
#include "geo/countries.h"
#include "geo/world.h"
#include "stats/descriptive.h"

namespace gplus::geo {
namespace {

TEST(Haversine, ZeroForIdenticalPoints) {
  const LatLon p{40.0, -74.0};
  EXPECT_DOUBLE_EQ(haversine_miles(p, p), 0.0);
}

TEST(Haversine, KnownCityDistances) {
  const LatLon nyc{40.71, -74.01};
  const LatLon la{34.05, -118.24};
  // Great-circle NYC-LA is ~2,445 statute miles.
  EXPECT_NEAR(haversine_miles(nyc, la), 2445.0, 30.0);

  const LatLon london{51.51, -0.13};
  // NYC-London ~3,460 miles.
  EXPECT_NEAR(haversine_miles(nyc, london), 3460.0, 40.0);
}

TEST(Haversine, Symmetric) {
  const LatLon a{12.97, 77.59};
  const LatLon b{-23.55, -46.63};
  EXPECT_DOUBLE_EQ(haversine_miles(a, b), haversine_miles(b, a));
}

TEST(Haversine, AntipodalIsHalfCircumference) {
  const LatLon a{0.0, 0.0};
  const LatLon b{0.0, 180.0};
  EXPECT_NEAR(haversine_miles(a, b), 3.14159265 * kEarthRadiusMiles, 1.0);
}

TEST(Haversine, TriangleInequalityHolds) {
  const LatLon a{40.71, -74.01};
  const LatLon b{51.51, -0.13};
  const LatLon c{35.68, 139.69};
  EXPECT_LE(haversine_miles(a, c),
            haversine_miles(a, b) + haversine_miles(b, c) + 1e-9);
}

TEST(Coords, Validation) {
  EXPECT_TRUE(is_valid({0.0, 0.0}));
  EXPECT_TRUE(is_valid({-90.0, 180.0}));
  EXPECT_FALSE(is_valid({91.0, 0.0}));
  EXPECT_FALSE(is_valid({0.0, -181.0}));
}

TEST(Countries, TableCoversPaperFigures) {
  // Every country named in Figures 6, 7, and 10 must be present.
  for (const char* code : {"US", "IN", "BR", "GB", "CA", "DE", "ID", "MX",
                           "IT", "ES", "RU", "FR", "VN", "CN", "TH", "JP",
                           "TW", "AR", "AU", "IR"}) {
    EXPECT_TRUE(find_country(code).has_value()) << code;
  }
  EXPECT_FALSE(find_country("XX").has_value());
  EXPECT_FALSE(find_country("").has_value());
}

TEST(Countries, DataSanity) {
  std::set<std::string_view> codes;
  for (const Country& c : countries()) {
    EXPECT_EQ(c.code.size(), 2u);
    EXPECT_TRUE(codes.insert(c.code).second) << "duplicate " << c.code;
    EXPECT_GT(c.population, 1'000'000u);
    EXPECT_GT(c.internet_penetration, 0.0);
    EXPECT_LE(c.internet_penetration, 1.0);
    EXPECT_GT(c.gdp_per_capita_ppp, 1000.0);
    EXPECT_FALSE(c.cities.empty());
    for (const City& city : c.cities) {
      EXPECT_TRUE(is_valid(city.location)) << c.code << " " << city.name;
      EXPECT_GT(city.weight, 0.0);
    }
  }
}

TEST(Countries, KnownRelativeFacts) {
  const auto& us = country(*find_country("US"));
  const auto& in = country(*find_country("IN"));
  const auto& de = country(*find_country("DE"));
  EXPECT_GT(in.population, us.population);
  EXPECT_GT(us.gdp_per_capita_ppp, in.gdp_per_capita_ppp);
  EXPECT_GT(de.internet_penetration, in.internet_penetration);
  // The Fig 7b "linear" relation: richer countries are more connected.
  EXPECT_GT(us.internet_penetration, 0.7);
  EXPECT_LT(in.internet_penetration, 0.2);
}

TEST(Countries, PaperTop10OrderAndLookup) {
  const auto top = paper_top10();
  ASSERT_EQ(top.size(), 10u);
  EXPECT_EQ(country(top[0]).code, "US");
  EXPECT_EQ(country(top[1]).code, "IN");
  EXPECT_EQ(country(top[9]).code, "ES");
}

TEST(Countries, InvalidIdRejected) {
  EXPECT_THROW(country(country_count()), std::invalid_argument);
  EXPECT_THROW(country(kNoCountry), std::invalid_argument);
}

TEST(Countries, RegionNamesNonEmpty) {
  for (auto r : {Region::kNorthAmerica, Region::kLatinAmerica, Region::kEurope,
                 Region::kAsia, Region::kOceania, Region::kMiddleEast}) {
    EXPECT_FALSE(region_name(r).empty());
  }
}

TEST(World, SampledLocationsNearHomeCountry) {
  const World world(10.0);
  stats::Rng rng(1);
  const auto br = *find_country("BR");
  for (int i = 0; i < 200; ++i) {
    const LatLon p = world.sample_location(br, rng);
    ASSERT_TRUE(is_valid(p));
    // Within 300 miles of some Brazilian city.
    double best = 1e9;
    for (const City& city : country(br).cities) {
      best = std::min(best, haversine_miles(p, city.location));
    }
    EXPECT_LT(best, 300.0);
  }
}

TEST(World, JitterScalesWithConfig) {
  stats::Rng rng(2);
  const auto us = *find_country("US");
  auto mean_offset = [&](double jitter) {
    const World world(jitter);
    stats::RunningStats acc;
    for (int i = 0; i < 300; ++i) {
      const std::size_t city = world.sample_city(us, rng);
      const LatLon p = world.sample_location_in_city(us, city, rng);
      acc.add(haversine_miles(p, country(us).cities[city].location));
    }
    return acc.mean();
  };
  const double small = mean_offset(2.0);
  const double large = mean_offset(40.0);
  EXPECT_LT(small, 10.0);
  EXPECT_GT(large, 3.0 * small);
}

TEST(World, ZeroJitterPinsToCity) {
  const World world(0.0);
  stats::Rng rng(3);
  const auto jp = *find_country("JP");
  const std::size_t city = world.sample_city(jp, rng);
  const LatLon p = world.sample_location_in_city(jp, city, rng);
  EXPECT_NEAR(haversine_miles(p, country(jp).cities[city].location), 0.0, 1e-6);
}

TEST(World, CityWeightsRespected) {
  const World world;
  stats::Rng rng(4);
  const auto jp = *find_country("JP");  // Tokyo dominates
  std::size_t tokyo = 0;
  constexpr int kDraws = 5000;
  for (int i = 0; i < kDraws; ++i) tokyo += world.sample_city(jp, rng) == 0;
  const double share = static_cast<double>(tokyo) / kDraws;
  // Tokyo weight 35.7 of 69.7 total ≈ 0.51.
  EXPECT_NEAR(share, 0.51, 0.05);
}

TEST(World, CountryDistancesSane) {
  const World world;
  const auto us = *find_country("US");
  const auto ca = *find_country("CA");
  const auto au = *find_country("AU");
  EXPECT_DOUBLE_EQ(world.country_distance_miles(us, us), 0.0);
  EXPECT_LT(world.country_distance_miles(us, ca),
            world.country_distance_miles(us, au));
  EXPECT_DOUBLE_EQ(world.country_distance_miles(us, au),
                   world.country_distance_miles(au, us));
}

TEST(World, RejectsInvalidArguments) {
  EXPECT_THROW(World(-1.0), std::invalid_argument);
  const World world;
  stats::Rng rng(5);
  EXPECT_THROW(world.sample_location(kNoCountry, rng), std::invalid_argument);
  EXPECT_THROW(world.sample_location_in_city(0, 999, rng), std::invalid_argument);
}

}  // namespace
}  // namespace gplus::geo
