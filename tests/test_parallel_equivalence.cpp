// Serial-equivalence gauntlet for the kernels ported onto the shared
// parallel runtime (core/parallel.h): every kernel must return the same
// value at 1, 2, 7 and hardware_concurrency lanes — exactly for integer
// counts, EXPECT_DOUBLE_EQ for the fixed-order floating-point reductions.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "algo/anf.h"
#include "algo/betweenness.h"
#include "algo/bfs.h"
#include "algo/clustering.h"
#include "algo/degrees.h"
#include "algo/pagerank.h"
#include "algo/reciprocity.h"
#include "algo/triangles.h"
#include "core/parallel.h"
#include "graph/builder.h"
#include "stats/rng.h"

namespace gplus::algo {
namespace {

using graph::DiGraph;
using graph::GraphBuilder;
using graph::NodeId;

// Seeded random digraph with hubs, dangling nodes and reciprocal edges —
// enough structure that every kernel has nontrivial work.
DiGraph random_graph(std::uint64_t seed, NodeId nodes, std::size_t edges) {
  GraphBuilder b;
  stats::Rng rng(seed);
  b.add_edge(0, nodes - 1);  // pin the node count
  for (std::size_t e = 0; e < edges; ++e) {
    // Square one endpoint's draw toward low ids to create hubs.
    const auto u = static_cast<NodeId>(
        rng.next_below(nodes) * rng.next_below(nodes) / nodes);
    const auto v = static_cast<NodeId>(rng.next_below(nodes));
    if (u == v) continue;
    b.add_edge(u, v);
    if (rng.next_bool(0.3)) b.add_edge(v, u);
  }
  return b.build();
}

class ParallelEquivalence : public ::testing::TestWithParam<std::size_t> {
 protected:
  void TearDown() override { core::set_thread_count(0); }

  // Runs `fn` once at 1 lane and once at the param lane count.
  template <typename Fn>
  auto baseline_and_parallel(Fn fn) {
    core::set_thread_count(1);
    auto base = fn();
    core::set_thread_count(GetParam());
    auto got = fn();
    return std::pair(std::move(base), std::move(got));
  }

  const DiGraph g_ = random_graph(7, 600, 6000);
};

TEST_P(ParallelEquivalence, TriangleCensusExact) {
  const auto [base, got] =
      baseline_and_parallel([&] { return count_triangles(g_); });
  EXPECT_EQ(base.triangles, got.triangles);
  EXPECT_EQ(base.triples, got.triples);
  EXPECT_DOUBLE_EQ(base.transitivity(), got.transitivity());
}

TEST_P(ParallelEquivalence, ClusteringCoefficientsMatch) {
  const auto [base, got] =
      baseline_and_parallel([&] { return clustering_coefficients(g_); });
  ASSERT_EQ(base.size(), got.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_DOUBLE_EQ(base[i], got[i]) << i;
  }
}

TEST_P(ParallelEquivalence, SampledClusteringMatchesWithSameSeed) {
  auto run = [&] {
    stats::Rng rng(21);
    return sampled_clustering_coefficients(g_, 150, rng);
  };
  const auto [base, got] = baseline_and_parallel(run);
  ASSERT_EQ(base.size(), got.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_DOUBLE_EQ(base[i], got[i]) << i;
  }
}

TEST_P(ParallelEquivalence, PageRankBitIdentical) {
  const auto [base, got] = baseline_and_parallel([&] { return pagerank(g_); });
  EXPECT_EQ(base.iterations, got.iterations);
  EXPECT_EQ(base.converged, got.converged);
  ASSERT_EQ(base.score.size(), got.score.size());
  for (std::size_t i = 0; i < base.score.size(); ++i) {
    EXPECT_DOUBLE_EQ(base.score[i], got.score[i]) << i;
  }
}

TEST_P(ParallelEquivalence, AnfBitIdentical) {
  auto run = [&] {
    AnfOptions options;
    options.precision = 6;
    options.undirected = true;
    return approximate_neighborhood_function(g_, options);
  };
  const auto [base, got] = baseline_and_parallel(run);
  EXPECT_EQ(base.iterations, got.iterations);
  ASSERT_EQ(base.reachable_pairs.size(), got.reachable_pairs.size());
  for (std::size_t h = 0; h < base.reachable_pairs.size(); ++h) {
    EXPECT_DOUBLE_EQ(base.reachable_pairs[h], got.reachable_pairs[h]) << h;
  }
  EXPECT_DOUBLE_EQ(base.mean_distance, got.mean_distance);
  EXPECT_DOUBLE_EQ(base.effective_diameter, got.effective_diameter);
}

TEST_P(ParallelEquivalence, DegreeVectorsAndDistributionsMatch) {
  auto run = [&] {
    return std::tuple(in_degrees(g_), out_degrees(g_),
                      in_degree_distribution(g_, 2),
                      out_degree_distribution(g_, 2));
  };
  const auto [base, got] = baseline_and_parallel(run);
  EXPECT_EQ(std::get<0>(base), std::get<0>(got));
  EXPECT_EQ(std::get<1>(base), std::get<1>(got));
  const auto& base_in = std::get<2>(base);
  const auto& got_in = std::get<2>(got);
  EXPECT_EQ(base_in.max, got_in.max);
  EXPECT_DOUBLE_EQ(base_in.mean, got_in.mean);
  EXPECT_DOUBLE_EQ(base_in.power_law.alpha, got_in.power_law.alpha);
  const auto& base_out = std::get<3>(base);
  const auto& got_out = std::get<3>(got);
  EXPECT_EQ(base_out.max, got_out.max);
  EXPECT_DOUBLE_EQ(base_out.mean, got_out.mean);
  EXPECT_DOUBLE_EQ(base_out.power_law.alpha, got_out.power_law.alpha);
}

TEST_P(ParallelEquivalence, ReciprocityMatches) {
  auto run = [&] {
    return std::pair(global_reciprocity(g_), relation_reciprocities(g_));
  };
  const auto [base, got] = baseline_and_parallel(run);
  EXPECT_DOUBLE_EQ(base.first, got.first);
  ASSERT_EQ(base.second.size(), got.second.size());
  for (std::size_t i = 0; i < base.second.size(); ++i) {
    EXPECT_DOUBLE_EQ(base.second[i], got.second[i]) << i;
  }
}

TEST_P(ParallelEquivalence, SampledBetweennessBitIdentical) {
  auto run = [&] {
    stats::Rng rng(31);
    return sampled_betweenness(g_, 60, rng);
  };
  const auto [base, got] = baseline_and_parallel(run);
  ASSERT_EQ(base.size(), got.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_DOUBLE_EQ(base[i], got[i]) << i;
  }
}

TEST_P(ParallelEquivalence, PathLengthEstimateExact) {
  auto run = [&] {
    PathLengthOptions opt;
    opt.initial_sources = 50;
    opt.max_sources = 150;
    opt.threads = 0;  // shared pool
    stats::Rng rng(41);
    return estimate_path_lengths(g_, opt, rng);
  };
  const auto [base, got] = baseline_and_parallel(run);
  ASSERT_EQ(base.pmf.size(), got.pmf.size());
  for (std::size_t h = 0; h < base.pmf.size(); ++h) {
    EXPECT_DOUBLE_EQ(base.pmf[h], got.pmf[h]) << h;
  }
  EXPECT_DOUBLE_EQ(base.mean, got.mean);
  EXPECT_EQ(base.mode, got.mode);
  EXPECT_EQ(base.diameter_lower_bound, got.diameter_lower_bound);
  EXPECT_EQ(base.sources_used, got.sources_used);
  EXPECT_DOUBLE_EQ(base.reachable_fraction, got.reachable_fraction);
}

INSTANTIATE_TEST_SUITE_P(
    ThreadCounts, ParallelEquivalence,
    ::testing::Values(std::size_t{1}, std::size_t{2}, std::size_t{7},
                      std::size_t{std::max(1u, std::thread::hardware_concurrency())}),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      return "threads" + std::to_string(info.param) +
             (info.index == 3 ? "_hw" : "");
    });

}  // namespace
}  // namespace gplus::algo
