#include <gtest/gtest.h>

#include "algo/anf.h"
#include "algo/bfs.h"
#include "algo/triangles.h"
#include "graph/builder.h"
#include "stats/rng.h"

namespace gplus::algo {
namespace {

using graph::DiGraph;
using graph::GraphBuilder;
using graph::NodeId;

TEST(Triangles, EmptyAndEdgelessGraphs) {
  EXPECT_EQ(count_triangles(DiGraph{}).triangles, 0u);
  GraphBuilder b(5);
  const auto census = count_triangles(b.build());
  EXPECT_EQ(census.triangles, 0u);
  EXPECT_EQ(census.triples, 0u);
  EXPECT_DOUBLE_EQ(census.transitivity(), 0.0);
}

TEST(Triangles, SingleDirectedTriangle) {
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  const auto census = count_triangles(b.build());
  EXPECT_EQ(census.triangles, 1u);
  EXPECT_EQ(census.triples, 3u);
  EXPECT_DOUBLE_EQ(census.transitivity(), 1.0);
}

TEST(Triangles, ReciprocalEdgesDoNotDoubleCount) {
  GraphBuilder b;
  b.add_reciprocal_edge(0, 1);
  b.add_reciprocal_edge(1, 2);
  b.add_reciprocal_edge(2, 0);
  const auto census = count_triangles(b.build());
  EXPECT_EQ(census.triangles, 1u);
  EXPECT_DOUBLE_EQ(census.transitivity(), 1.0);
}

TEST(Triangles, StarHasTriplesButNoTriangles) {
  GraphBuilder b;
  for (NodeId v = 1; v <= 6; ++v) b.add_edge(0, v);
  const auto census = count_triangles(b.build());
  EXPECT_EQ(census.triangles, 0u);
  EXPECT_EQ(census.triples, 15u);  // C(6,2) at the hub
  EXPECT_DOUBLE_EQ(census.transitivity(), 0.0);
}

TEST(Triangles, CompleteGraphCounts) {
  constexpr NodeId kN = 7;
  GraphBuilder b;
  for (NodeId u = 0; u < kN; ++u) {
    for (NodeId v = 0; v < kN; ++v) {
      if (u != v) b.add_edge(u, v);
    }
  }
  const auto census = count_triangles(b.build());
  EXPECT_EQ(census.triangles, 35u);  // C(7,3)
  EXPECT_DOUBLE_EQ(census.transitivity(), 1.0);
}

TEST(Triangles, MatchesBruteForceOnRandomGraph) {
  GraphBuilder b;
  stats::Rng rng(3);
  constexpr NodeId kN = 60;
  for (int i = 0; i < 500; ++i) {
    b.add_edge(static_cast<NodeId>(rng.next_below(kN)),
               static_cast<NodeId>(rng.next_below(kN)));
  }
  const auto g = b.build();
  // Brute force over node triples on the undirected view.
  auto connected = [&](NodeId a, NodeId c) {
    return a != c && (g.has_edge(a, c) || g.has_edge(c, a));
  };
  std::uint64_t brute = 0;
  for (NodeId a = 0; a < kN; ++a) {
    for (NodeId bn = a + 1; bn < kN; ++bn) {
      if (!connected(a, bn)) continue;
      for (NodeId c = bn + 1; c < kN; ++c) {
        brute += connected(a, c) && connected(bn, c);
      }
    }
  }
  EXPECT_EQ(count_triangles(g).triangles, brute);
}

TEST(HyperLogLog, EstimatesCardinalityWithinError) {
  HyperLogLog sketch(10);  // ~3% error
  std::uint64_t state = 42;
  constexpr int kItems = 50'000;
  for (int i = 0; i < kItems; ++i) sketch.add_hash(stats::splitmix64_next(state));
  EXPECT_NEAR(sketch.estimate(), kItems, kItems * 0.1);
}

TEST(HyperLogLog, SmallRangeExact) {
  HyperLogLog sketch(8);
  std::uint64_t state = 7;
  for (int i = 0; i < 10; ++i) sketch.add_hash(stats::splitmix64_next(state));
  EXPECT_NEAR(sketch.estimate(), 10.0, 2.0);
}

TEST(HyperLogLog, MergeIsUnion) {
  HyperLogLog a(9), b(9);
  std::uint64_t state = 1;
  std::vector<std::uint64_t> hashes;
  for (int i = 0; i < 2000; ++i) hashes.push_back(stats::splitmix64_next(state));
  for (int i = 0; i < 1000; ++i) a.add_hash(hashes[i]);
  for (int i = 500; i < 2000; ++i) b.add_hash(hashes[i]);
  a.merge(b);
  EXPECT_NEAR(a.estimate(), 2000.0, 200.0);
  // Merging an identical sketch changes nothing.
  HyperLogLog copy = a;
  EXPECT_FALSE(a.merge(copy));
}

TEST(HyperLogLog, PrecisionValidation) {
  EXPECT_THROW(HyperLogLog(3), std::invalid_argument);
  EXPECT_THROW(HyperLogLog(17), std::invalid_argument);
  HyperLogLog a(8), b(9);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(Anf, ExactOnSmallDirectedPath) {
  // Path 0 -> 1 -> 2 -> 3: reachable pairs at h: n + cumulative counts.
  GraphBuilder b;
  for (NodeId u = 0; u + 1 < 4; ++u) b.add_edge(u, u + 1);
  AnfOptions options;
  options.precision = 12;  // effectively exact at this size
  const auto anf = approximate_neighborhood_function(b.build(), options);
  ASSERT_GE(anf.reachable_pairs.size(), 4u);
  EXPECT_NEAR(anf.reachable_pairs[0], 4.0, 0.2);   // self only
  EXPECT_NEAR(anf.reachable_pairs[1], 7.0, 0.3);   // +3 pairs at dist 1
  EXPECT_NEAR(anf.reachable_pairs[2], 9.0, 0.4);   // +2 at dist 2
  EXPECT_NEAR(anf.reachable_pairs[3], 10.0, 0.5);  // +1 at dist 3
  // Mean distance: (3*1 + 2*2 + 1*3) / 6 = 10/6.
  EXPECT_NEAR(anf.mean_distance, 10.0 / 6.0, 0.15);
}

TEST(Anf, ConvergesAndStops) {
  GraphBuilder b;
  for (NodeId u = 0; u < 10; ++u) b.add_edge(u, (u + 1) % 10);
  const auto anf = approximate_neighborhood_function(b.build());
  // A directed 10-ring has diameter 9: needs exactly 9 growth passes plus
  // one fixed-point confirmation.
  EXPECT_GE(anf.iterations, 9u);
  EXPECT_LE(anf.iterations, 11u);
}

TEST(Anf, MatchesSampledEstimatorOnRandomGraph) {
  GraphBuilder b;
  stats::Rng rng(9);
  constexpr NodeId kN = 2000;
  for (int i = 0; i < 16'000; ++i) {
    b.add_edge(static_cast<NodeId>(rng.next_below(kN)),
               static_cast<NodeId>(rng.next_below(kN)));
  }
  const auto g = b.build();

  AnfOptions options;
  options.precision = 9;
  const auto anf = approximate_neighborhood_function(g, options);

  PathLengthOptions exact_opt;
  exact_opt.initial_sources = kN;  // exact: all sources
  exact_opt.max_sources = kN;
  stats::Rng rng2(10);
  const auto sampled = estimate_path_lengths(g, exact_opt, rng2);

  EXPECT_NEAR(anf.mean_distance, sampled.mean, sampled.mean * 0.1);
}

TEST(Anf, UndirectedViewShortensDistances) {
  GraphBuilder b;
  for (NodeId u = 0; u + 1 < 30; ++u) b.add_edge(u, u + 1);
  AnfOptions directed;
  directed.precision = 11;
  AnfOptions undirected = directed;
  undirected.undirected = true;
  const auto d = approximate_neighborhood_function(b.build(), directed);
  const auto u = approximate_neighborhood_function(b.build(), undirected);
  // Undirected view reaches ~2x the pairs (both directions).
  EXPECT_GT(u.reachable_pairs.back(), 1.5 * d.reachable_pairs.back());
}

TEST(Anf, EmptyGraph) {
  const auto anf = approximate_neighborhood_function(DiGraph{});
  EXPECT_TRUE(anf.reachable_pairs.empty());
  EXPECT_EQ(anf.iterations, 0u);
}

}  // namespace
}  // namespace gplus::algo
