#include "core/hop_analysis.h"

#include <gtest/gtest.h>

namespace gplus::core {
namespace {

class HopAnalysisTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ds_ = new Dataset(make_standard_dataset(20'000, 23));
  }
  static void TearDownTestSuite() {
    delete ds_;
    ds_ = nullptr;
  }
  static Dataset* ds_;
};

Dataset* HopAnalysisTest::ds_ = nullptr;

TEST_F(HopAnalysisTest, DomesticPairsAreCloserInHops) {
  stats::Rng rng(1);
  const auto split = measure_hop_geography(*ds_, 40, rng);
  ASSERT_GT(split.domestic_pairs, 1000u);
  ASSERT_GT(split.international_pairs, 1000u);
  // Country homophily must show up as a hop discount.
  EXPECT_LT(split.domestic_mean_hops, split.international_mean_hops);
  // Both are short (small-world), and in a plausible band.
  EXPECT_GT(split.domestic_mean_hops, 1.0);
  EXPECT_LT(split.international_mean_hops, 10.0);
}

TEST_F(HopAnalysisTest, GeoAblationClosesTheGap) {
  DatasetConfig config;
  config.graph = synth::google_plus_preset(20'000, 23);
  config.graph.geo_mixing = 1.0;
  config.graph.community_bias = 0.0;
  config.graph.same_city_bias = 0.0;
  config.graph.local_interest_bias = 0.0;
  // Flatten the mixing rows' country preference via uniform self-link?
  // Not available as a knob; instead compare gap sizes: the default
  // network's domestic discount should exceed the ablated one's.
  const auto ablated = make_dataset(config);
  stats::Rng rng1(2), rng2(2);
  const auto base = measure_hop_geography(*ds_, 30, rng1);
  const auto flat = measure_hop_geography(ablated, 30, rng2);
  const double base_gap =
      base.international_mean_hops - base.domestic_mean_hops;
  const double flat_gap =
      flat.international_mean_hops - flat.domestic_mean_hops;
  EXPECT_GT(base_gap, 0.0);
  // Ablating the within-country locality shrinks (not necessarily zeroes:
  // the mixing matrix still prefers the home country) the hop discount.
  EXPECT_LT(flat_gap, base_gap + 0.1);
}

TEST_F(HopAnalysisTest, Validation) {
  stats::Rng rng(3);
  EXPECT_THROW(measure_hop_geography(*ds_, 0, rng), std::invalid_argument);
}

TEST(HopAnalysis, DegenerateDatasetsReturnZeros) {
  // A dataset where nobody is located: nothing to measure.
  DatasetConfig config;
  config.graph = synth::google_plus_preset(500, 5);
  auto ds = make_dataset(config);
  for (auto& p : ds.profiles) p.shared.clear(synth::Attribute::kPlacesLived);
  stats::Rng rng(4);
  const auto split = measure_hop_geography(ds, 10, rng);
  EXPECT_EQ(split.domestic_pairs, 0u);
  EXPECT_EQ(split.international_pairs, 0u);
}

}  // namespace
}  // namespace gplus::core
