#include <gtest/gtest.h>

#include "core/geo_analysis.h"
#include "stream/diffusion.h"

namespace gplus::core {
namespace {

class LinkProbabilityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ds_ = new Dataset(make_standard_dataset(25'000, 29));
  }
  static void TearDownTestSuite() {
    delete ds_;
    ds_ = nullptr;
  }
  static Dataset* ds_;
};

Dataset* LinkProbabilityTest::ds_ = nullptr;

TEST_F(LinkProbabilityTest, CurveDecaysWithDistance) {
  stats::Rng rng(1);
  const auto curve = link_probability_by_distance(*ds_, 2'000'000, rng);
  ASSERT_GE(curve.size(), 5u);
  // Bins cover [0, max] contiguously.
  for (std::size_t b = 1; b < curve.size(); ++b) {
    EXPECT_DOUBLE_EQ(curve[b].min_miles, curve[b - 1].max_miles);
  }
  // Find the first and a far bin with enough samples and compare.
  const auto& close = curve[0];  // < 10 miles
  ASSERT_GT(close.pairs, 200u);
  double far_prob = 0.0;
  for (const auto& bin : curve) {
    if (bin.min_miles >= 3000.0 && bin.pairs > 1000) {
      far_prob = bin.probability;
      break;
    }
  }
  // Same-neighborhood pairs are orders of magnitude more likely to link.
  EXPECT_GT(close.probability, 20.0 * std::max(far_prob, 1e-7));
  // Counts are consistent.
  for (const auto& bin : curve) {
    EXPECT_LE(bin.linked, bin.pairs);
    if (bin.pairs > 0) {
      EXPECT_NEAR(bin.probability,
                  static_cast<double>(bin.linked) /
                      static_cast<double>(bin.pairs),
                  1e-12);
    }
  }
}

TEST_F(LinkProbabilityTest, Validation) {
  stats::Rng rng(2);
  EXPECT_THROW(link_probability_by_distance(*ds_, 0, rng),
               std::invalid_argument);
}

TEST_F(LinkProbabilityTest, InteractionCountsFlowThroughCascades) {
  // The +1 / comment engagement model: counts accumulate and scale with
  // the audience.
  const stream::DiffusionSimulator sim(ds_, {});
  stats::Rng rng(3);
  const auto cascades = sim.simulate_posts(500, rng);
  const auto summary = stream::summarize_cascades(cascades);
  EXPECT_GT(summary.mean_plus_ones, 0.0);
  EXPECT_GT(summary.mean_comments, 0.0);
  // +1s are configured more common than comments.
  EXPECT_GT(summary.mean_plus_ones, summary.mean_comments);
  for (const auto& c : cascades) {
    EXPECT_LE(c.plus_ones, c.views);
    EXPECT_LE(c.comments, c.views);
  }
}

}  // namespace
}  // namespace gplus::core
