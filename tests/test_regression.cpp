#include "stats/regression.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/rng.h"

namespace gplus::stats {
namespace {

TEST(LinearRegression, RecoversExactLine) {
  const std::vector<double> x = {0.0, 1.0, 2.0, 3.0};
  std::vector<double> y;
  for (double xi : x) y.push_back(2.5 * xi - 1.0);
  const auto fit = linear_regression(x, y);
  EXPECT_NEAR(fit.slope, 2.5, 1e-12);
  EXPECT_NEAR(fit.intercept, -1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_EQ(fit.points, 4u);
}

TEST(LinearRegression, FlatDataFitsPerfectly) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> y = {7.0, 7.0, 7.0};
  const auto fit = linear_regression(x, y);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(fit.r_squared, 1.0);
}

TEST(LinearRegression, NoisyDataHasImperfectR2) {
  Rng rng(5);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    x.push_back(i);
    y.push_back(0.5 * i + rng.next_normal(0.0, 10.0));
  }
  const auto fit = linear_regression(x, y);
  EXPECT_NEAR(fit.slope, 0.5, 0.05);
  EXPECT_LT(fit.r_squared, 1.0);
  EXPECT_GT(fit.r_squared, 0.5);
}

TEST(LinearRegression, RejectsDegenerateInputs) {
  const std::vector<double> one = {1.0};
  EXPECT_THROW(linear_regression(one, one), std::invalid_argument);
  const std::vector<double> x = {2.0, 2.0};
  const std::vector<double> y = {1.0, 3.0};
  EXPECT_THROW(linear_regression(x, y), std::invalid_argument);
  const std::vector<double> x2 = {1.0, 2.0};
  const std::vector<double> y2 = {1.0};
  EXPECT_THROW(linear_regression(x2, y2), std::invalid_argument);
}

TEST(PowerLawFit, RecoversSyntheticParetoExponent) {
  // Continuous Pareto with CCDF exponent alpha: floor() of the draws keeps
  // the tail exponent.
  Rng rng(11);
  constexpr double kAlpha = 1.5;
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 300'000; ++i) {
    const double u = 1.0 - rng.next_double();
    values.push_back(
        static_cast<std::uint64_t>(std::pow(u, -1.0 / kAlpha)));
  }
  const auto fit = fit_power_law_ccdf(values, 2);
  EXPECT_NEAR(fit.alpha, kAlpha, 0.12);
  EXPECT_GT(fit.r_squared, 0.98);
}

TEST(PowerLawFit, SteeperTailYieldsLargerAlpha) {
  Rng rng(13);
  auto fit_for = [&](double alpha) {
    std::vector<std::uint64_t> values;
    for (int i = 0; i < 100'000; ++i) {
      const double u = 1.0 - rng.next_double();
      values.push_back(static_cast<std::uint64_t>(std::pow(u, -1.0 / alpha)));
    }
    return fit_power_law_ccdf(values, 2).alpha;
  };
  EXPECT_LT(fit_for(1.2), fit_for(2.5));
}

TEST(PowerLawFit, RejectsXMinZero) {
  const std::vector<std::uint64_t> v = {1, 2, 3};
  EXPECT_THROW(fit_power_law_ccdf(v, 0), std::invalid_argument);
}

TEST(PowerLawFit, RejectsTooFewPoints) {
  const std::vector<std::uint64_t> v = {5, 5, 5, 5};
  EXPECT_THROW(fit_power_law_ccdf(v, 1), std::invalid_argument);
}

TEST(PowerLawCurveFit, SkipsPointsBelowXMin) {
  // Construct a curve with junk below x=10 and a clean power law above.
  std::vector<CurvePoint> curve;
  curve.push_back({1.0, 1.0});
  curve.push_back({2.0, 0.999});
  for (int k = 1; k <= 6; ++k) {
    const double x = 10.0 * std::pow(2.0, k);
    curve.push_back({x, std::pow(x / 20.0, -2.0)});
  }
  const auto fit = fit_power_law_curve(curve, 15.0);
  EXPECT_NEAR(fit.alpha, 2.0, 1e-6);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

}  // namespace
}  // namespace gplus::stats
