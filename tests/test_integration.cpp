// End-to-end integration: dataset -> simulated service -> BFS crawl ->
// analysis pipeline, mirroring the paper's whole methodology at small scale.
#include <gtest/gtest.h>

#include "algo/reciprocity.h"
#include "algo/scc.h"
#include "core/analysis.h"
#include "core/dataset.h"
#include "crawler/bias.h"
#include "crawler/crawler.h"
#include "service/service.h"

namespace gplus {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ds_ = new core::Dataset(core::make_standard_dataset(30'000, 123));
  }
  static void TearDownTestSuite() {
    delete ds_;
    ds_ = nullptr;
  }
  static core::Dataset* ds_;
};

core::Dataset* IntegrationTest::ds_ = nullptr;

TEST_F(IntegrationTest, FullCrawlRecoversTheActiveCore) {
  service::SocialService svc(&ds_->graph(), ds_->profiles, {});
  crawler::CrawlConfig config;
  // Seed from the most popular user, as the paper seeded from Zuckerberg.
  config.seed_node = core::top_users(*ds_, 1)[0].node;
  const auto crawl = crawler::run_bfs_crawl(svc, config);

  // The crawl reaches the entire weakly connected component of the seed,
  // which holds nearly every non-isolated account.
  const auto wcc = algo::weakly_connected_components(ds_->graph());
  EXPECT_EQ(crawl.node_count(), wcc.giant_size());
  EXPECT_EQ(crawl.stats.boundary_nodes, 0u);

  // Structural measurements on the crawled graph match the ground truth on
  // the same node set: the bidirectional BFS recovers every edge inside the
  // giant component (a sliver of edges may live in small side components).
  const auto report = crawler::measure_bias(ds_->graph(), crawl);
  EXPECT_GT(report.edge_recall, 0.995);
  EXPECT_NEAR(algo::global_reciprocity(crawl.graph),
              algo::global_reciprocity(ds_->graph()), 0.02);
}

TEST_F(IntegrationTest, PartialCrawlShowsDocumentedBfsBias) {
  // §2.2's caveat, quantified: at ~25% coverage the BFS sample's mean
  // in-degree exceeds the population's.
  service::SocialService svc(&ds_->graph(), ds_->profiles, {});
  crawler::CrawlConfig config;
  config.seed_node = core::top_users(*ds_, 1)[0].node;
  config.max_profiles = ds_->user_count() / 4;
  const auto crawl = crawler::run_bfs_crawl(svc, config);
  const auto report = crawler::measure_bias(ds_->graph(), crawl);
  EXPECT_GT(report.degree_bias_ratio, 1.1);
  EXPECT_LT(report.edge_recall, 1.0);
}

TEST_F(IntegrationTest, CircleCapProducesSmallLostEdgeFraction) {
  // With a cap that bites only the very top users — as 10,000 did on
  // Google+ — the §2.2 lost-edge estimate lands in the low percent range.
  // Like the paper's 56% crawl, the crawl must be *partial*: a complete
  // bidirectional crawl recovers every capped edge from the source side.
  service::ServiceConfig sconfig;
  sconfig.circle_list_cap = 2'000;
  service::SocialService svc(&ds_->graph(), ds_->profiles, sconfig);
  crawler::CrawlConfig config;
  config.seed_node = core::top_users(*ds_, 1)[0].node;
  config.max_profiles = ds_->user_count() / 3;
  const auto crawl = crawler::run_bfs_crawl(svc, config);
  const auto est = crawler::estimate_lost_edges(svc, crawl);
  EXPECT_GT(est.users_over_cap, 0u);
  EXPECT_GT(est.lost_fraction, 0.0);
  EXPECT_LT(est.lost_fraction, 0.15);  // paper: 1.6%
}

TEST_F(IntegrationTest, FullBidirectionalCrawlRecoversCappedEdges) {
  // §2.2's own argument: gathering both list directions recovers almost
  // all "lost edges" — with full coverage the estimator reads zero loss.
  service::ServiceConfig sconfig;
  sconfig.circle_list_cap = 2'000;
  service::SocialService svc(&ds_->graph(), ds_->profiles, sconfig);
  crawler::CrawlConfig config;
  config.seed_node = core::top_users(*ds_, 1)[0].node;
  const auto crawl = crawler::run_bfs_crawl(svc, config);
  const auto est = crawler::estimate_lost_edges(svc, crawl);
  EXPECT_GT(est.users_over_cap, 0u);
  EXPECT_DOUBLE_EQ(est.lost_fraction, 0.0);
}

TEST_F(IntegrationTest, CrawledSnapshotReproducesGiantSccFraction) {
  // The paper's "70% of crawled users in the giant SCC" is a property of
  // the crawled snapshot; ours lands in the same region.
  service::SocialService svc(&ds_->graph(), ds_->profiles, {});
  crawler::CrawlConfig config;
  config.seed_node = core::top_users(*ds_, 1)[0].node;
  const auto crawl = crawler::run_bfs_crawl(svc, config);
  const auto sccs = algo::strongly_connected_components(crawl.graph);
  EXPECT_GT(sccs.giant_fraction(), 0.6);
  EXPECT_LT(sccs.giant_fraction(), 0.95);
}

TEST_F(IntegrationTest, HiddenListsShrinkTheCrawlButNotTheService) {
  service::ServiceConfig sconfig;
  sconfig.hidden_list_fraction = 0.25;
  service::SocialService svc(&ds_->graph(), ds_->profiles, sconfig);
  crawler::CrawlConfig config;
  // Seed from the most popular user whose lists are public (a hidden-list
  // seed would kill the BFS on the spot).
  config.seed_node = 0;
  for (const auto& candidate : core::top_users(*ds_, 10)) {
    if (svc.lists_public(candidate.node)) {
      config.seed_node = candidate.node;
      break;
    }
  }
  const auto crawl = crawler::run_bfs_crawl(svc, config);
  EXPECT_GT(crawl.stats.hidden_list_users, 0u);
  EXPECT_LT(crawl.graph.edge_count(), ds_->graph().edge_count());
  // Still discovers the bulk of the network through open users.
  EXPECT_GT(crawl.node_count(), ds_->user_count() / 2);
}

TEST_F(IntegrationTest, DatasetIsDeterministic) {
  const auto again = core::make_standard_dataset(30'000, 123);
  EXPECT_EQ(again.graph().edge_count(), ds_->graph().edge_count());
  ASSERT_EQ(again.profiles.size(), ds_->profiles.size());
  for (std::size_t u = 0; u < again.profiles.size(); ++u) {
    ASSERT_EQ(again.profiles[u].shared, ds_->profiles[u].shared) << u;
    ASSERT_EQ(again.profiles[u].gender, ds_->profiles[u].gender) << u;
  }
}

TEST_F(IntegrationTest, ProfilesAlignWithNetworkFacts) {
  for (graph::NodeId u = 0; u < ds_->user_count(); ++u) {
    const auto& p = ds_->profiles[u];
    EXPECT_EQ(p.country, ds_->net.country[u]);
    EXPECT_EQ(p.celebrity, ds_->net.celebrity[u] != 0);
    EXPECT_EQ(p.home, ds_->net.location[u]);
  }
}

}  // namespace
}  // namespace gplus
