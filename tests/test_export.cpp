#include "core/export.h"

#include <gtest/gtest.h>

#include <sstream>

namespace gplus::core {
namespace {

class ExportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ds_ = new Dataset(make_standard_dataset(2'000, 3));
  }
  static void TearDownTestSuite() {
    delete ds_;
    ds_ = nullptr;
  }
  static Dataset* ds_;
};

Dataset* ExportTest::ds_ = nullptr;

TEST_F(ExportTest, GraphmlIsWellFormedEnough) {
  std::ostringstream out;
  write_graphml(*ds_, out);
  const std::string xml = out.str();
  EXPECT_NE(xml.find("<?xml"), std::string::npos);
  EXPECT_NE(xml.find("<graphml"), std::string::npos);
  EXPECT_NE(xml.find("edgedefault=\"directed\""), std::string::npos);
  EXPECT_NE(xml.find("</graphml>"), std::string::npos);
  // Node and edge counts match the dataset.
  std::size_t nodes = 0, edges = 0, pos = 0;
  while ((pos = xml.find("<node ", pos)) != std::string::npos) {
    ++nodes;
    ++pos;
  }
  pos = 0;
  while ((pos = xml.find("<edge ", pos)) != std::string::npos) {
    ++edges;
    ++pos;
  }
  EXPECT_EQ(nodes, ds_->user_count());
  EXPECT_EQ(edges, ds_->graph().edge_count());
}

TEST_F(ExportTest, PublicViewHidesUndisclosedFacts) {
  std::ostringstream public_out, latent_out;
  ExportOptions public_opts;
  public_opts.public_view = true;
  ExportOptions latent_opts;
  latent_opts.public_view = false;
  write_nodes_csv(*ds_, public_out, public_opts);
  write_nodes_csv(*ds_, latent_out, latent_opts);

  auto count_nonempty_country = [](const std::string& csv) {
    std::istringstream in(csv);
    std::string line;
    std::getline(in, line);  // header
    std::size_t filled = 0;
    while (std::getline(in, line)) {
      const auto first_comma = line.find(',');
      const auto second_comma = line.find(',', first_comma + 1);
      filled += second_comma > first_comma + 1;
    }
    return filled;
  };
  const auto public_filled = count_nonempty_country(public_out.str());
  const auto latent_filled = count_nonempty_country(latent_out.str());
  // Everyone has a latent country; only ~27% share it publicly.
  EXPECT_EQ(latent_filled, ds_->user_count());
  EXPECT_LT(public_filled, ds_->user_count() / 2);
  EXPECT_GT(public_filled, ds_->user_count() / 10);
}

TEST_F(ExportTest, EdgesCsvMatchesGraph) {
  std::ostringstream out;
  write_edges_csv(*ds_, out);
  std::istringstream in(out.str());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "source,target");
  std::size_t rows = 0;
  std::string line;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, ds_->graph().edge_count());
}

TEST_F(ExportTest, OptionsDropColumns) {
  std::ostringstream out;
  ExportOptions options;
  options.include_country = false;
  options.include_coordinates = false;
  write_nodes_csv(*ds_, out, options);
  std::istringstream in(out.str());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "id,occupation,celebrity");
}

TEST_F(ExportTest, FileSavers) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto graphml = dir / "gplus_test.graphml";
  const auto nodes = dir / "gplus_test_nodes.csv";
  const auto edges = dir / "gplus_test_edges.csv";
  save_graphml(*ds_, graphml);
  save_csv(*ds_, nodes, edges);
  EXPECT_GT(std::filesystem::file_size(graphml), 1000u);
  EXPECT_GT(std::filesystem::file_size(nodes), 100u);
  EXPECT_GT(std::filesystem::file_size(edges), 100u);
  std::filesystem::remove(graphml);
  std::filesystem::remove(nodes);
  std::filesystem::remove(edges);
  EXPECT_THROW(save_graphml(*ds_, "/no/such/dir/x.graphml"), std::runtime_error);
}

}  // namespace
}  // namespace gplus::core
