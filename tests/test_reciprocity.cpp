#include "algo/reciprocity.h"

#include <gtest/gtest.h>

#include "graph/builder.h"

namespace gplus::algo {
namespace {

using graph::DiGraph;
using graph::GraphBuilder;

DiGraph mutual_pair() {
  GraphBuilder b;
  b.add_reciprocal_edge(0, 1);
  return b.build();
}

TEST(RelationReciprocity, FullyMutualNodeIsOne) {
  const auto g = mutual_pair();
  EXPECT_DOUBLE_EQ(*relation_reciprocity(g, 0), 1.0);
  EXPECT_DOUBLE_EQ(*relation_reciprocity(g, 1), 1.0);
}

TEST(RelationReciprocity, UndefinedWithoutOutEdges) {
  GraphBuilder b;
  b.add_edge(0, 1);
  const auto g = b.build();
  EXPECT_FALSE(relation_reciprocity(g, 1).has_value());
  EXPECT_DOUBLE_EQ(*relation_reciprocity(g, 0), 0.0);
}

TEST(RelationReciprocity, PartialOverlap) {
  // 0 -> {1, 2, 3}; only 2 points back.
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(0, 3);
  b.add_edge(2, 0);
  const auto g = b.build();
  EXPECT_DOUBLE_EQ(*relation_reciprocity(g, 0), 1.0 / 3.0);
}

TEST(RelationReciprocity, CelebrityPattern) {
  // Celebrity 0 follows 1 user, is followed by 100; RR(0) depends only on
  // its single out-edge.
  GraphBuilder b;
  b.add_edge(0, 1);
  for (graph::NodeId v = 2; v < 102; ++v) b.add_edge(v, 0);
  const auto g = b.build();
  EXPECT_DOUBLE_EQ(*relation_reciprocity(g, 0), 0.0);
  b.add_edge(1, 0);
  const auto g2 = b.build();
  EXPECT_DOUBLE_EQ(*relation_reciprocity(g2, 0), 1.0);
}

TEST(RelationReciprocities, CollectsOnlyQualifyingNodes) {
  GraphBuilder b;
  b.add_edge(0, 1);  // node 1 has out-degree 0
  b.add_reciprocal_edge(2, 3);
  const auto values = relation_reciprocities(b.build());
  EXPECT_EQ(values.size(), 3u);  // nodes 0, 2, 3
}

TEST(GlobalReciprocity, ExtremeCases) {
  EXPECT_DOUBLE_EQ(global_reciprocity(mutual_pair()), 1.0);
  GraphBuilder star;
  for (graph::NodeId v = 1; v < 10; ++v) star.add_edge(v, 0);
  EXPECT_DOUBLE_EQ(global_reciprocity(star.build()), 0.0);
  EXPECT_DOUBLE_EQ(global_reciprocity(DiGraph{}), 0.0);
}

TEST(GlobalReciprocity, MixedGraphExactFraction) {
  // 4 edges, 2 of which form one mutual pair -> reciprocity 0.5.
  GraphBuilder b;
  b.add_reciprocal_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(2, 3);
  EXPECT_DOUBLE_EQ(global_reciprocity(b.build()), 0.5);
}

TEST(ReciprocityCdf, IsValidCdf) {
  GraphBuilder b;
  b.add_reciprocal_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(3, 0);
  b.add_edge(3, 1);
  const auto cdf = reciprocity_cdf(b.build());
  ASSERT_FALSE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.back().y, 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LT(cdf[i - 1].x, cdf[i].x);
    EXPECT_LT(cdf[i - 1].y, cdf[i].y);
  }
}

TEST(GlobalReciprocity, SelfLoopCountsAsReciprocal) {
  // A self-loop's reverse is itself; the merge counts it once.
  GraphBuilder b;
  b.add_edge(0, 0);
  b.add_edge(0, 1);
  const auto g = b.build(/*keep_self_loops=*/true);
  // Edges: 0->0 (mutual with itself), 0->1 (not mutual): 1 of 2.
  EXPECT_DOUBLE_EQ(global_reciprocity(g), 0.5);
}

}  // namespace
}  // namespace gplus::algo
