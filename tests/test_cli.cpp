#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "cli/args.h"
#include "cli/commands.h"

namespace gplus::cli {
namespace {

TEST(ArgParser, DefaultsAndOverrides) {
  ArgParser parser("test", "test parser");
  parser.add_option("nodes", "100", "node count");
  parser.add_flag("verbose", "chatty output");

  ASSERT_FALSE(parser.parse({}).has_value());
  EXPECT_EQ(parser.get("nodes"), "100");
  EXPECT_FALSE(parser.get_flag("verbose"));

  ASSERT_FALSE(parser.parse({"--nodes", "250", "--verbose"}).has_value());
  EXPECT_EQ(parser.get_u64("nodes"), 250u);
  EXPECT_TRUE(parser.get_flag("verbose"));
}

TEST(ArgParser, EqualsSyntaxAndPositionals) {
  ArgParser parser("test", "test parser");
  parser.add_option("rate", "0.5", "a rate");
  ASSERT_FALSE(parser.parse({"input.txt", "--rate=0.25", "extra"}).has_value());
  EXPECT_DOUBLE_EQ(parser.get_double("rate"), 0.25);
  ASSERT_EQ(parser.positional().size(), 2u);
  EXPECT_EQ(parser.positional()[0], "input.txt");
  EXPECT_EQ(parser.positional()[1], "extra");
}

TEST(ArgParser, ReportsErrors) {
  ArgParser parser("test", "test parser");
  parser.add_option("nodes", "1", "n");
  parser.add_flag("fast", "f");
  EXPECT_TRUE(parser.parse({"--bogus"}).has_value());
  EXPECT_TRUE(parser.parse({"--nodes"}).has_value());     // missing value
  EXPECT_TRUE(parser.parse({"--fast=yes"}).has_value());  // flag with value
}

TEST(ArgParser, ReparseResetsState) {
  ArgParser parser("test", "test parser");
  parser.add_option("n", "5", "n");
  ASSERT_FALSE(parser.parse({"--n", "9"}).has_value());
  EXPECT_EQ(parser.get_u64("n"), 9u);
  ASSERT_FALSE(parser.parse({}).has_value());
  EXPECT_EQ(parser.get_u64("n"), 5u);
}

TEST(ArgParser, TypeValidation) {
  ArgParser parser("test", "test parser");
  parser.add_option("n", "abc", "n");
  ASSERT_FALSE(parser.parse({}).has_value());
  EXPECT_THROW(parser.get_u64("n"), std::invalid_argument);
  EXPECT_THROW(parser.get_double("n"), std::invalid_argument);
  EXPECT_THROW(parser.get("undeclared"), std::invalid_argument);
}

TEST(ArgParser, UsageMentionsAllOptions) {
  ArgParser parser("prog", "does things");
  parser.add_option("alpha", "1.0", "the exponent");
  parser.add_flag("quiet", "hush");
  const auto usage = parser.usage();
  EXPECT_NE(usage.find("--alpha"), std::string::npos);
  EXPECT_NE(usage.find("--quiet"), std::string::npos);
  EXPECT_NE(usage.find("the exponent"), std::string::npos);
  EXPECT_NE(usage.find("default: 1.0"), std::string::npos);
}

// End-to-end: generate -> analyze -> top -> crawl -> export, in-process.
// Each TEST may run in its own process (ctest discovery), so the fixture
// regenerates the dataset on demand rather than relying on test order.
class CliPipelineTest : public ::testing::Test {
 protected:
  static std::filesystem::path dataset_path() {
    return std::filesystem::temp_directory_path() / "gplus_cli_test.dataset";
  }
  void SetUp() override {
    if (std::filesystem::exists(dataset_path())) return;
    std::ostringstream out;
    ASSERT_EQ(run_command({"generate", "--nodes", "3000", "--seed", "7",
                           "--out", dataset_path().string()},
                          out),
              0)
        << out.str();
  }
};

TEST_F(CliPipelineTest, A_GenerateWritesADataset) {
  const auto fresh =
      std::filesystem::temp_directory_path() / "gplus_cli_test_fresh.dataset";
  std::ostringstream out;
  const int rc = run_command(
      {"generate", "--nodes", "3000", "--seed", "7", "--out", fresh.string()},
      out);
  EXPECT_EQ(rc, 0) << out.str();
  EXPECT_TRUE(std::filesystem::exists(fresh));
  EXPECT_NE(out.str().find("3,000 users"), std::string::npos);
  std::filesystem::remove(fresh);
}

TEST_F(CliPipelineTest, B_AnalyzePrintsSummary) {
  std::ostringstream out;
  const int rc = run_command({"analyze", "--in", dataset_path().string(),
                              "--path-sources", "40", "--attributes"},
                             out);
  EXPECT_EQ(rc, 0) << out.str();
  EXPECT_NE(out.str().find("Mean degree"), std::string::npos);
  EXPECT_NE(out.str().find("Reciprocity"), std::string::npos);
  EXPECT_NE(out.str().find("Places lived"), std::string::npos);
}

TEST_F(CliPipelineTest, C_TopListsRankedUsers) {
  std::ostringstream out;
  const int rc =
      run_command({"top", "--in", dataset_path().string(), "--k", "5"}, out);
  EXPECT_EQ(rc, 0) << out.str();
  EXPECT_NE(out.str().find("Rank"), std::string::npos);
  EXPECT_NE(out.str().find("5"), std::string::npos);
}

TEST_F(CliPipelineTest, D_CrawlReportsStats) {
  std::ostringstream out;
  const int rc = run_command({"crawl", "--in", dataset_path().string(),
                              "--coverage", "0.5", "--cap", "500"},
                             out);
  EXPECT_EQ(rc, 0) << out.str();
  EXPECT_NE(out.str().find("Profiles crawled"), std::string::npos);
  EXPECT_NE(out.str().find("Degree-bias ratio"), std::string::npos);
}

TEST_F(CliPipelineTest, F_ExportGraphmlAndCsv) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto graphml = dir / "gplus_cli_test.graphml";
  std::ostringstream out1;
  EXPECT_EQ(run_command({"export", "--in", dataset_path().string(), "--out",
                         graphml.string(), "--format", "graphml"},
                        out1),
            0)
      << out1.str();
  EXPECT_TRUE(std::filesystem::exists(graphml));

  const auto nodes = dir / "gplus_cli_test_nodes.csv";
  std::ostringstream out2;
  EXPECT_EQ(run_command({"export", "--in", dataset_path().string(), "--out",
                         nodes.string(), "--format", "csv", "--latent"},
                        out2),
            0)
      << out2.str();
  EXPECT_TRUE(std::filesystem::exists(nodes));
  EXPECT_TRUE(std::filesystem::exists(nodes.string() + ".edges.csv"));

  std::filesystem::remove(graphml);
  std::filesystem::remove(nodes);
  std::filesystem::remove(nodes.string() + ".edges.csv");
}

TEST_F(CliPipelineTest, E_ExportWritesEdgeList) {
  const auto edges_path =
      std::filesystem::temp_directory_path() / "gplus_cli_test_edges.txt";
  std::ostringstream out;
  const int rc = run_command({"export", "--in", dataset_path().string(),
                              "--out", edges_path.string()},
                             out);
  EXPECT_EQ(rc, 0) << out.str();
  EXPECT_TRUE(std::filesystem::exists(edges_path));
  EXPECT_GT(std::filesystem::file_size(edges_path), 1000u);
  std::filesystem::remove(edges_path);
}

TEST_F(CliPipelineTest, G_ReportRendersMarkdown) {
  std::ostringstream out;
  const int rc = run_command({"report", "--in", dataset_path().string(),
                              "--path-sources", "30"},
                             out);
  EXPECT_EQ(rc, 0) << out.str();
  const auto text = out.str();
  EXPECT_NE(text.find("# Google+ reproduction report"), std::string::npos);
  EXPECT_NE(text.find("Mean degree"), std::string::npos);
  EXPECT_NE(text.find("Tel-users"), std::string::npos);
  EXPECT_NE(text.find("Country mixing"), std::string::npos);
  EXPECT_NE(text.find("IT share"), std::string::npos);
}

TEST_F(CliPipelineTest, H_SnapshotBuildAndInspect) {
  const auto snap =
      std::filesystem::temp_directory_path() / "gplus_cli_test.snap";
  std::ostringstream out;
  EXPECT_EQ(run_command({"snapshot", "--in", dataset_path().string(), "--out",
                         snap.string()},
                        out),
            0)
      << out.str();
  EXPECT_TRUE(std::filesystem::exists(snap));
  EXPECT_NE(out.str().find("3,000 users"), std::string::npos);

  std::ostringstream inspect;
  EXPECT_EQ(run_command({"snapshot", "--inspect", snap.string()}, inspect), 0)
      << inspect.str();
  EXPECT_NE(inspect.str().find("Nodes"), std::string::npos);
  EXPECT_NE(inspect.str().find("Reciprocity"), std::string::npos);
  EXPECT_NE(inspect.str().find("Country index"), std::string::npos);
  std::filesystem::remove(snap);
}

TEST_F(CliPipelineTest, I_ServeBenchReportsThroughput) {
  std::ostringstream out;
  const int rc = run_command(
      {"serve-bench", "--in", dataset_path().string(), "--requests", "20000",
       "--clients", "16", "--mix", "mixed"},
      out);
  EXPECT_EQ(rc, 0) << out.str();
  EXPECT_NE(out.str().find("Throughput q/s"), std::string::npos);
  EXPECT_NE(out.str().find("p99 us"), std::string::npos);
  EXPECT_NE(out.str().find("Cache hit rate"), std::string::npos);
  EXPECT_NE(out.str().find("Response checksum"), std::string::npos);
}

TEST_F(CliPipelineTest, J_ServeBenchAcceptsSnapshotFile) {
  // --in sniffs the magic: a pre-built snapshot is served as-is and must
  // answer the same seeded workload with the same checksum as the dataset.
  const auto snap =
      std::filesystem::temp_directory_path() / "gplus_cli_serve.snap";
  std::ostringstream build;
  ASSERT_EQ(run_command({"snapshot", "--in", dataset_path().string(), "--out",
                         snap.string()},
                        build),
            0)
      << build.str();

  const std::vector<std::string> tail = {"--requests", "5000", "--clients",
                                         "8",          "--mix", "read"};
  auto bench = [&](const std::string& in) {
    std::vector<std::string> args = {"serve-bench", "--in", in};
    args.insert(args.end(), tail.begin(), tail.end());
    std::ostringstream out;
    EXPECT_EQ(run_command(args, out), 0) << out.str();
    const std::string text = out.str();
    const auto pos = text.find("Response checksum");
    EXPECT_NE(pos, std::string::npos);
    return text.substr(pos);
  };
  EXPECT_EQ(bench(snap.string()), bench(dataset_path().string()));
  std::filesystem::remove(snap);
}

TEST(Cli, SnapshotErrorPaths) {
  std::ostringstream missing;
  EXPECT_EQ(run_command({"snapshot", "--in", "/no/such/file.ds"}, missing), 1);
  EXPECT_NE(missing.str().find("error"), std::string::npos);

  std::ostringstream inspect_missing;
  EXPECT_EQ(
      run_command({"snapshot", "--inspect", "/no/such/file.snap"}, inspect_missing),
      1);
  EXPECT_NE(inspect_missing.str().find("snapshot"), std::string::npos);

  std::ostringstream bad_option;
  EXPECT_EQ(run_command({"snapshot", "--bogus"}, bad_option), 2);
  EXPECT_NE(bad_option.str().find("unknown option"), std::string::npos);
  EXPECT_NE(bad_option.str().find("--inspect"), std::string::npos);
}

TEST(Cli, ServeBenchErrorPaths) {
  std::ostringstream bad_mix;
  EXPECT_EQ(run_command({"serve-bench", "--mix", "bogus", "--nodes", "500",
                         "--requests", "10"},
                        bad_mix),
            1);
  EXPECT_NE(bad_mix.str().find("unknown workload mix"), std::string::npos);

  std::ostringstream bad_option;
  EXPECT_EQ(run_command({"serve-bench", "--frobnicate"}, bad_option), 2);
  EXPECT_NE(bad_option.str().find("unknown option"), std::string::npos);
  EXPECT_NE(bad_option.str().find("--clients"), std::string::npos);

  std::ostringstream missing;
  EXPECT_EQ(run_command({"serve-bench", "--in", "/no/such/file.ds"}, missing), 1);
  EXPECT_NE(missing.str().find("error"), std::string::npos);
}

TEST(Cli, MotifsCensusEvolveAndCalibrate) {
  // Census mode: all 16 class rows plus the derived summary, with the
  // sampled-estimator column when --samples is set.
  std::ostringstream census;
  EXPECT_EQ(run_command({"motifs", "--nodes", "400", "--samples", "2000"},
                        census),
            0);
  for (const char* name : {"003", "021C", "030T", "111D", "210", "300"}) {
    EXPECT_NE(census.str().find(name), std::string::npos) << name;
  }
  EXPECT_NE(census.str().find("Wedge closure"), std::string::npos);
  EXPECT_NE(census.str().find("Sampled closure"), std::string::npos);

  // The snapshot-backed census path prints the same summary block.
  std::ostringstream snap;
  EXPECT_EQ(run_command({"motifs", "--nodes", "400", "--via-snapshot"}, snap),
            0);
  EXPECT_NE(snap.str().find("Closed triads"), std::string::npos);

  std::ostringstream evolve;
  EXPECT_EQ(run_command({"motifs", "--mode", "evolve", "--nodes", "2000",
                         "--days", "90,180"},
                        evolve),
            0);
  EXPECT_NE(evolve.str().find("Closure"), std::string::npos);
  EXPECT_NE(evolve.str().find("180"), std::string::npos);

  std::ostringstream calibrate;
  EXPECT_EQ(run_command({"motifs", "--mode", "calibrate", "--nodes", "400",
                         "--rounds", "2", "--target-clustering", "0.3"},
                        calibrate),
            0);
  EXPECT_NE(calibrate.str().find("rounds accepted"), std::string::npos);

  std::ostringstream bad;
  EXPECT_EQ(run_command({"motifs", "--mode", "bogus"}, bad), 2);
  EXPECT_NE(bad.str().find("unknown mode"), std::string::npos);
}

TEST(Cli, CommandTableDrivesDispatchAndHelp) {
  // Every table row dispatches and appears in the generated usage text.
  std::ostringstream help;
  EXPECT_EQ(run_command({"help"}, help), 0);
  for (const auto& command : commands()) {
    EXPECT_NE(help.str().find(std::string(command.name)), std::string::npos)
        << command.name;
    EXPECT_NE(help.str().find(std::string(command.summary)), std::string::npos)
        << command.name;
  }
  EXPECT_NE(help.str().find("serve-bench"), std::string::npos);
  EXPECT_NE(help.str().find("snapshot"), std::string::npos);
}

TEST(Cli, UnknownCommandAndHelp) {
  std::ostringstream out;
  EXPECT_EQ(run_command({"frobnicate"}, out), 2);
  EXPECT_NE(out.str().find("unknown command"), std::string::npos);

  std::ostringstream help;
  EXPECT_EQ(run_command({"help"}, help), 0);
  EXPECT_NE(help.str().find("generate"), std::string::npos);

  std::ostringstream empty;
  EXPECT_EQ(run_command({}, empty), 2);
}

TEST(Cli, BadOptionsPrintUsageAndFail) {
  std::ostringstream out;
  EXPECT_EQ(run_command({"generate", "--bogus"}, out), 2);
  EXPECT_NE(out.str().find("unknown option"), std::string::npos);
  EXPECT_NE(out.str().find("--nodes"), std::string::npos);
}

TEST(Cli, MissingFileIsAnError) {
  std::ostringstream out;
  EXPECT_EQ(run_command({"analyze", "--in", "/no/such/file.ds"}, out), 1);
  EXPECT_NE(out.str().find("error"), std::string::npos);
}

TEST(Cli, BadPresetIsAnError) {
  std::ostringstream out;
  EXPECT_EQ(run_command({"generate", "--preset", "myspace"}, out), 1);
  EXPECT_NE(out.str().find("unknown preset"), std::string::npos);
}

}  // namespace
}  // namespace gplus::cli
