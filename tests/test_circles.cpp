#include "stream/circles.h"
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "stream/diffusion.h"

namespace gplus::stream {
namespace {

using graph::NodeId;

class CirclesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ds_ = new core::Dataset(core::make_standard_dataset(15'000, 13));
    circles_ = new CircleAssignment(*ds_, 7);
  }
  static void TearDownTestSuite() {
    delete circles_;
    delete ds_;
    circles_ = nullptr;
    ds_ = nullptr;
  }
  static core::Dataset* ds_;
  static CircleAssignment* circles_;
};

core::Dataset* CirclesTest::ds_ = nullptr;
CircleAssignment* CirclesTest::circles_ = nullptr;

TEST(CircleNames, AllDistinctAndNonEmpty) {
  std::set<std::string_view> names;
  for (std::size_t k = 0; k < kCircleKindCount; ++k) {
    const auto name = circle_name(static_cast<CircleKind>(k));
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second);
  }
}

TEST_F(CirclesTest, EveryContactHasExactlyOneCircle) {
  EXPECT_EQ(circles_->user_count(), ds_->user_count());
  for (NodeId u = 0; u < ds_->user_count(); ++u) {
    const auto kinds = circles_->circles_of(u);
    ASSERT_EQ(kinds.size(), ds_->graph().out_degree(u)) << u;
    const auto counts = circles_->counts(u);
    std::uint64_t total = 0;
    for (auto c : counts) total += c;
    ASSERT_EQ(total, kinds.size()) << u;
  }
}

TEST_F(CirclesTest, MembersMatchAssignments) {
  // Spot-check a few users: members() must agree with circles_of().
  for (NodeId u = 0; u < 50; ++u) {
    const auto outs = ds_->graph().out_neighbors(u);
    std::size_t total = 0;
    for (std::size_t k = 0; k < kCircleKindCount; ++k) {
      const auto members = circles_->members(u, static_cast<CircleKind>(k));
      total += members.size();
      for (NodeId v : members) {
        EXPECT_TRUE(std::find(outs.begin(), outs.end(), v) != outs.end());
      }
    }
    EXPECT_EQ(total, outs.size());
  }
}

TEST_F(CirclesTest, OneWayAddsLandInFollowing) {
  const graph::DiGraph& g = ds_->graph();
  std::size_t checked = 0;
  for (NodeId u = 0; u < ds_->user_count() && checked < 2000; ++u) {
    const auto outs = g.out_neighbors(u);
    const auto kinds = circles_->circles_of(u);
    for (std::size_t i = 0; i < outs.size(); ++i) {
      if (!g.has_edge(outs[i], u)) {
        EXPECT_EQ(kinds[i], CircleKind::kFollowing);
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 100u);
}

TEST_F(CirclesTest, MutualContactsNeverInFollowingUnlessCelebrity) {
  const graph::DiGraph& g = ds_->graph();
  std::size_t checked = 0;
  for (NodeId u = 0; u < 2000; ++u) {
    const auto outs = g.out_neighbors(u);
    const auto kinds = circles_->circles_of(u);
    for (std::size_t i = 0; i < outs.size(); ++i) {
      if (g.has_edge(outs[i], u) && !ds_->profiles[outs[i]].celebrity) {
        EXPECT_NE(kinds[i], CircleKind::kFollowing);
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 100u);
}

TEST_F(CirclesTest, FamilyLivesCloserThanAcquaintances) {
  double family_sum = 0.0, acq_sum = 0.0;
  std::size_t family_n = 0, acq_n = 0;
  for (NodeId u = 0; u < ds_->user_count(); ++u) {
    const auto outs = ds_->graph().out_neighbors(u);
    const auto kinds = circles_->circles_of(u);
    for (std::size_t i = 0; i < outs.size(); ++i) {
      const double miles = geo::haversine_miles(ds_->profiles[u].home,
                                                ds_->profiles[outs[i]].home);
      if (kinds[i] == CircleKind::kFamily) {
        family_sum += miles;
        ++family_n;
      } else if (kinds[i] == CircleKind::kAcquaintances) {
        acq_sum += miles;
        ++acq_n;
      }
    }
  }
  ASSERT_GT(family_n, 100u);
  ASSERT_GT(acq_n, 100u);
  EXPECT_LT(family_sum / static_cast<double>(family_n),
            acq_sum / static_cast<double>(acq_n));
}

TEST_F(CirclesTest, StatsAreCoherent) {
  const auto stats = circle_stats(*circles_);
  double total = 0.0;
  for (double s : stats.share) {
    EXPECT_GE(s, 0.0);
    total += s;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Friends should be a major circle; Following exists (one-way adds).
  EXPECT_GT(stats.share[static_cast<std::size_t>(CircleKind::kFriends)], 0.1);
  EXPECT_GT(stats.share[static_cast<std::size_t>(CircleKind::kFollowing)], 0.1);
}

TEST_F(CirclesTest, DeterministicForSameSeed) {
  const CircleAssignment again(*ds_, 7);
  for (NodeId u = 0; u < 200; ++u) {
    const auto a = circles_->circles_of(u);
    const auto b = again.circles_of(u);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end())) << u;
  }
}

TEST_F(CirclesTest, CircleAwareDiffusionNarrowsPrivatePosts) {
  const DiffusionSimulator plain(ds_, {});
  const DiffusionSimulator aware(ds_, circles_, {});
  // Author with a meaningful audience.
  NodeId author = 0;
  for (NodeId u = 0; u < ds_->user_count(); ++u) {
    if (ds_->graph().in_degree(u) >= 30 && !ds_->profiles[u].celebrity) {
      author = u;
      break;
    }
  }
  stats::Rng rng(5);
  double public_views = 0.0, circle_views = 0.0;
  constexpr int kRuns = 20;
  for (int i = 0; i < kRuns; ++i) {
    public_views +=
        static_cast<double>(aware.simulate_post(author, true, rng).views);
    circle_views +=
        static_cast<double>(aware.simulate_post(author, false, rng).views);
  }
  EXPECT_GT(public_views, circle_views);
  // And the circle-aware limited audience differs from the fraction model
  // but stays bounded by the contact list.
  const auto cascade = aware.simulate_post(author, false, rng);
  EXPECT_LE(cascade.views,
            ds_->user_count());
  (void)plain;
}

TEST_F(CirclesTest, InvalidUserRejected) {
  EXPECT_THROW(circles_->circles_of(static_cast<NodeId>(ds_->user_count())),
               std::invalid_argument);
}

}  // namespace
}  // namespace gplus::stream
