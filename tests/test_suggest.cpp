// kSuggest request-family tests (serve/suggest.h, DESIGN.md §14).
//
// Covers the full determinism contract: hand-checked scores on a tiny
// graph, payload-layout invariants on the standard dataset, bit-identity
// across every intersection-kernel variant and across the v2/v3 snapshot
// formats (including mmap), deadline partials with patched counts,
// error statuses, LRU-cache interaction and 1-vs-N lane equivalence.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <vector>

#include "algo/intersect.h"
#include "core/dataset.h"
#include "core/parallel.h"
#include "graph/builder.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "serve/snapshot_file.h"
#include "serve/suggest.h"
#include "serve/workload.h"

namespace gplus::serve {
namespace {

std::uint32_t get_u32(const std::vector<std::uint8_t>& p, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[at + i]} << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::vector<std::uint8_t>& p, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[at + i]} << (8 * i);
  return v;
}

// One decoded suggestion entry (layout pinned in serve/suggest.h).
struct Entry {
  std::uint32_t node = 0;
  std::uint32_t common = 0;
  std::uint32_t mutual = 0;
  std::uint32_t recip_milli = 0;
  std::uint64_t aa_micro = 0;
};

struct Decoded {
  std::uint32_t found = 0;
  std::uint64_t scanned = 0;
  std::vector<Entry> entries;
};

Decoded decode(const Response& r) {
  Decoded d;
  EXPECT_GE(r.payload.size(), kSuggestHeaderBytes);
  d.found = get_u32(r.payload, 0);
  const std::uint32_t count = get_u32(r.payload, 4);
  d.scanned = get_u64(r.payload, 8);
  EXPECT_EQ(r.payload.size(),
            kSuggestHeaderBytes + std::size_t{count} * kSuggestEntryBytes);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t at = kSuggestHeaderBytes + std::size_t{i} * 24;
    d.entries.push_back(Entry{get_u32(r.payload, at), get_u32(r.payload, at + 4),
                              get_u32(r.payload, at + 8),
                              get_u32(r.payload, at + 12),
                              get_u64(r.payload, at + 16)});
  }
  return d;
}

// Builds a snapshot over a hand-specified edge list (default profiles).
SnapshotBuffer tiny_snapshot(graph::NodeId nodes,
                             const std::vector<std::pair<graph::NodeId,
                                                         graph::NodeId>>& edges,
                             std::uint32_t version = kSnapshotVersion2) {
  graph::GraphBuilder builder(nodes);
  for (const auto& [u, v] : edges) builder.add_edge(u, v);
  core::Dataset dataset;
  dataset.net.graph = builder.build();
  dataset.profiles.resize(nodes);
  SnapshotOptions options;
  options.version = version;
  return build_snapshot(dataset, options);
}

// Mirrors reciprocation_milli in serve/suggest.cpp — the test recomputes
// the expected score from first principles for the hand-checked graph.
std::uint32_t expect_recip(std::uint64_t mutual, std::uint64_t in_w,
                           std::uint64_t out_w, std::uint64_t max_in) {
  const double m = static_cast<double>(mutual);
  const double mutual_f = m / (m + 4.0);
  const double balance = std::min(
      1.0, static_cast<double>(out_w + 1) / static_cast<double>(in_w + 1));
  const double hub =
      max_in > 0 ? std::log2(1.0 + static_cast<double>(in_w)) /
                       std::log2(1.0 + static_cast<double>(max_in))
                 : 0.0;
  return static_cast<std::uint32_t>(
      std::llround((0.55 * mutual_f + 0.30 * balance + 0.15 * (1.0 - hub)) *
                   1000.0));
}

TEST(SuggestTiny, HandCheckedScoresOnAFixedGraph) {
  // 0 -> {1, 2}; 1 -> {3, 4}; 2 -> {0, 3}; 3 -> {0}; 4 -> {5}; 5 -> {}.
  // Candidates for u=0: 3 (via 1 and 2, cn=2) and 4 (via 1, cn=1).
  // 0 itself and direct friends are excluded.
  const SnapshotBuffer snapshot = tiny_snapshot(
      6, {{0, 1}, {0, 2}, {1, 3}, {1, 4}, {2, 0}, {2, 3}, {3, 0}, {4, 5}});
  const SnapshotView view(snapshot.bytes());
  const RequestEngine engine(&view);

  Response r;
  engine.execute({.type = RequestType::kSuggest, .user = 0, .limit = 10}, r);
  ASSERT_EQ(r.status, ServeStatus::kOk);
  EXPECT_EQ(r.flags, 0);
  const Decoded d = decode(r);
  EXPECT_EQ(d.found, 2u);
  EXPECT_EQ(d.scanned, 4u);  // out(1)={3,4} + out(2)={0,3}
  ASSERT_EQ(d.entries.size(), 2u);

  // Adamic-Adar terms use total degree: deg(1)=out2+in1=3, deg(2)=2+1=3.
  const double aa_via_1 = 1.0 / std::log(3.0);
  const double aa_via_2 = 1.0 / std::log(3.0);
  const Entry& first = d.entries[0];
  const Entry& second = d.entries[1];
  EXPECT_EQ(first.node, 3u);
  EXPECT_EQ(first.common, 2u);
  EXPECT_EQ(first.aa_micro,
            static_cast<std::uint64_t>(std::llround((aa_via_1 + aa_via_2) * 1e6)));
  EXPECT_EQ(second.node, 4u);
  EXPECT_EQ(second.common, 1u);
  EXPECT_EQ(second.aa_micro,
            static_cast<std::uint64_t>(std::llround(aa_via_1 * 1e6)));

  // Mutual neighbors: friends(0)={1,2}; out(3)={0} -> 0; out(4)={5} -> 0.
  EXPECT_EQ(first.mutual, 0u);
  EXPECT_EQ(second.mutual, 0u);

  // Reciprocation: max in-degree in this graph is 2 (node 0 and node 3).
  EXPECT_EQ(first.recip_milli, expect_recip(0, view.in_degree(3),
                                            view.out_degree(3), 2));
  EXPECT_EQ(second.recip_milli, expect_recip(0, view.in_degree(4),
                                             view.out_degree(4), 2));
}

TEST(SuggestTiny, MutualNeighborsFeedTheScore) {
  // u=0 follows {1, 2}; candidate 3 follows {1, 2, 4} back -> mutual=2.
  const SnapshotBuffer snapshot = tiny_snapshot(
      5, {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 1}, {3, 2}, {3, 4}});
  const SnapshotView view(snapshot.bytes());
  const RequestEngine engine(&view);
  Response r;
  engine.execute({.type = RequestType::kSuggest, .user = 0, .limit = 4}, r);
  ASSERT_EQ(r.status, ServeStatus::kOk);
  const Decoded d = decode(r);
  ASSERT_EQ(d.entries.size(), 1u);
  EXPECT_EQ(d.entries[0].node, 3u);
  EXPECT_EQ(d.entries[0].common, 2u);
  EXPECT_EQ(d.entries[0].mutual, 2u);
  // More mutual evidence must not lower the score versus zero evidence.
  EXPECT_GT(d.entries[0].recip_milli,
            expect_recip(0, view.in_degree(3), view.out_degree(3), 2));
}

class SuggestStandard : public ::testing::Test {
 protected:
  static constexpr std::size_t kNodes = 2'000;

  static const core::Dataset& dataset() {
    static const core::Dataset instance = core::make_standard_dataset(kNodes, 7);
    return instance;
  }
  static const SnapshotBuffer& v2() {
    static const SnapshotBuffer instance = build_snapshot(dataset());
    return instance;
  }
  static const SnapshotBuffer& v3() {
    static const SnapshotBuffer instance = [] {
      SnapshotOptions options;
      options.version = kSnapshotVersion3;
      return build_snapshot(dataset(), options);
    }();
    return instance;
  }
  static const SnapshotView& view() {
    static const SnapshotView instance{v2().bytes()};
    return instance;
  }

  static std::vector<Request> batch() {
    std::vector<Request> requests;
    for (graph::NodeId u = 0; u < kNodes; u += 23) {
      requests.push_back(
          {.type = RequestType::kSuggest, .user = u, .limit = 10});
      requests.push_back({.type = RequestType::kSuggest,
                          .user = u,
                          .limit = 30,
                          .cost_budget = 60});
    }
    return requests;
  }
};

TEST_F(SuggestStandard, PayloadInvariantsHold) {
  const RequestEngine engine(&view());
  std::size_t non_empty = 0;
  for (graph::NodeId u = 0; u < kNodes; u += 11) {
    Response r;
    engine.execute({.type = RequestType::kSuggest, .user = u, .limit = 10}, r);
    ASSERT_EQ(r.status, ServeStatus::kOk) << u;
    const Decoded d = decode(r);
    EXPECT_LE(d.entries.size(), 10u) << u;
    EXPECT_EQ(d.entries.size(), std::min<std::uint64_t>(10, d.found)) << u;
    if (!d.entries.empty()) ++non_empty;
    const std::vector<graph::NodeId> friends = [&] {
      std::vector<graph::NodeId> out;
      NeighborScan scan = view().out_scan(u);
      graph::NodeId v = 0;
      while (scan.next(v)) out.push_back(v);
      return out;
    }();
    for (std::size_t i = 0; i < d.entries.size(); ++i) {
      const Entry& e = d.entries[i];
      EXPECT_LT(e.node, kNodes) << u;
      EXPECT_NE(e.node, u) << "self-suggestion";
      EXPECT_FALSE(std::binary_search(friends.begin(), friends.end(), e.node))
          << "suggested an existing friend of " << u;
      EXPECT_GE(e.common, 1u) << u;
      EXPECT_LE(e.recip_milli, 1000u) << u;
      if (i > 0) {
        // Ranking is the total order (aa desc, cn desc, id asc).
        const Entry& prev = d.entries[i - 1];
        const bool ordered =
            prev.aa_micro > e.aa_micro ||
            (prev.aa_micro == e.aa_micro &&
             (prev.common > e.common ||
              (prev.common == e.common && prev.node < e.node)));
        EXPECT_TRUE(ordered) << "rank order broken at " << u << "#" << i;
      }
    }
    // Cost: 1 dispatch + 1 per expanded neighbor + 1 per scanned edge +
    // 1 per emission. scanned alone is a lower bound witness.
    EXPECT_GE(r.cost, 1 + d.scanned + d.entries.size()) << u;
  }
  EXPECT_GT(non_empty, 10u) << "dataset produced almost no suggestions";
}

TEST_F(SuggestStandard, BitIdenticalAcrossIntersectKernelVariants) {
  const RequestEngine engine(&view());
  const auto requests = batch();
  std::vector<Response> want(requests.size());
  algo::set_default_intersect_kernel(algo::IntersectKernel::kScalar);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    engine.execute(requests[i], want[i]);
  }
  const algo::IntersectKernel variants[] = {
      algo::IntersectKernel::kGalloping, algo::IntersectKernel::kSse,
      algo::IntersectKernel::kAvx2, algo::IntersectKernel::kBitset,
      algo::IntersectKernel::kAuto,
  };
  for (const algo::IntersectKernel kernel : variants) {
    algo::set_default_intersect_kernel(kernel);
    const auto name = std::string(algo::intersect_kernel_name(kernel));
    for (std::size_t i = 0; i < requests.size(); ++i) {
      Response got;
      engine.execute(requests[i], got);
      EXPECT_EQ(got.status, want[i].status) << name << " slot " << i;
      EXPECT_EQ(got.flags, want[i].flags) << name << " slot " << i;
      EXPECT_EQ(got.cost, want[i].cost) << name << " slot " << i;
      ASSERT_EQ(got.payload, want[i].payload) << name << " slot " << i;
    }
  }
  algo::set_default_intersect_kernel(algo::IntersectKernel::kAuto);
}

TEST_F(SuggestStandard, BitIdenticalAcrossSnapshotFormats) {
  const SnapshotView flat(v2().bytes());
  const SnapshotView compressed(v3().bytes());
  ASSERT_TRUE(compressed.adjacency_compressed());
  const RequestEngine want_engine(&flat);
  const RequestEngine v3_engine(&compressed);

  const auto path = std::filesystem::temp_directory_path() /
                    ("gplus_suggest_mmap_" + std::to_string(::getpid()) +
                     ".snap");
  save_snapshot(v3(), path);
  {
    MappedSnapshot mapped(path);
    const RequestEngine mmap_engine(&mapped.view());
    for (const Request& q : batch()) {
      Response want;
      Response from_v3;
      Response from_mmap;
      want_engine.execute(q, want);
      v3_engine.execute(q, from_v3);
      mmap_engine.execute(q, from_mmap);
      EXPECT_EQ(from_v3.status, want.status);
      EXPECT_EQ(from_v3.flags, want.flags);
      EXPECT_EQ(from_v3.cost, want.cost);
      ASSERT_EQ(from_v3.payload, want.payload) << "v3 diverged, user " << q.user;
      EXPECT_EQ(from_mmap.status, want.status);
      ASSERT_EQ(from_mmap.payload, want.payload)
          << "mmap diverged, user " << q.user;
    }
  }
  std::filesystem::remove(path);
}

TEST_F(SuggestStandard, DeadlinePartialsTruncateCleanly) {
  const RequestEngine engine(&view());
  // Pick a user with a real 2-hop neighborhood.
  graph::NodeId user = 0;
  Decoded full;
  Response full_response;
  for (graph::NodeId u = 0; u < kNodes; ++u) {
    engine.execute({.type = RequestType::kSuggest, .user = u, .limit = 50},
                   full_response);
    full = decode(full_response);
    if (full.entries.size() >= 5) {
      user = u;
      break;
    }
  }
  ASSERT_GE(full.entries.size(), 5u) << "no user with 5+ suggestions";

  bool saw_partial = false;
  for (std::uint32_t budget = 2; budget < 60; ++budget) {
    Response r;
    engine.execute({.type = RequestType::kSuggest,
                    .user = user,
                    .limit = 50,
                    .cost_budget = budget},
                   r);
    // The meter charges then reports exhaustion, so the final unit may
    // land one past the budget — never more.
    EXPECT_LE(r.cost, std::uint64_t{budget} + 1) << "spent past the budget";
    const Decoded d = decode(r);
    if (r.status == ServeStatus::kOk) {
      EXPECT_EQ(r.flags & kResponsePartial, 0);
      continue;
    }
    ASSERT_EQ(r.status, ServeStatus::kDeadlineExceeded) << budget;
    EXPECT_NE(r.flags & kResponsePartial, 0) << budget;
    saw_partial = true;
    // Whatever was emitted must be a prefix of the full ranking whenever
    // the candidate walk itself completed (found matches); a truncated
    // walk still emits well-formed, internally-ranked entries (decode
    // asserted the layout).
    if (d.found == full.found) {
      ASSERT_LE(d.entries.size(), full.entries.size());
      for (std::size_t i = 0; i < d.entries.size(); ++i) {
        EXPECT_EQ(d.entries[i].node, full.entries[i].node) << budget;
        EXPECT_EQ(d.entries[i].aa_micro, full.entries[i].aa_micro) << budget;
      }
    }
  }
  EXPECT_TRUE(saw_partial);
}

TEST_F(SuggestStandard, LimitAndErrorSemantics) {
  const RequestEngine engine(&view());
  Response r;
  // limit = 0 -> the engine cap (50).
  engine.execute({.type = RequestType::kSuggest, .user = 3}, r);
  ASSERT_EQ(r.status, ServeStatus::kOk);
  const Decoded d = decode(r);
  EXPECT_EQ(d.entries.size(),
            std::min<std::uint64_t>(engine.config().suggest_cap, d.found));
  // limit > cap -> invalid request.
  engine.execute(
      {.type = RequestType::kSuggest, .user = 3, .limit = 10'000}, r);
  EXPECT_EQ(r.status, ServeStatus::kInvalidRequest);
  // Out-of-range user -> invalid node.
  engine.execute({.type = RequestType::kSuggest,
                  .user = static_cast<graph::NodeId>(kNodes),
                  .limit = 5},
                 r);
  EXPECT_EQ(r.status, ServeStatus::kInvalidNode);
}

TEST_F(SuggestStandard, ResponsesAreCached) {
  ServerConfig config;
  QueryServer server(&view(), config);
  const Request q{.type = RequestType::kSuggest, .user = 42, .limit = 10};
  std::vector<Response> responses;
  ASSERT_EQ(server.submit(q), ServeStatus::kOk);
  server.drain(responses);
  ASSERT_EQ(responses.size(), 1u);
  const Response first = responses[0];
  const auto misses = server.stats_snapshot().cache.misses;
  ASSERT_EQ(server.submit(q), ServeStatus::kOk);
  server.drain(responses);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_GT(server.stats_snapshot().cache.hits, 0u);
  EXPECT_EQ(server.stats_snapshot().cache.misses, misses);
  EXPECT_EQ(responses[0].payload, first.payload);
  EXPECT_EQ(responses[0].status, first.status);
}

TEST_F(SuggestStandard, WorkloadChecksumLaneInvariant) {
  const auto run = [&] {
    ServerConfig config;
    QueryServer server(&view(), config);
    WorkloadConfig workload;
    workload.mix = WorkloadMix::suggest();
    workload.seed = 5;
    workload.clients = 32;
    workload.requests = 5'000;
    workload.measure_latency = false;
    return run_closed_loop(server, workload);
  };
  core::set_thread_count(1);
  const auto serial = run();
  core::set_thread_count(0);
  const auto threaded = run();
  EXPECT_EQ(serial.checksum, threaded.checksum);
  EXPECT_EQ(serial.response_bytes, threaded.response_bytes);
  EXPECT_EQ(serial.served, threaded.served);
}

}  // namespace
}  // namespace gplus::serve
