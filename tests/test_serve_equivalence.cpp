// Serving-layer extension of the parallel-runtime equivalence gauntlet
// (test_parallel_equivalence.cpp): the same seeded closed-loop workload
// must produce identical response payloads AND identical final
// cache/counter state at 1 lane and at N lanes. The CTest ".threads1"
// variant re-runs every case under GPLUS_THREADS=1, covering the serial
// fallback end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "core/dataset.h"
#include "core/parallel.h"
#include "serve/snapshot.h"
#include "serve/workload.h"

namespace gplus::serve {
namespace {

const core::Dataset& dataset() {
  static const core::Dataset instance = core::make_standard_dataset(4000, 21);
  return instance;
}

const SnapshotView& view() {
  static const SnapshotBuffer snapshot = build_snapshot(dataset());
  static const SnapshotView instance{snapshot.bytes()};
  return instance;
}

struct RunResult {
  std::vector<Response> responses;
  LoadReport report;
};

// Runs the workload collecting the *full* response stream (not just the
// checksum) by draining through a dedicated server.
RunResult run_workload(const WorkloadMix& mix, std::size_t queue_capacity,
                       std::uint64_t requests) {
  ServerConfig config;
  config.queue_capacity = queue_capacity;
  config.cache_capacity = 512;  // small: force evictions into the comparison
  config.cache_shards = 4;
  QueryServer server(&view(), config);
  WorkloadConfig workload;
  workload.mix = mix;
  workload.seed = 99;
  workload.clients = 64;
  workload.requests = requests;
  workload.measure_latency = false;
  RunResult result;
  result.report = run_closed_loop(server, workload);
  return result;
}

class ServeEquivalence : public ::testing::TestWithParam<std::size_t> {
 protected:
  void TearDown() override { core::set_thread_count(0); }
};

TEST_P(ServeEquivalence, WorkloadBitIdenticalAcrossLaneCounts) {
  for (const auto& [name, mix] :
       {std::pair{"degree-profile", WorkloadMix::degree_profile()},
        std::pair{"mixed", WorkloadMix::mixed()},
        std::pair{"path", WorkloadMix::path()}}) {
    core::set_thread_count(1);
    const auto base = run_workload(mix, 4096, 20'000);
    core::set_thread_count(GetParam());
    const auto got = run_workload(mix, 4096, 20'000);

    EXPECT_EQ(base.report.checksum, got.report.checksum) << name;
    EXPECT_EQ(base.report.response_bytes, got.report.response_bytes) << name;
    EXPECT_EQ(base.report.served, got.report.served) << name;
    EXPECT_EQ(base.report.rejected, got.report.rejected) << name;
    // Final cache/counter state: the determinism contract covers it too.
    EXPECT_EQ(base.report.server.cache.hits, got.report.server.cache.hits)
        << name;
    EXPECT_EQ(base.report.server.cache.misses, got.report.server.cache.misses)
        << name;
    EXPECT_EQ(base.report.server.cache.evictions,
              got.report.server.cache.evictions)
        << name;
    EXPECT_EQ(base.report.server.cache.entries, got.report.server.cache.entries)
        << name;
    EXPECT_EQ(base.report.server.per_type, got.report.server.per_type) << name;
  }
}

TEST_P(ServeEquivalence, OverloadedQueueStaysDeterministic) {
  // Queue smaller than the client count: every round rejects, and the
  // rejection pattern (hence the full stream) must not depend on lanes.
  core::set_thread_count(1);
  const auto base = run_workload(WorkloadMix::degree_profile(), 48, 10'000);
  core::set_thread_count(GetParam());
  const auto got = run_workload(WorkloadMix::degree_profile(), 48, 10'000);
  EXPECT_GT(base.report.rejected, 0u);
  EXPECT_EQ(base.report.checksum, got.report.checksum);
  EXPECT_EQ(base.report.rejected, got.report.rejected);
  EXPECT_EQ(base.report.served, got.report.served);
}

TEST_P(ServeEquivalence, DrainPayloadsMatchSerialExecution) {
  // Direct drain-level check: one large mixed batch, slot-by-slot.
  auto run_batch = [&] {
    QueryServer server(&view());
    const auto n = static_cast<graph::NodeId>(view().node_count());
    for (std::uint32_t i = 0; i < 3000; ++i) {
      Request q;
      q.type = static_cast<RequestType>(i % kRequestTypeCount);
      q.user = (i * 37) % n;
      q.target = (i * 101 + 13) % n;
      q.limit = q.type == RequestType::kTopK ? 10 : 0;
      EXPECT_EQ(server.submit(q), ServeStatus::kOk);
    }
    std::vector<Response> responses;
    server.drain(responses);
    return responses;
  };
  core::set_thread_count(1);
  const auto base = run_batch();
  core::set_thread_count(GetParam());
  const auto got = run_batch();
  ASSERT_EQ(base.size(), got.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(base[i].status, got[i].status) << i;
    ASSERT_EQ(base[i].payload, got[i].payload) << i;
  }
}

std::vector<std::size_t> lane_counts() {
  std::vector<std::size_t> lanes{2, 7};
  const std::size_t hw =
      std::max<std::size_t>(2, std::thread::hardware_concurrency());
  if (std::find(lanes.begin(), lanes.end(), hw) == lanes.end()) {
    lanes.push_back(hw);
  }
  return lanes;
}

INSTANTIATE_TEST_SUITE_P(
    Lanes, ServeEquivalence, ::testing::ValuesIn(lane_counts()),
    [](const auto& info) { return "lanes" + std::to_string(info.param); });

}  // namespace
}  // namespace gplus::serve
