#include "crawler/samplers.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "graph/builder.h"

namespace gplus::crawler {
namespace {

using graph::GraphBuilder;
using graph::NodeId;

// Hub-heavy test universe: one celebrity (node 0) mutually linked with 60
// fans; fans also form a mutual ring, so walks can move without the hub.
struct Universe {
  graph::DiGraph graph;
  std::vector<synth::Profile> profiles;

  Universe() {
    GraphBuilder b;
    for (NodeId v = 1; v <= 60; ++v) b.add_reciprocal_edge(0, v);
    for (NodeId v = 1; v <= 60; ++v) {
      b.add_reciprocal_edge(v, v == 60 ? 1 : v + 1);
    }
    graph = b.build();
    profiles.assign(graph.node_count(), synth::Profile{});
  }

  service::SocialService service(service::ServiceConfig config = {}) {
    return service::SocialService(&graph, profiles, config);
  }
};

TEST(Samplers, NamesAreDistinct) {
  std::set<std::string_view> names;
  for (auto kind : {SamplerKind::kBfs, SamplerKind::kRandomWalk,
                    SamplerKind::kMetropolisHastings,
                    SamplerKind::kUniformOracle}) {
    EXPECT_TRUE(names.insert(sampler_name(kind)).second);
  }
}

TEST(Samplers, CollectDistinctUsersUpToTarget) {
  Universe u;
  for (auto kind : {SamplerKind::kBfs, SamplerKind::kRandomWalk,
                    SamplerKind::kMetropolisHastings,
                    SamplerKind::kUniformOracle}) {
    auto svc = u.service();
    SamplerOptions options;
    options.target_users = 20;
    const auto result = sample_users(svc, kind, options);
    EXPECT_EQ(result.users.size(), 20u) << sampler_name(kind);
    std::set<NodeId> distinct(result.users.begin(), result.users.end());
    EXPECT_EQ(distinct.size(), result.users.size()) << sampler_name(kind);
    EXPECT_GT(result.requests, 0u);
    EXPECT_GT(result.mean_in_degree, 0.0);
  }
}

TEST(Samplers, ExhaustiveTargetsStopAtUniverse) {
  Universe u;
  auto svc = u.service();
  SamplerOptions options;
  options.target_users = 10'000;  // more than exists
  options.max_steps = 100'000;
  const auto result = sample_users(svc, SamplerKind::kUniformOracle, options);
  EXPECT_EQ(result.users.size(), u.graph.node_count());
}

TEST(Samplers, BfsVisitsSeedFirst) {
  Universe u;
  auto svc = u.service();
  SamplerOptions options;
  options.seed_node = 5;
  options.target_users = 10;
  const auto result = sample_users(svc, SamplerKind::kBfs, options);
  ASSERT_FALSE(result.users.empty());
  EXPECT_EQ(result.users.front(), 5u);
}

TEST(Samplers, RandomWalkOversamplesTheHub) {
  // The hub (degree 60) should enter a small RW sample almost surely and
  // lift the sample's mean degree above the population's.
  Universe u;
  auto svc = u.service();
  SamplerOptions options;
  options.seed_node = 7;
  options.target_users = 15;
  options.teleport = 0.0;
  const auto rw = sample_users(svc, SamplerKind::kRandomWalk, options);
  double truth_mean = 0.0;
  for (NodeId v = 0; v < u.graph.node_count(); ++v) {
    truth_mean += static_cast<double>(u.graph.in_degree(v));
  }
  truth_mean /= static_cast<double>(u.graph.node_count());
  EXPECT_GT(rw.mean_in_degree, truth_mean);
}

TEST(Samplers, MhrwSuppressesHubVisitsVersusRandomWalk) {
  // A fan's neighbor list is {hub, ring-left, ring-right}: the raw walk
  // steps onto the hub with probability 1/3, while MHRW accepts the hub
  // proposal only with probability deg(fan)/deg(hub) = 6/120. Over many
  // short runs, the hub should appear in far fewer MHRW samples.
  Universe u;
  int rw_hub = 0, mh_hub = 0;
  constexpr int kRuns = 25;
  for (int run = 0; run < kRuns; ++run) {
    SamplerOptions options;
    options.seed_node = 3;
    options.target_users = 6;
    options.teleport = 0.0;
    options.rng_seed = 1000 + static_cast<std::uint64_t>(run);
    auto contains_hub = [](const SampleResult& r) {
      for (NodeId v : r.users) {
        if (v == 0) return true;
      }
      return false;
    };
    auto svc1 = u.service();
    rw_hub += contains_hub(sample_users(svc1, SamplerKind::kRandomWalk, options));
    auto svc2 = u.service();
    mh_hub += contains_hub(
        sample_users(svc2, SamplerKind::kMetropolisHastings, options));
  }
  EXPECT_GT(rw_hub, mh_hub + kRuns / 4);
}

TEST(Samplers, HiddenListsForceRestarts) {
  Universe u;
  service::ServiceConfig sconfig;
  sconfig.hidden_list_fraction = 1.0;  // every walk step dead-ends
  auto svc = u.service(sconfig);
  SamplerOptions options;
  options.target_users = 5;
  options.max_steps = 500;
  const auto result = sample_users(svc, SamplerKind::kRandomWalk, options);
  // Restarts only reach already-seen users, so the walk stays at the seed.
  EXPECT_EQ(result.users.size(), 1u);
  EXPECT_EQ(result.steps, 500u);
}

TEST(Samplers, RejectsBadOptions) {
  Universe u;
  auto svc = u.service();
  SamplerOptions bad_seed;
  bad_seed.seed_node = 10'000;
  EXPECT_THROW(sample_users(svc, SamplerKind::kBfs, bad_seed),
               std::invalid_argument);
  SamplerOptions zero_target;
  zero_target.target_users = 0;
  EXPECT_THROW(sample_users(svc, SamplerKind::kBfs, zero_target),
               std::invalid_argument);
  SamplerOptions bad_teleport;
  bad_teleport.teleport = 1.5;
  EXPECT_THROW(sample_users(svc, SamplerKind::kRandomWalk, bad_teleport),
               std::invalid_argument);
}

TEST(Samplers, DeterministicForSameSeed) {
  Universe u;
  SamplerOptions options;
  options.target_users = 12;
  options.rng_seed = 5;
  auto svc1 = u.service();
  const auto a = sample_users(svc1, SamplerKind::kMetropolisHastings, options);
  auto svc2 = u.service();
  const auto b = sample_users(svc2, SamplerKind::kMetropolisHastings, options);
  EXPECT_EQ(a.users, b.users);
  EXPECT_EQ(a.steps, b.steps);
}

}  // namespace
}  // namespace gplus::crawler
