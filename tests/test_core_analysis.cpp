#include "core/analysis.h"

#include <gtest/gtest.h>

#include "core/reference.h"
#include "core/table.h"

namespace gplus::core {
namespace {

// One shared dataset for all node-level analyses (generation is the
// expensive part; 50k users keeps the cohort statistics meaningful).
class CoreAnalysisTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ds_ = new Dataset(make_standard_dataset(50'000, 42));
  }
  static void TearDownTestSuite() {
    delete ds_;
    ds_ = nullptr;
  }
  static Dataset* ds_;
};

Dataset* CoreAnalysisTest::ds_ = nullptr;

TEST_F(CoreAnalysisTest, TopUsersAreRankedAndMostlyCelebrities) {
  const auto top = top_users(*ds_, 20);
  ASSERT_EQ(top.size(), 20u);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].in_degree, top[i].in_degree);
  }
  std::size_t celebs = 0;
  for (const auto& u : top) celebs += u.celebrity;
  // The audience model concentrates the top list on designated celebrities.
  EXPECT_GE(celebs, 15u);
  EXPECT_FALSE(top[0].name.empty());
}

TEST_F(CoreAnalysisTest, TopListIsItHeavyLikeTable1) {
  const auto top = top_users(*ds_, 20);
  // Paper: 7 of 20 are IT people — far above the ~7% an occupation would
  // get uniformly. Accept a generous band around 0.35.
  const double it = it_fraction(top);
  EXPECT_GE(it, 0.15);
  EXPECT_LT(it, 0.65);
}

TEST_F(CoreAnalysisTest, ItFractionEdgeCases) {
  EXPECT_DOUBLE_EQ(it_fraction({}), 0.0);
  std::vector<TopUser> two(2);
  two[0].occupation = synth::Occupation::kInformationTech;
  two[1].occupation = synth::Occupation::kMusician;
  EXPECT_DOUBLE_EQ(it_fraction(two), 0.5);
}

TEST_F(CoreAnalysisTest, AttributeAvailabilityMatchesTable2Order) {
  const auto table = attribute_availability(*ds_);
  ASSERT_EQ(table.size(), synth::kAttributeCount);
  // Name leads with 100%.
  EXPECT_EQ(table[0].attribute, synth::Attribute::kName);
  EXPECT_DOUBLE_EQ(table[0].fraction, 1.0);
  // Sorted descending.
  for (std::size_t i = 1; i < table.size(); ++i) {
    EXPECT_GE(table[i - 1].available, table[i].available);
  }
  // Gender second (97.7%), contact fields last (~0.2%).
  EXPECT_EQ(table[1].attribute, synth::Attribute::kGender);
  EXPECT_NEAR(table[1].fraction, 0.9767, 0.02);
  const auto& last = table.back();
  EXPECT_TRUE(last.attribute == synth::Attribute::kWorkContact ||
              last.attribute == synth::Attribute::kHomeContact);
  EXPECT_LT(last.fraction, 0.01);
}

TEST_F(CoreAnalysisTest, CohortBreakdownAllUsers) {
  const auto all = cohort_breakdown(*ds_, false);
  EXPECT_EQ(all.total, ds_->user_count());
  EXPECT_NEAR(all.gender_share[0], 0.6765, 0.02);   // male
  EXPECT_NEAR(all.gender_share[1], 0.3146, 0.02);   // female
  EXPECT_NEAR(all.relationship_share[0], 0.4282, 0.05);  // single
  // Location rows: US ~31%, India ~17%.
  EXPECT_NEAR(all.location_share[0], 0.3138, 0.04);
  EXPECT_NEAR(all.location_share[1], 0.1671, 0.04);
  double loc_total = 0.0;
  for (double s : all.location_share) loc_total += s;
  EXPECT_NEAR(loc_total, 1.0, 1e-9);
}

TEST_F(CoreAnalysisTest, TelCohortSkewsMatchTable3) {
  const auto all = cohort_breakdown(*ds_, false);
  const auto tel = cohort_breakdown(*ds_, true);
  ASSERT_GT(tel.total, 20u);
  EXPECT_LT(tel.total, all.total / 50);  // rare cohort
  // Male share higher among tel-users; India over-represented; the US
  // under-represented.
  EXPECT_GT(tel.gender_share[0], all.gender_share[0]);
  EXPECT_GT(tel.location_share[1], all.location_share[1] * 1.2);
  EXPECT_LT(tel.location_share[0], all.location_share[0]);
}

TEST_F(CoreAnalysisTest, FieldsSharedCcdfTelDominates) {
  const auto all = fields_shared_ccdf(*ds_, false);
  const auto tel = fields_shared_ccdf(*ds_, true);
  ASSERT_FALSE(all.empty());
  ASSERT_FALSE(tel.empty());
  // Fig 2 comparison at 6 fields: 10% of all users vs 66% of tel-users
  // share more than six.
  const double all_at_7 = stats::evaluate_step(all, 6.999);
  auto ccdf_at = [](const std::vector<stats::CurvePoint>& curve, double x) {
    double y = 0.0;
    for (const auto& p : curve) {
      if (p.x >= x) return p.y;
      y = p.y;
    }
    return y;
  };
  const double all_over_6 = ccdf_at(all, 7.0);
  const double tel_over_6 = ccdf_at(tel, 7.0);
  EXPECT_GT(tel_over_6, all_over_6 + 0.2);
  (void)all_at_7;
}

TEST_F(CoreAnalysisTest, StructuralSummaryInPaperBands) {
  stats::Rng rng(1);
  const auto s = structural_summary(ds_->graph(), 150, rng);
  EXPECT_EQ(s.nodes, ds_->user_count());
  EXPECT_GT(s.mean_degree, 12.0);
  EXPECT_LT(s.mean_degree, 21.0);
  EXPECT_GT(s.reciprocity, 0.25);
  EXPECT_LT(s.reciprocity, 0.45);
  EXPECT_GT(s.giant_scc_fraction, 0.6);
  EXPECT_LT(s.giant_scc_fraction, 0.9);
  EXPECT_GT(s.path_length, 2.0);
  EXPECT_LT(s.path_length, 8.0);
  EXPECT_GE(s.diameter_lower_bound, 5u);
  EXPECT_NEAR(s.in_alpha, 1.3, 0.35);
  EXPECT_NEAR(s.out_alpha, 1.2, 0.35);
}

TEST_F(CoreAnalysisTest, OccupationsByCountryShape) {
  const auto table = occupations_by_country(*ds_, 10);
  ASSERT_EQ(table.size(), 10u);
  // First row is the US, Jaccard with itself = 1.
  EXPECT_EQ(geo::country(table[0].country).code, "US");
  EXPECT_DOUBLE_EQ(table[0].jaccard_vs_us, 1.0);
  for (const auto& row : table) {
    EXPECT_LE(row.occupations.size(), 10u);
    EXPECT_GE(row.jaccard_vs_us, 0.0);
    EXPECT_LE(row.jaccard_vs_us, 1.0);
  }
}

TEST(StructuralSummary, RejectsZeroSources) {
  const auto ds = make_standard_dataset(2000, 1);
  stats::Rng rng(2);
  EXPECT_THROW(structural_summary(ds.graph(), 0, rng), std::invalid_argument);
}

TEST(Reference, Table4RowsAsPrinted) {
  const auto rows = reference_networks();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].name, "Google+");
  EXPECT_DOUBLE_EQ(rows[0].path_length, 5.9);
  EXPECT_DOUBLE_EQ(rows[0].reciprocity, 0.32);
  EXPECT_EQ(rows[0].diameter, 19);
  EXPECT_EQ(rows[1].name, "Facebook");
  EXPECT_DOUBLE_EQ(rows[1].reciprocity, 1.0);
  EXPECT_EQ(rows[2].name, "Twitter");
  EXPECT_DOUBLE_EQ(rows[2].reciprocity, 0.221);
  EXPECT_FALSE(rows[3].mean_in_degree.has_value());  // Orkut: not reported
  EXPECT_EQ(&google_plus_reference(), &rows[0]);
}

TEST(Reference, PaperConstantsConsistent) {
  const auto& c = paper_constants();
  EXPECT_GT(c.gplus_reciprocity, c.twitter_reciprocity);
  EXPECT_GT(c.directed_mean_path, c.undirected_mean_path);
  EXPECT_GT(c.directed_diameter, c.undirected_diameter);
  EXPECT_LT(c.tel_user_fraction, 0.01);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"Rank", "Name"});
  t.add_row({"1", "Larry Page"});
  t.add_row({"2", "Mark Zuckerberg"});
  const auto s = t.str();
  EXPECT_NE(s.find("Rank"), std::string::npos);
  EXPECT_NE(s.find("Larry Page"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, PadsMissingAndRejectsExtraCells) {
  TextTable t({"A", "B"});
  t.add_row({"only"});
  EXPECT_NO_THROW(t.str());
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(Formatting, Helpers) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_percent(0.3138), "31.38%");
  EXPECT_EQ(fmt_percent(1.0, 0), "100%");
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(27'556'390), "27,556,390");
  EXPECT_EQ(fmt_count(575'141'097), "575,141,097");
}

}  // namespace
}  // namespace gplus::core
