#include "core/geo_analysis.h"

#include <gtest/gtest.h>

#include <set>

#include "stats/descriptive.h"

namespace gplus::core {
namespace {

class GeoAnalysisTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ds_ = new Dataset(make_standard_dataset(60'000, 42));
  }
  static void TearDownTestSuite() {
    delete ds_;
    ds_ = nullptr;
  }
  static Dataset* ds_;
};

Dataset* GeoAnalysisTest::ds_ = nullptr;

TEST_F(GeoAnalysisTest, LocatedFractionNearPaper) {
  std::size_t located = 0;
  for (graph::NodeId u = 0; u < ds_->user_count(); ++u) {
    located += ds_->located(u);
  }
  // Paper: 26.75% of users share "places lived".
  EXPECT_NEAR(static_cast<double>(located) / ds_->user_count(), 0.2675, 0.04);
}

TEST_F(GeoAnalysisTest, CountrySharesMatchFig6) {
  const auto shares = located_country_shares(*ds_);
  ASSERT_FALSE(shares.empty());
  // US first with ~31%, India second with ~17%.
  EXPECT_EQ(geo::country(shares[0].country).code, "US");
  EXPECT_NEAR(shares[0].fraction, 0.3138, 0.05);
  EXPECT_EQ(geo::country(shares[1].country).code, "IN");
  EXPECT_NEAR(shares[1].fraction, 0.1671, 0.05);
  // Named-country fractions are sorted descending and leave the "Other"
  // long-tail mass (the ZZ aggregate) out of the ranking, as Fig 6 does.
  double total = 0.0;
  for (std::size_t i = 0; i < shares.size(); ++i) {
    total += shares[i].fraction;
    if (i > 0) EXPECT_GE(shares[i - 1].users, shares[i].users);
    EXPECT_FALSE(geo::country(shares[i].country).aggregate);
  }
  EXPECT_GT(total, 0.7);
  EXPECT_LT(total, 1.0);
}

TEST_F(GeoAnalysisTest, PaperTopTenEmergesInOrderOfMagnitude) {
  // Every paper top-10 country must outrank every named tail country.
  const auto shares = located_country_shares(*ds_);
  std::set<std::string_view> top10_codes;
  for (auto c : geo::paper_top10()) top10_codes.insert(geo::country(c).code);
  for (std::size_t i = 0; i < 10 && i < shares.size(); ++i) {
    EXPECT_TRUE(top10_codes.contains(geo::country(shares[i].country).code))
        << "rank " << i << " is " << geo::country(shares[i].country).code;
  }
}

TEST_F(GeoAnalysisTest, PenetrationIndiaTopsUs) {
  const auto points = penetration_by_country(*ds_);
  ASSERT_FALSE(points.empty());
  // Fig 7a: India has the highest Google+ penetration rate; the US sits
  // well below despite its larger user count.
  double india_gpr = 0.0, us_gpr = 0.0;
  for (const auto& p : points) {
    const auto code = geo::country(p.country).code;
    if (code == "IN") india_gpr = p.gpr;
    if (code == "US") us_gpr = p.gpr;
  }
  EXPECT_GT(india_gpr, us_gpr);
  EXPECT_DOUBLE_EQ(points[0].gpr_relative, 1.0);  // normalized leader
  // Sorted descending by GPR.
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i - 1].gpr, points[i].gpr);
  }
}

TEST_F(GeoAnalysisTest, IprTracksGdpButGprDoesNot) {
  // Fig 7b: IPR and GDP per capita are nearly linear; Fig 7a: GPR is not.
  const auto points = penetration_by_country(*ds_);
  std::vector<double> gdp, ipr;
  for (const auto& p : points) {
    gdp.push_back(p.gdp_per_capita);
    ipr.push_back(p.ipr);
  }
  EXPECT_GT(stats::pearson_correlation(gdp, ipr), 0.6);
}

TEST_F(GeoAnalysisTest, CountryFieldsCcdfStartsAtTwo) {
  const auto us = *geo::find_country("US");
  const auto curve = country_fields_ccdf(*ds_, us);
  ASSERT_FALSE(curve.empty());
  // Located users share at least Name + Places lived.
  EXPECT_GE(curve.front().x, 2.0);
  EXPECT_DOUBLE_EQ(curve.front().y, 1.0);
}

TEST_F(GeoAnalysisTest, OpennessOrderingIndonesiaVsGermany) {
  const auto id_curve = country_fields_ccdf(*ds_, *geo::find_country("ID"));
  const auto de_curve = country_fields_ccdf(*ds_, *geo::find_country("DE"));
  ASSERT_FALSE(id_curve.empty());
  ASSERT_FALSE(de_curve.empty());
  auto over = [](const std::vector<stats::CurvePoint>& c, double x) {
    double y = 0.0;
    for (const auto& p : c) {
      if (p.x > x) return y;
      y = p.y;
    }
    return y;
  };
  // Fig 8: Indonesians share more fields than Germans.
  EXPECT_GT(over(id_curve, 6.0), over(de_curve, 6.0));
}

TEST_F(GeoAnalysisTest, PathMilesFriendsCloserThanRandom) {
  stats::Rng rng(3);
  const auto samples = sample_path_miles(*ds_, 20'000, rng);
  ASSERT_GT(samples.friends.size(), 1000u);
  ASSERT_GT(samples.reciprocal.size(), 500u);
  ASSERT_GT(samples.random.size(), 1000u);

  const double friends_mean = stats::mean(samples.friends);
  const double recip_mean = stats::mean(samples.reciprocal);
  const double random_mean = stats::mean(samples.random);
  // Fig 9a ordering: reciprocal <= friends < random.
  EXPECT_LT(friends_mean, random_mean * 0.8);
  EXPECT_LE(recip_mean, friends_mean * 1.05);

  // Paper: ~58% of friend pairs within 1,000 miles; band is generous.
  std::size_t close = 0;
  for (double d : samples.friends) close += d < 1000.0;
  EXPECT_GT(static_cast<double>(close) / samples.friends.size(), 0.45);
}

TEST_F(GeoAnalysisTest, PathMilesByCountryCoversTop10) {
  const auto rows = path_miles_by_country(*ds_);
  ASSERT_EQ(rows.size(), 10u);
  for (const auto& row : rows) {
    EXPECT_GT(row.edges, 0u) << geo::country(row.country).code;
    EXPECT_GE(row.mean_miles, 0.0);
    EXPECT_GE(row.stddev_miles, 0.0);
  }
  // Small countries are not systematically shorter (paper's negative
  // finding): the UK's mean exceeds a tenth of the US's.
  double us_mean = 0.0, gb_mean = 0.0;
  for (const auto& row : rows) {
    const auto code = geo::country(row.country).code;
    if (code == "US") us_mean = row.mean_miles;
    if (code == "GB") gb_mean = row.mean_miles;
  }
  EXPECT_GT(gb_mean, us_mean * 0.1);
}

TEST_F(GeoAnalysisTest, CountryLinkGraphMatchesFig10Patterns) {
  const auto graph = country_link_graph(*ds_);
  ASSERT_EQ(graph.countries.size(), 10u);
  ASSERT_EQ(graph.weight.size(), 10u);

  std::size_t us = 0, gb = 0, in = 0, br = 0, ca = 0;
  for (std::size_t i = 0; i < graph.countries.size(); ++i) {
    const auto code = geo::country(graph.countries[i]).code;
    if (code == "US") us = i;
    if (code == "GB") gb = i;
    if (code == "IN") in = i;
    if (code == "BR") br = i;
    if (code == "CA") ca = i;
  }
  // Rows sum to at most 1 (mass to non-top-10 countries is dropped).
  for (const auto& row : graph.weight) {
    double total = 0.0;
    for (double w : row) {
      EXPECT_GE(w, 0.0);
      total += w;
    }
    EXPECT_LE(total, 1.0 + 1e-9);
  }
  // Inward-looking: US/IN/BR self-loops ~0.75+; outward: GB/CA ~0.3.
  EXPECT_GT(graph.self_loop(us), 0.65);
  EXPECT_GT(graph.self_loop(in), 0.6);
  EXPECT_GT(graph.self_loop(br), 0.6);
  EXPECT_LT(graph.self_loop(gb), 0.5);
  EXPECT_LT(graph.self_loop(ca), 0.5);
  // GB's largest foreign destination is the US.
  for (std::size_t j = 0; j < graph.countries.size(); ++j) {
    if (j == gb || j == us) continue;
    EXPECT_GE(graph.weight[gb][us], graph.weight[gb][j]);
  }
}

TEST(GeoAnalysis, PathMilesRejectsZeroBudget) {
  const auto ds = make_standard_dataset(2000, 1);
  stats::Rng rng(1);
  EXPECT_THROW(sample_path_miles(ds, 0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace gplus::core
