// Sharded serving cluster: splitter invariants, routing-table IO,
// deterministic failover, dark-shard degradation, router backpressure,
// per-replica metric-scope isolation and the scripted kill/recover storm
// (DESIGN.md §13). Answer equivalence against the unsharded engine lives
// in test_cluster_equivalence.cpp.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <vector>

#include "core/dataset.h"
#include "obs/metrics.h"
#include "serve/cluster.h"
#include "serve/snapshot.h"
#include "serve/snapshot_build.h"

namespace gplus::serve {
namespace {

constexpr std::size_t kNodes = 3000;

const core::Dataset& dataset() {
  static const core::Dataset instance = core::make_standard_dataset(kNodes, 17);
  return instance;
}

const SnapshotView& full_view() {
  static const SnapshotBuffer snapshot = build_snapshot(dataset());
  static const SnapshotView instance{snapshot.bytes()};
  return instance;
}

const ShardedSnapshot& sharded4() {
  static const ShardedSnapshot instance = [] {
    ShardingOptions opts;
    opts.shard_count = 4;
    return split_snapshot(full_view(), opts);
  }();
  return instance;
}

std::vector<const SnapshotView*> open_shards(
    const ShardedSnapshot& sharded, std::vector<SnapshotView>& storage) {
  storage.clear();
  storage.reserve(sharded.shards.size());
  for (const auto& shard : sharded.shards) storage.emplace_back(shard.bytes());
  std::vector<const SnapshotView*> ptrs;
  for (const auto& view : storage) ptrs.push_back(&view);
  return ptrs;
}

TEST(ShardSplit, StripeOwnershipIsBalancedAndComplete) {
  const auto& sharded = sharded4();
  ASSERT_EQ(sharded.routing.shard_count, 4u);
  ASSERT_EQ(sharded.routing.node_count(), kNodes);
  EXPECT_EQ(sharding_policy_name(sharded.routing.policy), "rank-stripe");
  std::vector<std::size_t> owned(4, 0);
  for (graph::NodeId u = 0; u < kNodes; ++u) {
    const std::size_t s = sharded.routing.owner_shard(u);
    ASSERT_LT(s, 4u) << u;
    ++owned[s];
  }
  // Round-robin over ranks: shard populations differ by at most one.
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_NEAR(static_cast<double>(owned[s]), kNodes / 4.0, 1.0) << s;
  }
}

TEST(ShardSplit, RangePolicySplitsAndCoversEveryNode) {
  ShardingOptions opts;
  opts.shard_count = 3;
  opts.policy = ShardingPolicy::kRankRange;
  const auto sharded = split_snapshot(full_view(), opts);
  EXPECT_EQ(sharding_policy_name(sharded.routing.policy), "rank-range");
  std::vector<std::size_t> owned(3, 0);
  for (graph::NodeId u = 0; u < kNodes; ++u) {
    ++owned[sharded.routing.owner_shard(u)];
  }
  for (std::size_t s = 0; s < 3; ++s) EXPECT_GT(owned[s], 0u) << s;
}

TEST(ShardSplit, RejectsDegenerateShardCounts) {
  EXPECT_THROW(split_snapshot(full_view(), {.shard_count = 0}),
               std::runtime_error);
  EXPECT_THROW(split_snapshot(full_view(), {.shard_count = 257}),
               std::runtime_error);
  EXPECT_THROW(split_snapshot(full_view(), {.shard_count = kNodes + 1}),
               std::runtime_error);
}

TEST(ShardSplit, OwnedRowsBitEqualTheUnsharded) {
  const auto& full = full_view();
  const auto& sharded = sharded4();
  std::uint64_t edge_sum = 0;
  for (std::size_t s = 0; s < sharded.shards.size(); ++s) {
    const SnapshotView shard(sharded.shards[s].bytes());
    EXPECT_NO_THROW(shard.verify_sections()) << s;
    ASSERT_EQ(shard.node_count(), full.node_count()) << s;
    edge_sum += shard.edge_count();
    for (graph::NodeId u = 0; u < kNodes; ++u) {
      if (sharded.routing.owner_shard(u) != s) continue;
      ASSERT_EQ(shard.out_degree(u), full.out_degree(u)) << "shard " << s;
      ASSERT_EQ(shard.in_degree(u), full.in_degree(u)) << "shard " << s;
      ASSERT_EQ(shard.reciprocal_out_degree(u), full.reciprocal_out_degree(u))
          << "shard " << s;
      const auto& a = shard.profile(u);
      const auto& b = full.profile(u);
      ASSERT_EQ(0, std::memcmp(&a, &b, sizeof(a))) << "shard " << s;
    }
  }
  // Every edge lands in its endpoints' owner shards: stored once when both
  // endpoints share a shard, twice otherwise.
  EXPECT_GE(edge_sum, full.edge_count());
  EXPECT_LE(edge_sum, 2 * full.edge_count());
}

TEST(RoutingTableIO, RoundtripsAndDetectsCorruption) {
  namespace fs = std::filesystem;
  const fs::path path =
      fs::temp_directory_path() / "gplus_test_cluster.routing";
  const auto& table = sharded4().routing;
  save_routing_table(table, path);
  const RoutingTable loaded = load_routing_table(path);
  EXPECT_EQ(loaded.shard_count, table.shard_count);
  EXPECT_EQ(loaded.policy, table.policy);
  EXPECT_EQ(loaded.owner, table.owner);

  // Flip one owner byte: the trailing checksum must catch it.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(32);
    char byte = 0;
    f.seekg(32);
    f.read(&byte, 1);
    byte ^= 0x5A;
    f.seekp(32);
    f.write(&byte, 1);
  }
  EXPECT_THROW(load_routing_table(path), std::runtime_error);
  fs::remove(path);
  EXPECT_THROW(load_routing_table(path), std::runtime_error);
}

// Exhaustive corruption sweep: flip one bit at EVERY byte offset of a
// saved GPROUTE1 table and assert each load fails closed. Detection is
// structural, not probabilistic: magic flips fail the magic check,
// node-count flips fail the size check, and every other flip perturbs
// the trailing FNV-1a (each fold step is a bijection of the running
// hash, so a changed byte can never cancel out).
TEST(RoutingTableIO, EveryByteBitFlipFailsClosed) {
  namespace fs = std::filesystem;
  const fs::path path =
      fs::temp_directory_path() / "gplus_test_cluster_sweep.routing";
  save_routing_table(sharded4().routing, path);

  std::vector<char> pristine;
  {
    std::ifstream in(path, std::ios::binary);
    pristine.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
  }
  ASSERT_GT(pristine.size(), 32u);

  for (std::size_t offset = 0; offset < pristine.size(); ++offset) {
    {
      std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
      char byte = static_cast<char>(pristine[offset] ^ 0x01);
      f.seekp(static_cast<std::streamoff>(offset));
      f.write(&byte, 1);
    }
    EXPECT_THROW(load_routing_table(path), std::runtime_error)
        << "bit flip at offset " << offset << " loaded successfully";
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&pristine[offset], 1);
  }

  // The restored file must load again — the sweep corrupted, not the test.
  EXPECT_NO_THROW(load_routing_table(path));
  fs::remove(path);
}

TEST(ClusterServer, FailoverPicksLowestLiveReplica) {
  std::vector<SnapshotView> storage;
  const auto ptrs = open_shards(sharded4(), storage);
  ClusterConfig config;
  config.replicas = 3;
  ClusterServer cluster(&sharded4().routing, ptrs, config);
  ASSERT_EQ(cluster.shard_count(), 4u);
  ASSERT_EQ(cluster.replicas_per_shard(), 3u);

  Request q;
  q.type = RequestType::kDegree;
  q.user = 7;
  const std::size_t shard = sharded4().routing.owner_shard(q.user);

  auto served_by = [&](std::size_t replica) {
    const auto before = cluster.replica_stats(shard, replica).served;
    EXPECT_EQ(cluster.submit(q), ServeStatus::kOk);
    std::vector<Response> responses;
    cluster.drain(responses);
    EXPECT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].status, ServeStatus::kOk);
    return cluster.replica_stats(shard, replica).served == before + 1;
  };

  EXPECT_TRUE(served_by(0));
  cluster.kill_replica(shard, 0);
  EXPECT_FALSE(cluster.replica_up(shard, 0));
  EXPECT_FALSE(cluster.shard_dark(shard));
  EXPECT_TRUE(served_by(1));
  cluster.kill_replica(shard, 1);
  EXPECT_TRUE(served_by(2));
  cluster.recover_replica(shard, 0);
  EXPECT_TRUE(served_by(0));
}

TEST(ClusterServer, KillWithPendingRequestsIsRefused) {
  std::vector<SnapshotView> storage;
  const auto ptrs = open_shards(sharded4(), storage);
  ClusterServer cluster(&sharded4().routing, ptrs);
  Request q;
  q.type = RequestType::kDegree;
  q.user = 1;
  ASSERT_EQ(cluster.submit(q), ServeStatus::kOk);
  EXPECT_EQ(cluster.queued(), 1u);
  EXPECT_THROW(cluster.kill_replica(0, 0), std::logic_error);
  std::vector<Response> responses;
  cluster.drain(responses);
  EXPECT_NO_THROW(cluster.kill_replica(0, 0));
  cluster.recover_replica(0, 0);
}

TEST(ClusterServer, DarkShardDegradesExplicitly) {
  std::vector<SnapshotView> storage;
  const auto ptrs = open_shards(sharded4(), storage);
  ClusterServer cluster(&sharded4().routing, ptrs);  // replicas = 1
  const std::size_t dark = 2;
  cluster.kill_replica(dark, 0);
  ASSERT_TRUE(cluster.shard_dark(dark));

  graph::NodeId owned_by_dark = 0;
  while (sharded4().routing.owner_shard(owned_by_dark) != dark) {
    ++owned_by_dark;
  }

  // Single-shard family on the dark shard: terminal kUnavailable, flagged.
  Request profile;
  profile.type = RequestType::kGetProfile;
  profile.user = owned_by_dark;
  ASSERT_EQ(cluster.submit(profile), ServeStatus::kOk);

  // TopK degrades to a best-effort merge over the live shards.
  Request topk;
  topk.type = RequestType::kTopK;
  topk.limit = 10;
  ASSERT_EQ(cluster.submit(topk), ServeStatus::kOk);

  std::vector<Response> responses;
  cluster.drain(responses);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].status, ServeStatus::kUnavailable);
  EXPECT_NE(responses[0].flags & kResponseShardDark, 0);
  EXPECT_EQ(responses[1].status, ServeStatus::kOk);
  EXPECT_NE(responses[1].flags & kResponseShardDark, 0);
  EXPECT_FALSE(responses[1].payload.empty());
  EXPECT_GE(cluster.stats_snapshot().dark_answers, 2u);

  // Recovery restores the unsharded answers (no dark flag).
  cluster.recover_replica(dark, 0);
  ASSERT_EQ(cluster.submit(profile), ServeStatus::kOk);
  ASSERT_EQ(cluster.submit(topk), ServeStatus::kOk);
  cluster.drain(responses);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].status, ServeStatus::kOk);
  EXPECT_EQ(responses[0].flags & kResponseShardDark, 0);
  EXPECT_EQ(responses[1].status, ServeStatus::kOk);
  EXPECT_EQ(responses[1].flags & kResponseShardDark, 0);
}

TEST(ClusterServer, RouterQueueBoundsScatterAdmission) {
  std::vector<SnapshotView> storage;
  const auto ptrs = open_shards(sharded4(), storage);
  ClusterConfig config;
  config.router_queue_capacity = 8;
  ClusterServer cluster(&sharded4().routing, ptrs, config);
  Request topk;
  topk.type = RequestType::kTopK;
  topk.limit = 5;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  for (int i = 0; i < 32; ++i) {
    (cluster.submit(topk) == ServeStatus::kOk) ? ++accepted : ++rejected;
  }
  EXPECT_EQ(accepted, 8u);
  EXPECT_EQ(rejected, 24u);
  std::vector<Response> responses;
  cluster.drain(responses);
  EXPECT_EQ(responses.size(), 8u);
  const auto stats = cluster.stats_snapshot();
  EXPECT_EQ(stats.accepted, 8u);
  EXPECT_EQ(stats.rejected, 24u);
  EXPECT_EQ(stats.served, 8u);
}

TEST(ClusterServer, AggregateStatsReconcileAcrossReplicas) {
  std::vector<SnapshotView> storage;
  const auto ptrs = open_shards(sharded4(), storage);
  ClusterConfig config;
  config.replicas = 2;
  ClusterServer cluster(&sharded4().routing, ptrs, config);
  std::uint64_t offered = 0;
  for (std::uint32_t i = 0; i < 400; ++i) {
    Request q;
    q.type = static_cast<RequestType>(i % kRequestTypeCount);
    q.user = (i * 31) % kNodes;
    q.target = (i * 7 + 3) % kNodes;
    q.limit = q.type == RequestType::kTopK ? 10 : 0;
    ASSERT_EQ(cluster.submit(q), ServeStatus::kOk);
    ++offered;
  }
  std::vector<Response> responses;
  cluster.drain(responses);
  ASSERT_EQ(responses.size(), offered);

  const auto stats = cluster.stats_snapshot();
  EXPECT_EQ(stats.accepted, offered);
  EXPECT_EQ(stats.served, offered);
  const std::uint64_t status_sum = std::accumulate(
      stats.by_status.begin(), stats.by_status.end(), std::uint64_t{0});
  EXPECT_EQ(status_sum, offered);

  // Replica-level `served` covers exactly the single-shard traffic; the
  // aggregate view folds in router-terminal and scatter responses.
  std::uint64_t replica_served = 0;
  for (std::size_t s = 0; s < cluster.shard_count(); ++s) {
    for (std::size_t r = 0; r < cluster.replicas_per_shard(); ++r) {
      replica_served += cluster.replica_stats(s, r).served;
    }
  }
  EXPECT_LT(replica_served, offered);      // scatter families bypass replicas
  EXPECT_GT(stats.scatter, 0u);
  EXPECT_GT(stats.messages, 0u);
  const auto aggregate = cluster.aggregate_server_stats();
  EXPECT_EQ(aggregate.accepted, offered);
  EXPECT_EQ(aggregate.served, offered);
}

TEST(ClusterMetricsScope, ReplicaSlicesDoNotDoubleCount) {
  EXPECT_EQ(ClusterServer::replica_scope(2, 1), "s2.r1");
  std::vector<SnapshotView> storage;
  const auto ptrs = open_shards(sharded4(), storage);

  const auto before = obs::MetricsRegistry::global().snapshot();
  ClusterServer cluster(&sharded4().routing, ptrs);
  for (std::uint32_t i = 0; i < 200; ++i) {
    Request q;
    q.type = RequestType::kGetProfile;
    q.user = i % kNodes;
    ASSERT_EQ(cluster.submit(q), ServeStatus::kOk);
  }
  std::vector<Response> responses;
  cluster.drain(responses);
  const auto delta =
      obs::delta(obs::MetricsRegistry::global().snapshot(), before);

  // Scoped replica counters moved; the default-scope "serve.*" series an
  // unsharded server would write stayed untouched — per-shard registries
  // reconcile without double counting.
  EXPECT_EQ(delta.value("serve.accepted"), 0);
  EXPECT_EQ(delta.value("serve.served"), 0);
  std::int64_t scoped_accepted = 0;
  for (std::size_t s = 0; s < cluster.shard_count(); ++s) {
    const std::string name =
        "serve." + ClusterServer::replica_scope(s, 0) + ".accepted";
    const std::int64_t slice = delta.value(name);
    EXPECT_GT(slice, 0) << name;
    scoped_accepted += slice;
  }
  EXPECT_EQ(scoped_accepted, 200);
  EXPECT_EQ(delta.value("serve.cluster.accepted"), 200);
  EXPECT_EQ(delta.value("serve.cluster.served"), 200);
}

TEST(ClusterStorm, ScriptedKillRecoverHoldsEveryInvariant) {
  ClusterStormConfig config;
  config.seed = 5;
  config.clients = 32;
  config.rounds = 64;
  config.probes = 96;
  config.replicas = 2;
  const auto report = run_cluster_storm(sharded4(), full_view(), config);
  EXPECT_TRUE(report.violations.empty())
      << (report.violations.empty() ? "" : report.violations.front());
  EXPECT_EQ(report.offered, report.accepted + report.rejected);
  EXPECT_EQ(report.responses, report.accepted);
  EXPECT_GT(report.dark_answers, 0u);
  EXPECT_EQ(report.post_probe_checksum, report.unsharded_probe_checksum);
  EXPECT_EQ(report.replica_stats.size(), 4u * config.replicas);
}

}  // namespace
}  // namespace gplus::serve
